#!/usr/bin/env python
"""Documentation checks: snippet syntax and relative-link integrity.

Two pure checks over the repo's markdown (README.md, ROADMAP.md,
docs/*.md), runnable standalone (CI's docs job) or through
``tests/test_docs.py``:

* every fenced ```python block must *compile* — docs with syntax
  errors are worse than no docs;
* every relative markdown link must point at a file that exists.

Snippets are syntax-checked, not executed: examples may reference
names (``db``, ``server``) introduced in prose or elide bodies with
``...``.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

#: The markdown surfaces under check.
DOC_PATHS = ("README.md", "ROADMAP.md", "docs")

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _label(path: pathlib.Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def doc_files() -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for entry in DOC_PATHS:
        path = REPO / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def python_snippets(path: pathlib.Path) -> list[tuple[int, str]]:
    """``(first_line_number, code)`` for every ```python fence."""
    snippets = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_python = False
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, 1):
        match = _FENCE.match(line)
        if match is None:
            if in_python:
                buffer.append(line)
            continue
        if in_python:
            snippets.append((start, "\n".join(buffer)))
            in_python = False
        elif match.group(1) == "python":
            in_python = True
            start = number + 1
            buffer = []
    return snippets


def prose_without_fences(path: pathlib.Path) -> str:
    """The file's text with all fenced code blocks blanked out."""
    kept = []
    fenced = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            fenced = not fenced
            continue
        kept.append("" if fenced else line)
    return "\n".join(kept)


def check_snippets(files) -> list[str]:
    errors = []
    for path in files:
        for lineno, code in python_snippets(path):
            try:
                compile(code, f"{path}:{lineno}", "exec")
            except SyntaxError as exc:
                errors.append(
                    f"{_label(path)}:{lineno}: "
                    f"python snippet does not compile: {exc.msg} "
                    f"(snippet line {exc.lineno})"
                )
    return errors


def check_links(files) -> list[str]:
    errors = []
    for path in files:
        for match in _LINK.finditer(prose_without_fences(path)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                errors.append(
                    f"{_label(path)}: broken relative link -> {target}"
                )
    return errors


def main() -> int:
    files = doc_files()
    errors = check_snippets(files) + check_links(files)
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{sum(len(python_snippets(f)) for f in files)} python snippets, "
        f"{len(errors)} errors"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
