"""Table statistics: the substrate for cost-based physical planning.

The paper's roadmap (§4.3) prices operators and runtime choices from
"data properties". This module supplies those properties: per-column
min/max, null count, NDV, and an equi-width histogram, collected in one
vectorized pass over a :class:`~repro.relational.table.Table`. The same
statistics drive three consumers:

* histogram-based predicate selectivity (replacing the old hard-coded
  ``FILTER_SELECTIVITY`` constant) for both the logical planner and the
  cross-IR cost model,
* NDV-based join/aggregate cardinality estimates, and
* zone-map partition pruning for scans over partitioned tables.

Statistics serialize to plain JSON so :mod:`repro.relational.storage`
can persist them in the database manifest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    Literal,
    UnaryOp,
    conjuncts,
    range_bounds,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.table import Table

#: Default number of equi-width histogram buckets per numeric column.
DEFAULT_HISTOGRAM_BINS = 32

#: Per-conjunct selectivity when no statistics apply (the old constant).
DEFAULT_SELECTIVITY = 0.33

#: Assumed table cardinality when no statistics exist. Shared by the
#: SQL physical planner and the cross-IR cost model so the two price
#: stat-less plans identically.
DEFAULT_ROW_ESTIMATE = 10_000.0

#: Above this many non-null values, NDV switches from exact
#: ``np.unique`` to a sample-based GEE estimate (numeric columns only;
#: strings keep the exact pass, which also provides their bounds).
NDV_SAMPLE_THRESHOLD = 120_000

#: Sample size for the GEE estimator. The estimator's worst-case ratio
#: error is sqrt(n / sample) — the bound the accuracy tests assert.
NDV_SAMPLE_SIZE = 32_768


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column: bounds, nulls, NDV, histogram.

    ``histogram_edges`` has ``len(histogram_counts) + 1`` entries and is
    empty for non-numeric or single-valued columns. String columns carry
    lexicographic min/max (useful for zone maps) and exact NDV.
    """

    name: str
    min_value: float | str | None
    max_value: float | str | None
    null_count: int
    ndv: int
    histogram_edges: tuple[float, ...] = ()
    histogram_counts: tuple[int, ...] = ()

    # -- selectivity primitives ---------------------------------------------

    def fraction_below(self, value: float, inclusive: bool) -> float | None:
        """Estimated fraction of rows with ``column <= value`` (or ``<``).

        ``None`` when the column has no numeric histogram support.
        """
        if not isinstance(self.min_value, (int, float)) or not isinstance(
            self.max_value, (int, float)
        ):
            return None
        low, high = float(self.min_value), float(self.max_value)
        if value < low:
            return 0.0
        if value > high or (inclusive and value >= high):
            return 1.0
        if not self.histogram_counts:
            if not (math.isfinite(low) and math.isfinite(high)):
                return None  # unbounded range, no histogram: no estimate
            if high <= low:
                # Single-valued column and value == low == high (the
                # earlier guards handled everything else): all rows
                # satisfy <=, none satisfy the strict <.
                return 1.0 if inclusive else 0.0
            # Single bucket: linear interpolation over [min, max].
            return (value - low) / (high - low)
        total = sum(self.histogram_counts)
        if total == 0:
            return None
        acc = 0.0
        for i, count in enumerate(self.histogram_counts):
            left = self.histogram_edges[i]
            right = self.histogram_edges[i + 1]
            if value >= right:
                acc += count
            elif value > left and right > left:
                acc += count * (value - left) / (right - left)
            else:
                break
        return min(1.0, acc / total)

    def equality_selectivity(self, value: object) -> float:
        """Estimated fraction of rows equal to ``value`` (uniform NDV)."""
        if isinstance(value, (int, float)) and isinstance(
            self.min_value, (int, float)
        ):
            if value < self.min_value or value > float(self.max_value):
                return 0.0
        if self.ndv <= 0:
            return DEFAULT_SELECTIVITY
        return min(1.0, 1.0 / self.ndv)

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "min": _py(self.min_value),
            "max": _py(self.max_value),
            "null_count": int(self.null_count),
            "ndv": int(self.ndv),
            "histogram_edges": [float(e) for e in self.histogram_edges],
            "histogram_counts": [int(c) for c in self.histogram_counts],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "ColumnStatistics":
        return cls(
            name=spec["name"],
            min_value=spec.get("min"),
            max_value=spec.get("max"),
            null_count=int(spec.get("null_count", 0)),
            ndv=int(spec.get("ndv", 0)),
            histogram_edges=tuple(spec.get("histogram_edges", ())),
            histogram_counts=tuple(spec.get("histogram_counts", ())),
        )


@dataclass(frozen=True)
class TableStatistics:
    """Row count plus per-column statistics, keyed by lowercase name."""

    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics | None:
        """Look up stats by (possibly qualified) column name."""
        key = name.lower()
        found = self.columns.get(key)
        if found is not None:
            return found
        if "." in key:
            return self.columns.get(key.rsplit(".", 1)[-1])
        return None

    def ndv(self, name: str) -> int | None:
        stats = self.column(name)
        return stats.ndv if stats is not None else None

    def to_dict(self) -> dict:
        return {
            "row_count": int(self.row_count),
            "columns": [stats.to_dict() for stats in self.columns.values()],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "TableStatistics":
        columns = {}
        for col_spec in spec.get("columns", ()):
            stats = ColumnStatistics.from_dict(col_spec)
            columns[stats.name.lower()] = stats
        return cls(row_count=int(spec.get("row_count", 0)), columns=columns)


def estimate_ndv(
    present: np.ndarray,
    sample_threshold: int = NDV_SAMPLE_THRESHOLD,
    sample_size: int = NDV_SAMPLE_SIZE,
) -> int:
    """Number of distinct values, exact below ``sample_threshold``.

    Above the threshold, applies the Guaranteed-Error Estimator (GEE,
    Charikar et al.): sample ``r`` rows without replacement, count the
    sample's distinct values and its singletons ``f1``, and estimate
    ``sqrt(n / r) * f1 + (d - f1)`` — values seen once in the sample
    are scaled up (they are likely rare in the full data), repeated
    values are counted as-is. GEE's ratio error is bounded by
    ``sqrt(n / r)``, which is what the planner needs: NDVs feed
    ``1 / max(ndv)`` join selectivities, where being within a small
    constant factor preserves join-order decisions. The sample is
    drawn from a deterministic RNG so repeated collections over
    unchanged data produce identical statistics (and stable plans).
    """
    n = len(present)
    if n <= sample_threshold:
        return int(len(np.unique(present)))
    rng = np.random.default_rng(0x5EED ^ n)
    sample = present[rng.choice(n, size=sample_size, replace=False)]
    _uniques, counts = np.unique(sample, return_counts=True)
    distinct = int(len(counts))
    singletons = int((counts == 1).sum())
    estimate = math.sqrt(n / sample_size) * singletons + (
        distinct - singletons
    )
    return int(min(n, max(distinct, round(estimate))))


def constant_columns(table: "Table") -> dict[str, float]:
    """Numeric columns holding a single distinct value, by lower name.

    The paper: "using data statistics, we might observe that only
    specific unique values appear in the data"; those become derived
    predicates for model pruning even without a WHERE clause. Shared by
    the memo search and the legacy IR rule context.
    """
    constants: dict[str, float] = {}
    for column in table.schema:
        if not column.dtype.is_numeric:
            continue
        values = table.column(column.name)
        if len(values) > 0 and (values == values[0]).all():
            constants[column.name.lower()] = float(values[0])
    return constants


def collect_statistics(
    table: "Table", bins: int = DEFAULT_HISTOGRAM_BINS
) -> TableStatistics:
    """One vectorized pass over every column of ``table``.

    Numeric NDV is exact (``np.unique``) up to
    :data:`NDV_SAMPLE_THRESHOLD` rows and GEE-estimated from a sample
    beyond it (see :func:`estimate_ndv`), so ``ANALYZE`` on multi-
    million-row tables no longer sorts every column.
    """
    columns: dict[str, ColumnStatistics] = {}
    for column in table.schema:
        values = table.column(column.name)
        key = column.name.lower()
        if column.dtype.is_numeric:
            columns[key] = _numeric_column_stats(column.name, values, bins)
        elif values.dtype.kind in ("U", "S"):
            columns[key] = _string_column_stats(column.name, values)
        else:
            # Opaque payloads (model blobs): row count only.
            columns[key] = ColumnStatistics(
                name=column.name,
                min_value=None,
                max_value=None,
                null_count=0,
                ndv=len(values),
            )
    return TableStatistics(row_count=table.num_rows, columns=columns)


def _numeric_column_stats(
    name: str, values: np.ndarray, bins: int
) -> ColumnStatistics:
    # Only NaN counts as null. Infinities are real, orderable values —
    # they participate in min/max and NDV but are kept out of the
    # histogram, whose equi-width bins need a finite range.
    as_float = values.astype(np.float64)
    nan_mask = np.isnan(as_float)
    null_count = int(nan_mask.sum())
    present = values[~nan_mask]
    if len(present) == 0:
        return ColumnStatistics(
            name=name, min_value=None, max_value=None,
            null_count=null_count, ndv=0,
        )
    lo = float(present.min())
    hi = float(present.max())
    ndv = estimate_ndv(present)
    finite = present[np.isfinite(present.astype(np.float64))]
    edges: tuple[float, ...] = ()
    counts: tuple[int, ...] = ()
    if len(finite) and float(finite.max()) > float(finite.min()):
        num_bins = max(1, min(bins, ndv))
        hist, bin_edges = np.histogram(
            finite.astype(np.float64),
            bins=num_bins,
            range=(float(finite.min()), float(finite.max())),
        )
        edges = tuple(float(e) for e in bin_edges)
        counts = tuple(int(c) for c in hist)
    return ColumnStatistics(
        name=name,
        min_value=lo,
        max_value=hi,
        null_count=null_count,
        ndv=ndv,
        histogram_edges=edges,
        histogram_counts=counts,
    )


def _string_column_stats(name: str, values: np.ndarray) -> ColumnStatistics:
    if len(values) == 0:
        return ColumnStatistics(
            name=name, min_value=None, max_value=None, null_count=0, ndv=0
        )
    # np.unique sorts, which (unlike the min/max ufuncs) supports
    # unicode arrays; the ends give the lexicographic bounds.
    uniques = np.unique(values)
    return ColumnStatistics(
        name=name,
        min_value=str(uniques[0]),
        max_value=str(uniques[-1]),
        null_count=0,
        ndv=int(len(uniques)),
    )


# ---------------------------------------------------------------------------
# Predicate selectivity
# ---------------------------------------------------------------------------

#: ``resolve(column_name) -> ColumnStatistics | None``.
StatsResolver = Callable[[str], "ColumnStatistics | None"]


def estimate_predicate_selectivity(
    predicate: Expression,
    resolve: StatsResolver,
    default: float = DEFAULT_SELECTIVITY,
) -> float:
    """Selectivity of a predicate under per-column statistics.

    Conjuncts are estimated independently and combined with exponential
    back-off (most selective fully, each further conjunct dampened by a
    square root) — assuming full independence systematically
    underestimates correlated filters, which is the classic cause of
    catastrophic join-order choices.
    """
    parts = sorted(
        _conjunct_selectivity(c, resolve, default)
        for c in conjuncts(predicate)
    )
    selectivity = 1.0
    exponent = 1.0
    for part in parts:
        selectivity *= part**exponent
        exponent /= 2.0
    return float(min(1.0, max(0.0, selectivity)))


def _conjunct_selectivity(
    expr: Expression, resolve: StatsResolver, default: float
) -> float:
    if isinstance(expr, Literal):
        if isinstance(expr.value, (bool, int, float)):
            return 1.0 if expr.value else 0.0
        return default
    if isinstance(expr, UnaryOp) and expr.op.upper() == "NOT":
        return 1.0 - _conjunct_selectivity(expr.operand, resolve, default)
    if isinstance(expr, InList):
        if isinstance(expr.operand, ColumnRef):
            stats = resolve(expr.operand.name)
            if stats is not None:
                return min(
                    1.0,
                    sum(stats.equality_selectivity(v) for v in expr.values),
                )
        return default
    if isinstance(expr, BinaryOp):
        op = expr.op.upper()
        if op == "AND":
            return estimate_predicate_selectivity(expr, resolve, default)
        if op == "OR":
            a = estimate_predicate_selectivity(expr.left, resolve, default)
            b = estimate_predicate_selectivity(expr.right, resolve, default)
            return min(1.0, a + b - a * b)
        return _comparison_selectivity(expr, resolve, default)
    return default


def _comparison_selectivity(
    expr: BinaryOp, resolve: StatsResolver, default: float
) -> float:
    op, left, right = expr.op, expr.left, expr.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return default
    stats = resolve(left.name)
    if stats is None:
        return default
    value = right.value
    if op == "=":
        return stats.equality_selectivity(value)
    if op == "<>":
        return max(0.0, 1.0 - stats.equality_selectivity(value))
    if not isinstance(value, (int, float, np.integer, np.floating)):
        return default
    numeric = float(value)
    if op in ("<", "<="):
        fraction = stats.fraction_below(numeric, inclusive=op == "<=")
        return fraction if fraction is not None else default
    if op in (">", ">="):
        fraction = stats.fraction_below(numeric, inclusive=op == ">")
        return 1.0 - fraction if fraction is not None else default
    return default


def equi_join_selectivity(
    left_ndv: int | None, right_ndv: int | None
) -> float | None:
    """``1 / max(ndv)`` — the uniform-containment equi-join estimate."""
    candidates = [n for n in (left_ndv, right_ndv) if n]
    if not candidates:
        return None
    return 1.0 / max(candidates)


def column_stats_resolver(
    sources: "list[tuple[TableStatistics, str | None]]",
) -> StatsResolver:
    """One column-stats lookup over several ``(stats, scan alias)`` pairs.

    Columns register under their base name and, for aliased scans, the
    qualified ``alias.name``; qualified lookups fall back to the bare
    name. Shared by the SQL physical planner and the cross-IR cost
    model so both price plans from identical statistics.
    """
    lookup: dict[str, ColumnStatistics] = {}
    for stats, alias in sources:
        for key, col_stats in stats.columns.items():
            lookup.setdefault(key, col_stats)
            if alias:
                lookup.setdefault(f"{alias.lower()}.{key}", col_stats)

    def resolve(name: str) -> ColumnStatistics | None:
        key = name.lower()
        found = lookup.get(key)
        if found is None and "." in key:
            found = lookup.get(key.rsplit(".", 1)[-1])
        return found

    return resolve


def join_condition_selectivity(
    condition: Expression, resolve: StatsResolver
) -> float | None:
    """NDV-based selectivity of a join condition's equi-conjuncts.

    ``None`` when no conjunct is an informable ``col = col`` — callers
    fall back to their structural heuristic.
    """
    selectivity = 1.0
    informed = False
    for conjunct in conjuncts(condition):
        if (
            isinstance(conjunct, BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_stats = resolve(conjunct.left.name)
            right_stats = resolve(conjunct.right.name)
            equi = equi_join_selectivity(
                left_stats.ndv if left_stats else None,
                right_stats.ndv if right_stats else None,
            )
            if equi is not None:
                selectivity *= equi
                informed = True
    return selectivity if informed else None


def group_keys_cardinality(
    group_by, resolve: StatsResolver
) -> float | None:
    """NDV-product group count for ``(expr, name)`` grouping keys.

    ``None`` when any key is not a plain column with known NDV.
    """
    if not group_by:
        return 1.0
    groups = 1.0
    for expr, _name in group_by:
        if not isinstance(expr, ColumnRef):
            return None
        stats = resolve(expr.name)
        if stats is None or stats.ndv <= 0:
            return None
        groups *= stats.ndv
    return groups


def combine_join_estimate(
    left_rows: float,
    right_rows: float,
    kind: str,
    selectivity: float | None,
) -> float:
    """Join output rows from side estimates + condition selectivity.

    One combiner for the SQL planner and the IR cost model: without an
    informable condition, fall back to ``max`` (the old structural
    heuristic); LEFT joins preserve every left row.
    """
    if selectivity is None:
        estimate = max(left_rows, right_rows)
    else:
        estimate = left_rows * right_rows * selectivity
    if kind == "LEFT":
        estimate = max(estimate, left_rows)
    return max(1.0, estimate)


def combine_aggregate_estimate(
    child_rows: float, groups: float | None
) -> float:
    """Aggregate output rows: NDV-based group count, or the old 10%."""
    if groups is None:
        return max(1.0, child_rows * 0.1)
    return max(1.0, min(child_rows, groups))


# ---------------------------------------------------------------------------
# Zone-map partition pruning
# ---------------------------------------------------------------------------


def membership_constraints(predicate: Expression) -> dict[str, tuple]:
    """Per-column value-set facts (``col = lit`` / ``col IN (...)``).

    Complements :func:`~repro.relational.expressions.range_bounds`
    (numeric intervals) with string equality and IN lists, which zone
    maps can also prune on.
    """
    facts: dict[str, tuple] = {}
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, InList) and isinstance(
            conjunct.operand, ColumnRef
        ):
            facts[conjunct.operand.unqualified] = tuple(conjunct.values)
        elif isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if isinstance(right, ColumnRef) and isinstance(left, Literal):
                left, right = right, left
            if (
                isinstance(left, ColumnRef)
                and isinstance(right, Literal)
                and isinstance(right.value, str)
            ):
                facts[left.unqualified] = (right.value,)
    return facts


def surviving_partitions(
    table: "Table", predicate: Expression
) -> np.ndarray | None:
    """Boolean keep-mask over the partitions of ``table``.

    ``None`` when the table is unpartitioned or the predicate yields no
    zone-map constraints (caller should scan everything). Conservative:
    a partition is kept unless its min/max proves no row can match.
    """
    if not table.partition_size or table.num_partitions <= 1:
        return None
    bounds = range_bounds(predicate)
    memberships = membership_constraints(predicate)
    if not bounds and not memberships:
        return None
    keep = np.ones(table.num_partitions, dtype=bool)
    constrained = False
    for name, (low, high) in bounds.items():
        zone = table.zone_map(name)
        if zone is None:
            continue
        mins, maxs = zone
        try:
            mask = np.ones(len(keep), dtype=bool)
            if not math.isinf(high):
                mask &= mins <= high
            if not math.isinf(low):
                mask &= maxs >= low
        except TypeError:
            continue  # numeric bound vs string zone: no pruning here
        keep &= mask
        constrained = True
    for name, values in memberships.items():
        if name in bounds:
            continue  # range facts already cover `col = numeric_lit`
        zone = table.zone_map(name)
        if zone is None:
            continue
        mins, maxs = zone
        any_match = np.zeros(table.num_partitions, dtype=bool)
        try:
            for value in values:
                any_match |= (mins <= value) & (maxs >= value)
        except TypeError:
            continue  # value/zone dtype mismatch: no pruning on this column
        keep &= any_match
        constrained = True
    return keep if constrained else None


def _py(value: object):
    """Coerce numpy scalars to JSON-safe Python values."""
    if value is None or isinstance(value, str):
        return value
    if hasattr(value, "item"):
        return value.item()
    return value
