"""The database facade: SQL in, tables out.

This is the stand-in for SQL Server in the reproduction. It owns the
catalog, binds and executes SQL batches, implements the ``PREDICT``
table-valued function by dispatching to the ML/tensor runtimes, caches
models and inference sessions across queries (the reason Raven beats
standalone ONNX Runtime on small inputs, Fig. 3), and exposes the model
store through a virtual ``scoring_models`` table so that Fig. 1's
``DECLARE @model = (SELECT model FROM scoring_models WHERE ...)`` works
verbatim.
"""

from __future__ import annotations

import threading
import time as _time
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.errors import BindError, CatalogError, ExecutionError
from repro.observability import events
from repro.observability import trace as qtrace
from repro.relational.algebra.binder import BindContext, Binder
from repro.relational.algebra.executor import ExecutionOptions, Executor
from repro.relational.algebra.planner import PhysicalPlanner
from repro.relational.catalog import Catalog, ModelEntry
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.parser import parse
from repro.relational.table import Table
from repro.relational.types import Column, DataType, Schema

_MODELS_VIEW_NAMES = ("scoring_models", "models")

_MODELS_VIEW_SCHEMA = Schema.of(
    ("model_name", DataType.STRING),
    ("version", DataType.INT),
    ("flavor", DataType.STRING),
    ("model", DataType.BINARY),
)


class SessionCache:
    """A small LRU cache for loaded models / inference sessions.

    Keyed by the model's qualified name (``name:vN``) so a model update
    (new version) naturally invalidates cached state.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get_or_create(self, key: str, factory: Callable[[], object]) -> object:
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                events.emit("session_cache.hit", key=key)
                return self._entries[key]
            self.misses += 1
        events.emit("session_cache.miss", key=key)
        # Build outside the lock (double-checked): an expensive scorer
        # build on one model must not stall concurrent hits on others.
        # Concurrent misses may build twice; the factory is idempotent
        # and last-write-wins is fine for a cache.
        value = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return value

    def invalidate(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def invalidate_model(self, name: str) -> int:
        """Drop every cached session for any version of ``name``.

        Entries are keyed ``name:vN``; a model update or rollback makes all
        of them suspect (a rolled-back version number can be reused with a
        different payload). Returns the number of entries dropped.
        """
        prefix = f"{name.lower()}:v"
        with self._lock:
            stale = [
                key for key in self._entries if key.lower().startswith(prefix)
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def keys(self) -> list[str]:
        """Cached keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class Database:
    """An in-memory relational database with native model scoring."""

    def __init__(
        self,
        options: ExecutionOptions | None = None,
        enable_session_cache: bool = True,
    ):
        from repro.relational.transactions import TransactionManager

        self.catalog = Catalog()
        self.transactions = TransactionManager(self.catalog)
        self.session_cache = SessionCache() if enable_session_cache else None
        self._binder = Binder(_CatalogView(self))
        self._executor = Executor(
            table_provider=self._provide_table,
            model_resolver=self,
            options=options,
            shard_provider=self._provide_shards,
            fragment_runner=self._run_gather,
            shuffle_runner=self._run_shuffle,
        )
        self._planner = PhysicalPlanner(self.catalog, self._executor.options)
        self._distributed = None
        self._distributed_lock = threading.Lock()
        # Canonical shard-query observer list. The runtime is
        # disposable (close() drops it, the next gather rebuilds it),
        # so observers register here and are re-attached to every
        # runtime instance — a server's fan-out metrics survive a
        # close()/restart cycle.
        self._shard_observers: list[Callable] = []
        # Called (no args) on every close(): long-lived observability
        # consumers (server metrics/watchdog/profiler) detach their
        # process-wide BUS subscriptions here instead of leaking them.
        self._close_listeners: list[Callable[[], None]] = []
        self._external_runtimes: dict[str, Callable] = {}
        self._model_listeners: list[Callable[[str, str], None]] = []
        # Every model mutation path (store, drop, transaction rollback)
        # funnels through the catalog, so one observer keeps the session
        # cache and any registered serving caches coherent.
        self.catalog.add_model_observer(self._on_model_event)

    # -- data management -------------------------------------------------

    def register_table(self, name: str, table: Table, replace: bool = True) -> None:
        """Register (or replace) a base table."""
        self.transactions.note_table_write(name)
        if self.catalog.has_table(name):
            if not replace:
                raise CatalogError(f"table {name!r} already exists")
            self.catalog.set_table(name, table)
        else:
            self.catalog.create_table(name, table)

    def table(self, name: str) -> Table:
        return self.catalog.get_table(name)

    def shard_table(
        self,
        name: str,
        key: str,
        num_shards: int,
        kind: str = "hash",
        boundaries=(),
    ) -> None:
        """Shard a stored table on ``key``; see :meth:`Catalog.shard_table`.

        Once declared, the optimizer may route eligible plans (scans,
        PREDICT pipelines, aggregates over this table) through the
        multi-process scatter-gather runtime, pruning shards whose
        statistics prove a predicate cannot match.
        """
        self.catalog.shard_table(name, key, num_shards, kind, boundaries)

    # -- distributed runtime ----------------------------------------------

    @property
    def distributed(self):
        """The scatter-gather coordinator (created on first use)."""
        with self._distributed_lock:
            if self._distributed is None:
                from repro.distributed.runtime import DistributedRuntime

                options = self._executor.options
                runtime = DistributedRuntime(
                    max_workers=options.max_workers,
                    mode=options.distributed_mode,
                    model_resolver=self._resolve_fragment_model,
                )
                for observer in self._shard_observers:
                    runtime.add_observer(observer)
                self._distributed = runtime
            return self._distributed

    def add_shard_observer(self, fn: Callable) -> None:
        """Register ``fn(shards_scanned, shards_pruned, fragment_seconds)``.

        Observers outlive individual runtime instances (see
        :meth:`close`); the serving layer's fan-out metrics subscribe
        here.
        """
        with self._distributed_lock:
            self._shard_observers.append(fn)
            runtime = self._distributed
        if runtime is not None:
            runtime.add_observer(fn)

    def remove_shard_observer(self, fn: Callable) -> None:
        with self._distributed_lock:
            try:
                self._shard_observers.remove(fn)
            except ValueError:
                pass
            runtime = self._distributed
        if runtime is not None:
            runtime.remove_observer(fn)

    def add_close_listener(self, fn: Callable[[], None]) -> None:
        """Register ``fn()`` to run on every :meth:`close`.

        Unlike shard observers (re-attached to the next runtime),
        close listeners are lifecycle hooks: the serving layer uses
        them to unsubscribe its event-bus consumers when the database
        goes away, so test teardowns and short-lived databases never
        leak subscribers on the process-wide BUS.
        """
        with self._distributed_lock:
            self._close_listeners.append(fn)

    def remove_close_listener(self, fn: Callable[[], None]) -> None:
        with self._distributed_lock:
            try:
                self._close_listeners.remove(fn)
            except ValueError:
                pass

    def close(self) -> None:
        """Release process-pool resources (idempotent).

        Teardown order matters: observers detach from the runtime
        first (so no shard-query callback fires into a half-closed
        server), the worker pool is then drained, and only after the
        pool is provably gone does the ``database.closed`` event go
        out — a subscriber reacting to the event can never revive or
        race the dying runtime. Close listeners run last (even when no
        runtime ever existed): by then every event of this lifecycle
        has been published, so a listener detaching a metrics consumer
        loses nothing.
        """
        with self._distributed_lock:
            runtime, self._distributed = self._distributed, None
            listeners = list(self._close_listeners)
        if runtime is not None:
            for observer in list(self._shard_observers):
                runtime.remove_observer(observer)
            runtime.shutdown()
            events.emit("database.closed", runtime_queries=runtime.queries)
        for fn in listeners:
            fn()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _resolve_fragment_model(self, model_ref: str) -> object:
        """The catalog entry for a fragment's model (payload + metadata)."""
        return self.catalog.get_model(model_ref)

    def _provide_shards(self, name: str):
        try:
            return self.catalog.sharding(name)
        except CatalogError:
            return None

    def _run_gather(self, op, shardeds) -> list[Table]:
        return self.distributed.run_gather(op, shardeds)

    def _run_shuffle(self, op, sides) -> list[Table]:
        return self.distributed.run_shuffle_join(op, sides)

    def store_model(
        self,
        name: str,
        payload: object,
        flavor: str = "ml.pipeline",
        metadata: dict | None = None,
    ) -> ModelEntry:
        """Store a model pipeline in the database (versioned, audited)."""
        self.transactions.note_model_write(name)
        return self.catalog.store_model(name, payload, flavor, metadata)

    def get_model(self, name: str, version: int | None = None) -> ModelEntry:
        return self.catalog.get_model(name, version)

    def register_external_runtime(self, language: str, runner: Callable) -> None:
        """Register a handler for ``EXEC sp_execute_external_script``."""
        self._external_runtimes[language.lower()] = runner

    # -- model-change notifications ----------------------------------------

    def add_model_listener(self, fn: Callable[[str, str], None]) -> None:
        """Register ``fn(event, model_name)`` for model mutations.

        The serving layer's plan and prediction caches subscribe here so a
        ``store_model`` of a new version (or a rollback) atomically
        invalidates every derived cache, mirroring the session-cache
        contract.
        """
        self._model_listeners.append(fn)

    def remove_model_listener(self, fn: Callable[[str, str], None]) -> None:
        """Unregister a listener (servers do this on shutdown)."""
        try:
            self._model_listeners.remove(fn)
        except ValueError:
            pass

    def _on_model_event(self, event: str, name: str) -> None:
        if self.session_cache is not None:
            self.session_cache.invalidate_model(name)
        for fn in list(self._model_listeners):
            fn(event, name)

    # -- SQL entry point ---------------------------------------------------

    def execute(self, sql: str, data: dict[str, Table] | None = None):
        """Execute a SQL batch; returns the last statement's result table.

        ``data`` optionally supplies fresh (non-stored) tables visible to
        this batch only — the paper's "fresh data coming from an
        application" path.
        """
        with qtrace.span("parse", sql_chars=len(sql)):
            script = parse(sql)
        context = BindContext()
        if data:
            for name, table in data.items():
                context.ctes[name.lower()] = _inline(table, name)
        result = None
        for statement in script.statements:
            result = self._execute_statement(statement, context)
        return result

    def execute_plan(self, plan) -> Table:
        """Execute an already-bound logical plan."""
        return self._executor.execute(plan)

    def bind(self, sql: str, data: dict[str, Table] | None = None):
        """Parse + bind an inference query, returning the logical plan.

        Accepts either a single SELECT or a batch of ``DECLARE``
        statements followed by one SELECT (the Fig. 1 shape). DECLAREd
        variables are evaluated eagerly (model lookups hit the catalog)
        so the resulting plan is self-contained.
        """
        with qtrace.span("parse", sql_chars=len(sql)):
            script = parse(sql)
        context = BindContext()
        if data:
            for name, table in data.items():
                context.ctes[name.lower()] = _inline(table, name)
        select: ast.SelectStatement | None = None
        for statement in script.statements:
            if isinstance(statement, ast.DeclareStatement):
                self._execute_declare(statement, context)
            elif isinstance(statement, ast.SelectStatement):
                if select is not None:
                    raise BindError("bind() accepts at most one SELECT")
                select = statement
            else:
                raise BindError(
                    f"bind() cannot handle {type(statement).__name__}; "
                    "use execute()"
                )
        if select is None:
            raise BindError("bind() needs a SELECT statement")
        with qtrace.span("bind"):
            return self._binder.bind_select(select, context)

    @property
    def executor_options(self) -> ExecutionOptions:
        return self._executor.options

    # -- statement dispatch ------------------------------------------------

    def _execute_statement(self, statement, context: BindContext):
        if isinstance(statement, ast.SelectStatement):
            with qtrace.span("bind"):
                plan = self._binder.bind_select(statement, context)
            with qtrace.span("optimize"):
                plan = self._planner.optimize(plan)
            with qtrace.span("execute") as sp:
                result = self._executor.execute(plan)
                sp.set("rows", result.num_rows)
            return result
        if isinstance(statement, ast.AnalyzeStatement):
            return self._execute_analyze(statement)
        if isinstance(statement, ast.ExplainStatement):
            return self._execute_explain(statement, context)
        if isinstance(statement, ast.DeclareStatement):
            return self._execute_declare(statement, context)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, context)
        if isinstance(statement, ast.CreateTableStatement):
            schema = Schema(tuple(Column(n, t) for n, t in statement.columns))
            self.register_table(statement.name, Table.empty(schema), replace=False)
            return None
        if isinstance(statement, ast.DropTableStatement):
            self.transactions.note_table_write(statement.name)
            self.catalog.drop_table(statement.name)
            return None
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.TransactionStatement):
            action = statement.action
            if action == "begin":
                self.transactions.begin()
            elif action == "commit":
                self.transactions.commit()
            else:
                self.transactions.rollback()
            return None
        if isinstance(statement, ast.ExecStatement):
            return self._execute_exec(statement, context)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def _execute_analyze(self, statement: ast.AnalyzeStatement) -> Table:
        """``ANALYZE <table>``: recollect statistics, bump the stats epoch.

        Returns a one-row summary so interactive sessions see what moved.
        """
        stats = self.catalog.analyze_table(statement.name)
        return Table.from_dict(
            {
                "table_name": np.array([statement.name]),
                "row_count": np.array([stats.row_count], dtype=np.int64),
                "columns_analyzed": np.array(
                    [len(stats.columns)], dtype=np.int64
                ),
                "stats_epoch": np.array(
                    [self.catalog.stats_epoch(statement.name)], dtype=np.int64
                ),
            }
        )

    def _execute_explain(
        self, statement: ast.ExplainStatement, context: BindContext
    ) -> Table:
        """``EXPLAIN [ANALYZE] <select>``: the plan as a one-column table.

        Lines carry histogram-based row estimates, filter selectivities,
        and zone-map partition pruning counts for filtered scans. With
        ``ANALYZE``, the optimized plan is executed through an
        instrumented executor and each measured operator's line gains
        ``actual_rows / time_ms / q_error``; the worst q-error per base
        table is folded into the catalog (the estimate-feedback hook).
        """
        plan = self._binder.bind_select(statement.select, context)
        plan = self._planner.optimize(plan)
        if not statement.analyze:
            lines = self._planner.explain_lines(plan)
            # Object (BINARY) storage keeps lines unbounded; the STRING
            # storage dtype would truncate plans at 64 characters.
            return Table.from_dict({"plan": np.array(lines, dtype=object)})
        from repro.observability.explain import (
            InstrumentedExecutor,
            collect_table_q_errors,
        )

        instrumented = InstrumentedExecutor.from_executor(self._executor)
        start = _time.perf_counter()
        result = instrumented.execute(plan)
        total = _time.perf_counter() - start
        lines = self._planner.explain_lines(plan, actuals=instrumented.records)
        estimation = self._planner._estimation_context(plan)
        table_q = collect_table_q_errors(
            plan, instrumented.records, estimation.estimate_tree
        )
        for name, q in sorted(table_q.items()):
            self.catalog.record_q_error(name, q)
            summary = self.catalog.q_error_summary(name)
            lines.append(
                "analyze q-error {}: last={:.2f} max={:.2f} "
                "geo_mean={:.2f} n={}".format(
                    name, q, summary["max"], summary["geo_mean"],
                    summary["count"],
                )
            )
        lines.append(
            "analyze: rows={} total_ms={:.2f} operators_timed={}".format(
                result.num_rows, total * 1e3, len(instrumented.records)
            )
        )
        return Table.from_dict({"plan": np.array(lines, dtype=object)})

    def _execute_declare(self, statement: ast.DeclareStatement, context: BindContext):
        value: object = None
        if statement.subquery is not None:
            plan = self._binder.bind_select(statement.subquery, context)
            table = self._executor.execute(plan)
            if table.num_rows < 1 or table.num_columns < 1:
                raise ExecutionError(
                    f"DECLARE @{statement.name}: subquery returned no value"
                )
            value = table.column(table.schema.names[0])[0]
        elif statement.value is not None:
            dummy = Table.from_dict({"one": np.array([1])})
            expr = statement.value.substitute(
                Binder.substitutable_variables(context.variables)
            )
            value = expr.evaluate(dummy)[0]
        if isinstance(value, ModelEntry):
            value = value.qualified_name
        context.variables[statement.name] = value
        return None

    def _execute_insert(self, statement: ast.InsertStatement, context: BindContext):
        name = statement.name
        # INSERT into the virtual model store registers a model pipeline.
        if name.lower() in _MODELS_VIEW_NAMES and not self.catalog.has_table(name):
            return self._insert_model(statement)
        self.transactions.note_table_write(name)
        existing = self.catalog.get_table(name)
        if statement.select is not None:
            plan = self._binder.bind_select(statement.select, context)
            new_rows = self._executor.execute(plan)
            if statement.columns:
                new_rows = new_rows.rename(
                    dict(zip(new_rows.schema.names, statement.columns))
                )
            else:
                new_rows = new_rows.rename(
                    dict(zip(new_rows.schema.names, existing.schema.names))
                )
        else:
            columns = statement.columns or existing.schema.names
            dummy = Table.from_dict({"one": np.array([1])})
            data: dict[str, list] = {c: [] for c in columns}
            for row in statement.rows:
                for col_name, expr in zip(columns, row):
                    data[col_name].append(expr.evaluate(dummy)[0])
            new_rows = Table(
                existing.schema.select(columns),
                {c: np.array(v) for c, v in data.items()},
            )
        merged = Table.concat_rows(
            [existing, new_rows.select(existing.schema.names)]
        )
        self.catalog.set_table(name, merged)
        return None

    def _insert_model(self, statement: ast.InsertStatement):
        dummy = Table.from_dict({"one": np.array([1])})
        columns = statement.columns or ("model_name", "model")
        for row in statement.rows:
            values = {
                col: expr.evaluate(dummy)[0] for col, expr in zip(columns, row)
            }
            name = str(values.get("model_name") or values.get("name"))
            payload = values.get("model")
            flavor = "python.script" if isinstance(payload, str) else "ml.pipeline"
            self.store_model(name, payload, flavor=str(values.get("flavor", flavor)))
        return None

    def _execute_delete(self, statement: ast.DeleteStatement):
        self.transactions.note_table_write(statement.name)
        table = self.catalog.get_table(statement.name)
        if statement.where is None:
            remaining = Table.empty(table.schema)
        else:
            mask = statement.where.evaluate(table).astype(bool)
            remaining = table.filter(~mask)
        self.catalog.set_table(statement.name, remaining)
        return None

    def _execute_update(self, statement: ast.UpdateStatement):
        self.transactions.note_table_write(statement.name)
        table = self.catalog.get_table(statement.name)
        if statement.where is None:
            mask = np.ones(table.num_rows, dtype=bool)
        else:
            mask = statement.where.evaluate(table).astype(bool)
        for column_name, expr in statement.assignments:
            stored = table.resolve_name(column_name)
            values = table.column(stored).copy()
            new_values = expr.evaluate(table)
            values[mask] = new_values[mask] if new_values.ndim else new_values
            table = table.with_column(stored, values)
        self.catalog.set_table(statement.name, table)
        return None

    def _execute_exec(self, statement: ast.ExecStatement, context: BindContext):
        if statement.procedure.lower() != "sp_execute_external_script":
            raise ExecutionError(f"unknown procedure {statement.procedure!r}")
        dummy = Table.from_dict({"one": np.array([1])})
        params = {
            name.lower(): expr.evaluate(dummy)[0]
            for name, expr in statement.parameters
        }
        language = str(params.get("language", "python")).lower()
        runner = self._external_runtimes.get(language)
        if runner is None:
            raise ExecutionError(
                f"no external runtime registered for language {language!r}"
            )
        input_table = None
        if "input_data_1" in params:
            input_table = self.execute(str(params["input_data_1"]))
        return runner(str(params.get("script", "")), input_table)

    # -- table provider (executor callback) ---------------------------------

    def _provide_table(self, name: str) -> Table:
        if self.catalog.has_table(name):
            return self.catalog.get_table(name)
        if name.lower() in _MODELS_VIEW_NAMES:
            return self._models_view()
        raise CatalogError(f"unknown table {name!r}")

    def _models_view(self) -> Table:
        # Versions are listed latest-first so the Fig. 1 idiom
        # ``DECLARE @model = (SELECT model FROM scoring_models WHERE ...)``
        # resolves to the newest version — storing an update immediately
        # changes what new queries (and re-prepared plans) score with.
        rows = []
        for model_name in self.catalog.model_names():
            for entry in reversed(self.catalog.model_versions(model_name)):
                rows.append((entry.name, entry.version, entry.flavor, entry))
        return Table.from_rows(_MODELS_VIEW_SCHEMA, rows)

    # -- model resolver (executor callback) ----------------------------------

    def resolve_scorer(
        self,
        model_ref: str,
        output_columns: tuple[tuple[str, DataType], ...],
        backend: str = "numpy",
    ) -> Callable[[Table], dict[str, np.ndarray]]:
        """Build (with caching) a batch scorer for a stored model.

        Cache entries are keyed ``name:vN[|backend]`` — the interpreter
        and each compiled backend are distinct sessions of the same
        model, and ``invalidate_model``'s ``name:v`` prefix still drops
        them all on an update.
        """
        if model_ref.startswith("@"):
            raise ExecutionError(
                f"model variable {model_ref} was never assigned a model"
            )
        entry = self.catalog.get_model(model_ref)
        backend = (backend or "numpy").lower()
        key = entry.qualified_name
        if backend != "numpy":
            key = f"{key}|{backend}"
        if self.session_cache is not None:
            scorer = self.session_cache.get_or_create(
                key, lambda: self._build_scorer(entry, backend)
            )
        else:
            scorer = self._build_scorer(entry, backend)
        output_names = [name for name, _ in output_columns]
        return _bind_output_names(scorer, output_names)

    def resolve_inline_scorer(
        self,
        payload: object,
        feature_names: Sequence[str] | None,
        output_columns: tuple[tuple[str, DataType], ...],
        backend: str = "numpy",
    ) -> Callable[[Table], dict[str, np.ndarray]]:
        """Scorer for a plan-embedded (memo-rewritten) model pipeline.

        Rewritten pipelines (pruned trees, narrowed feature sets) are
        plan-local — they are not in the catalog and not session-cached;
        the closure itself is cheap and the plan object pins the payload.

        ``feature_names`` distinguishes empty from unknown: ``()`` means
        the model consumes *zero* columns (fully pruned to a constant —
        WHERE facts pinned every feature), while ``None`` means the
        consumed columns are unspecified and the whole table is passed.
        """
        features = list(feature_names) if feature_names is not None else None

        compiled = None
        if (backend or "numpy").lower() != "numpy":
            from repro.tensor.backends import compiled_pipeline_scorer

            compiled = compiled_pipeline_scorer(
                payload, len(features) if features else None, backend
            )

        def score_inline(table: Table) -> np.ndarray:
            matrix = table.to_matrix(features)
            if compiled is not None:
                return np.asarray(compiled(matrix), dtype=np.float64)
            return np.asarray(payload.predict(matrix), dtype=np.float64)

        output_names = [name for name, _ in output_columns]
        return _bind_output_names(score_inline, output_names)

    @staticmethod
    def _build_scorer(
        entry: ModelEntry, backend: str = "numpy"
    ) -> Callable[[Table], np.ndarray]:
        """Create the raw scorer for a model entry (cache-miss path)."""
        if entry.flavor == "ml.pipeline":
            pipeline = entry.payload
            feature_names = entry.metadata.get("feature_names") or getattr(
                pipeline, "feature_names_", None
            )

            if backend != "numpy":
                from repro.tensor.backends import compiled_pipeline_scorer

                compiled = compiled_pipeline_scorer(
                    pipeline,
                    len(feature_names) if feature_names else None,
                    backend,
                )
                if compiled is not None:

                    def score_compiled(table: Table) -> np.ndarray:
                        features = table.to_matrix(feature_names)
                        return np.asarray(compiled(features), dtype=np.float64)

                    return score_compiled
                # Translation failed — the interpreted path below is
                # always correct, just not compiled.

            def score_pipeline(table: Table) -> np.ndarray:
                features = table.to_matrix(feature_names)
                return np.asarray(pipeline.predict(features), dtype=np.float64)

            return score_pipeline
        if entry.flavor == "tensor.graph":
            from repro.tensor.session import InferenceSession

            session = InferenceSession(entry.payload, backend=backend)
            feature_names = entry.metadata.get("feature_names")

            def score_graph(table: Table) -> np.ndarray:
                features = table.to_matrix(feature_names)
                outputs = session.run({session.input_names[0]: features})
                return np.asarray(outputs[0]).reshape(len(table), -1)[:, 0]

            return score_graph
        raise ExecutionError(
            f"model flavor {entry.flavor!r} has no in-process scorer; "
            "use the out-of-process or containerized runtime"
        )


def _bind_output_names(
    scorer: Callable[[Table], np.ndarray], output_names: Sequence[str]
) -> Callable[[Table], dict[str, np.ndarray]]:
    def run(table: Table) -> dict[str, np.ndarray]:
        raw = np.asarray(scorer(table))
        if raw.ndim == 1:
            raw = raw.reshape(-1, 1)
        if raw.shape[1] < len(output_names):
            raise ExecutionError(
                f"model produced {raw.shape[1]} outputs, query declared "
                f"{len(output_names)}"
            )
        return {name: raw[:, i] for i, name in enumerate(output_names)}

    return run


def _inline(table: Table, source_name: str | None = None):
    from repro.relational.algebra.logical import InlineTable

    return InlineTable(table, source_name=source_name)


class _CatalogView:
    """Binder-facing catalog adapter that also exposes the models view."""

    def __init__(self, database: Database):
        self._database = database

    def has_table(self, name: str) -> bool:
        if self._database.catalog.has_table(name):
            return True
        return name.lower() in _MODELS_VIEW_NAMES

    def table_schema(self, name: str) -> Schema:
        if self._database.catalog.has_table(name):
            return self._database.catalog.table_schema(name)
        if name.lower() in _MODELS_VIEW_NAMES:
            return _MODELS_VIEW_SCHEMA
        raise CatalogError(f"unknown table {name!r}")
