"""Statistics-driven physical planning over logical plans.

The binder produces a syntax-shaped plan: one ``Filter`` above a
left-deep join chain in FROM order. This planner rewrites it using the
catalog's :mod:`~repro.relational.statistics`:

* **Predicate pushdown** — WHERE conjuncts sink to the deepest operator
  whose schema resolves them (onto scan leaves, or into INNER join
  conditions), so selective filters run before joins and zone-map
  pruning sees them at the scan.
* **Greedy cost-based join reordering** — chains of 3..6 INNER/CROSS
  joins are re-ordered: start from the smallest estimated relation,
  repeatedly attach the connected relation that minimizes the estimated
  intermediate cardinality (equi-join selectivity ``1/max(NDV)``).
* **Cardinality estimation** — histogram-based selectivity for filters,
  NDV-based estimates for joins and aggregates; these annotations are
  what ``EXPLAIN`` renders, together with zone-map partition pruning
  counts for filtered scans.

The same statistics feed the cross-IR cost model
(:mod:`repro.core.optimizer.cost`), so engine assignment decisions and
SQL-side physical planning price plans from one source of truth.
"""

from __future__ import annotations

from typing import Callable

from repro.relational import statistics as table_stats
from repro.relational.algebra import logical
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    conjoin,
    conjuncts,
)
from repro.relational.statistics import (
    DEFAULT_ROW_ESTIMATE,
    ColumnStatistics,
    TableStatistics,
    column_stats_resolver,
    combine_aggregate_estimate,
    combine_join_estimate,
    estimate_predicate_selectivity,
    group_keys_cardinality,
    join_condition_selectivity,
)
from repro.relational.types import Schema

DEFAULT_ROWS = DEFAULT_ROW_ESTIMATE
MAX_REORDER_RELATIONS = 6


class PhysicalPlanner:
    """Plans logical operator trees against catalog statistics.

    ``catalog`` needs ``get_table(name)`` and ``table_statistics(name)``
    (:class:`repro.relational.catalog.Catalog` provides both); lookups
    failing (virtual tables like ``scoring_models``) degrade to default
    estimates.
    """

    def __init__(self, catalog, execution_options=None):
        self._catalog = catalog
        # The executor's knobs (zone-map pruning on/off, copy
        # threshold), so EXPLAIN reports the plan that will actually
        # execute rather than an idealized one.
        self._execution_options = execution_options

    # -- statistics access ---------------------------------------------------

    def _table_statistics(self, name: str) -> TableStatistics | None:
        try:
            return self._catalog.table_statistics(name)
        except Exception:
            return None

    def _stats_resolver(
        self, plan: logical.LogicalOp
    ) -> Callable[[str], ColumnStatistics | None]:
        """Column-stats lookup over every base table scanned by ``plan``."""
        sources: list[tuple[TableStatistics, str | None]] = []
        for op in plan.walk():
            if not isinstance(op, logical.Scan):
                continue
            stats = self._table_statistics(op.table_name)
            if stats is not None:
                sources.append((stats, op.alias))
        return column_stats_resolver(sources)

    # -- cardinality estimation ----------------------------------------------

    def estimate_rows(
        self,
        plan: logical.LogicalOp,
        _memo: dict[int, float] | None = None,
        _resolve=None,
    ) -> float:
        """Estimated output rows, memoized per node within one call tree.

        Without the memo, every parent re-estimates its whole subtree
        and EXPLAIN/reorder costing turns quadratic in plan size. The
        column-stats resolver is likewise built once per call tree (it
        covers every scan under ``plan``) instead of per node.
        """
        memo = _memo if _memo is not None else {}
        if _resolve is None:
            _resolve = self._stats_resolver(plan)
        key = id(plan)
        cached = memo.get(key)
        if cached is None:
            cached = self._estimate(plan, memo, _resolve)
            memo[key] = cached
        return cached

    def _estimate(
        self, plan: logical.LogicalOp, memo: dict[int, float], resolve
    ) -> float:
        if isinstance(plan, logical.Scan):
            stats = self._table_statistics(plan.table_name)
            return float(stats.row_count) if stats else DEFAULT_ROWS
        if isinstance(plan, logical.InlineTable):
            return float(plan.table.num_rows)
        if isinstance(plan, logical.Filter):
            child = self.estimate_rows(plan.child, memo, resolve)
            selectivity = estimate_predicate_selectivity(
                plan.predicate, resolve
            )
            return max(1.0, child * selectivity)
        if isinstance(plan, logical.Join):
            left = self.estimate_rows(plan.left, memo, resolve)
            right = self.estimate_rows(plan.right, memo, resolve)
            if plan.kind == "CROSS" or plan.condition is None:
                return left * right
            return combine_join_estimate(
                left,
                right,
                plan.kind,
                join_condition_selectivity(plan.condition, resolve),
            )
        if isinstance(plan, logical.Aggregate):
            return combine_aggregate_estimate(
                self.estimate_rows(plan.child, memo, resolve),
                group_keys_cardinality(plan.group_by, resolve),
            )
        if isinstance(plan, logical.Limit):
            return min(
                self.estimate_rows(plan.child, memo, resolve),
                float(plan.count),
            )
        if isinstance(plan, logical.UnionAll):
            return sum(
                self.estimate_rows(b, memo, resolve) for b in plan.branches
            )
        if plan.children:
            return self.estimate_rows(plan.children[0], memo, resolve)
        return DEFAULT_ROWS

    # -- plan rewriting ------------------------------------------------------

    def optimize(self, plan: logical.LogicalOp) -> logical.LogicalOp:
        """Push predicates down, then reorder INNER-join chains."""
        if isinstance(plan, logical.Filter) and isinstance(
            plan.child, (logical.Join, logical.Predict)
        ):
            residual: list[Expression] = []
            child = plan.child
            for conjunct in conjuncts(plan.predicate):
                # Resolve references in the conjunct's *original* scope
                # once; placement below only follows those stored
                # columns, so a bare name can never re-bind to a
                # different relation than evaluation here would pick.
                resolved = _resolve_refs(child.schema, conjunct)
                sunk = (
                    self._sink(child, conjunct, resolved)
                    if resolved is not None
                    else None
                )
                if sunk is None:
                    residual.append(conjunct)
                else:
                    child = sunk
            optimized = self.optimize(child)
            if residual:
                return logical.Filter(optimized, conjoin(residual))
            return optimized
        if isinstance(plan, logical.Join):
            reordered = self._maybe_reorder(plan)
            if reordered is not None:
                return reordered
        children = tuple(self.optimize(c) for c in plan.children)
        if not children:
            return plan
        return plan.with_children(children)

    def _sink(
        self,
        plan: logical.LogicalOp,
        conjunct: Expression,
        resolved: frozenset,
    ) -> logical.LogicalOp | None:
        """Push one conjunct down, guided by its resolved stored columns.

        ``resolved`` is the set of stored column names the conjunct's
        references bind to in its original scope; a subtree may host
        the filter only if it exposes exactly those columns, so
        placement can never silently re-bind a reference.
        """
        if not resolved <= _stored_names(plan.schema):
            return None
        if isinstance(plan, logical.Join):
            # LEFT joins only accept pushdown into the preserved side;
            # filtering the null-padded side changes results.
            allow_left = plan.kind in ("INNER", "CROSS", "LEFT")
            allow_right = plan.kind in ("INNER", "CROSS")
            if allow_left:
                sunk = self._sink(plan.left, conjunct, resolved)
                if sunk is not None:
                    return plan.with_children((sunk, plan.right))
            if allow_right:
                sunk = self._sink(plan.right, conjunct, resolved)
                if sunk is not None:
                    return plan.with_children((plan.left, sunk))
            if plan.kind in ("INNER", "CROSS"):
                # Spans both sides: merge into the join condition.
                condition = (
                    conjunct
                    if plan.condition is None
                    else conjoin([plan.condition, conjunct])
                )
                return logical.Join(plan.left, plan.right, "INNER", condition)
            return None
        if isinstance(plan, logical.Predict):
            # Score fewer rows: a conjunct that only touches input
            # columns moves below the model call. Any reference that
            # could mean a prediction output (its alias, or a bare name
            # colliding with an output column) keeps the filter above.
            output_names = {name.lower() for name, _ in plan.output_columns}
            for ref in conjunct.columns():
                if ref.split(".")[-1].lower() in output_names:
                    return None
                if plan.alias and ref.lower().startswith(
                    plan.alias.lower() + "."
                ):
                    return None
            sunk = self._sink(plan.child, conjunct, resolved)
            if sunk is not None:
                return plan.with_children((sunk,))
            return None
        if isinstance(plan, logical.Filter):
            # Sink past this filter only when the conjunct can go
            # strictly deeper (into a join side or below a model call);
            # over a leaf, merge into ONE filter — stacked filters
            # would hide the Filter(Scan) shape from zone-map pruning
            # and the morsel-parallel PREDICT path.
            if isinstance(plan.child, (logical.Join, logical.Predict)):
                sunk = self._sink(plan.child, conjunct, resolved)
                if sunk is not None:
                    return logical.Filter(sunk, plan.predicate)
            return logical.Filter(plan.child, plan.predicate & conjunct)
        return logical.Filter(plan, conjunct)

    # -- join reordering -----------------------------------------------------

    def _maybe_reorder(self, plan: logical.Join) -> logical.LogicalOp | None:
        """Greedy reorder of an INNER/CROSS join chain (3..6 relations).

        Every ON conjunct is resolved to stored column names in the
        scope of the join that originally carried it; re-placement
        (onto a leaf, into another join, or a residual filter) then
        follows those stored names only, so reordering can never
        re-bind a bare reference to a different relation.
        """
        leaves: list[logical.LogicalOp] = []
        conditions: list[tuple[Expression, frozenset | None]] = []

        def collect(op: logical.LogicalOp) -> None:
            if isinstance(op, logical.Join) and op.kind in ("INNER", "CROSS"):
                collect(op.left)
                collect(op.right)
                if op.condition is not None:
                    for conjunct in conjuncts(op.condition):
                        mapping = _resolve_ref_mapping(op.schema, conjunct)
                        if mapping is None:
                            conditions.append((conjunct, None))
                            continue
                        # Rewrite refs to their resolved stored names:
                        # a bare ref that was unambiguous at this join
                        # may become ambiguous in the reordered scope
                        # it gets placed into.
                        qualified = conjunct.substitute(
                            {
                                ref: ColumnRef(stored)
                                for ref, stored in mapping.items()
                                if ref.lower() != stored
                            }
                        )
                        conditions.append(
                            (qualified, frozenset(mapping.values()))
                        )
            else:
                leaves.append(op)

        collect(plan)
        if not (3 <= len(leaves) <= MAX_REORDER_RELATIONS):
            return None
        leaves = [self.optimize(leaf) for leaf in leaves]
        leaf_names = [_stored_names(leaf.schema) for leaf in leaves]

        # Single-relation conjuncts in ON clauses become leaf filters so
        # the greedy search sees their selectivity; conjuncts that do
        # not resolve cleanly stay in a residual filter on top (where
        # evaluation reports the same error the original plan would).
        unused: list[tuple[Expression, frozenset]] = []
        unplaceable: list[Expression] = []
        for conjunct, resolved in conditions:
            if resolved is None:
                unplaceable.append(conjunct)
                continue
            for i, names in enumerate(leaf_names):
                if resolved <= names:
                    leaf = leaves[i]
                    if isinstance(leaf, logical.Filter):
                        # Merge, keeping a single Filter(Scan) so the
                        # executor's pruning fast path still matches.
                        leaves[i] = logical.Filter(
                            leaf.child, leaf.predicate & conjunct
                        )
                    else:
                        leaves[i] = logical.Filter(leaf, conjunct)
                    break
            else:
                unused.append((conjunct, resolved))

        resolve = self._stats_resolver(plan)
        memo: dict[int, float] = {}
        estimates = [
            self.estimate_rows(leaf, memo, resolve) for leaf in leaves
        ]
        remaining = set(range(len(leaves)))

        def applicable_between(
            names_a: frozenset, names_b: frozenset
        ) -> list[tuple[Expression, frozenset]]:
            return [
                (conjunct, resolved)
                for conjunct, resolved in unused
                if resolved <= (names_a | names_b)
                and not resolved <= names_a
                and not resolved <= names_b
            ]

        def joined_estimate(
            rows_a: float,
            rows_b: float,
            applicable: list[tuple[Expression, frozenset]],
        ) -> float:
            joined = rows_a * rows_b
            for condition, _resolved in applicable:
                selectivity = join_condition_selectivity(condition, resolve)
                joined *= (
                    selectivity
                    if selectivity is not None
                    else table_stats.DEFAULT_SELECTIVITY
                )
            return joined

        # Seed with the cheapest connected *pair* — starting from the
        # single smallest relation can force an expensive first join
        # when the small relation only connects to a big one.
        seed = None
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                applicable = applicable_between(leaf_names[i], leaf_names[j])
                joined = joined_estimate(estimates[i], estimates[j], applicable)
                key = (0 if applicable else 1, joined)
                if seed is None or key < seed[0]:
                    seed = (key, i, j, applicable)
        assert seed is not None
        (_seed_rank, seed_rows), left_i, right_i, seed_conditions = seed
        # Hash joins build on the right input: put the smaller side there.
        if estimates[left_i] < estimates[right_i]:
            left_i, right_i = right_i, left_i

        def attach(
            left: logical.LogicalOp,
            right: logical.LogicalOp,
            applicable: list[tuple[Expression, frozenset]],
        ) -> logical.LogicalOp:
            if applicable:
                for used in applicable:
                    unused.remove(used)
                return logical.Join(
                    left, right, "INNER",
                    conjoin([conjunct for conjunct, _ in applicable]),
                )
            return logical.Join(left, right, "CROSS", None)

        tree = attach(leaves[left_i], leaves[right_i], seed_conditions)
        tree_names = leaf_names[left_i] | leaf_names[right_i]
        tree_rows = max(1.0, seed_rows)
        remaining -= {left_i, right_i}
        while remaining:
            best = None
            for i in remaining:
                applicable = applicable_between(tree_names, leaf_names[i])
                joined = joined_estimate(tree_rows, estimates[i], applicable)
                # Connected candidates strictly outrank cross joins.
                key = (0 if applicable else 1, joined)
                if best is None or key < best[0]:
                    best = (key, i, applicable)
            assert best is not None
            (_rank, joined_rows), chosen, applicable = best
            tree = attach(tree, leaves[chosen], applicable)
            tree_names |= leaf_names[chosen]
            tree_rows = max(1.0, joined_rows)
            remaining.remove(chosen)
        leftover = unplaceable + [conjunct for conjunct, _ in unused]
        if leftover:
            tree = logical.Filter(tree, conjoin(leftover))
        return tree

    # -- EXPLAIN rendering ---------------------------------------------------

    def explain_lines(self, plan: logical.LogicalOp) -> list[str]:
        """The optimized plan, one indented line per operator.

        Filters over scans additionally report how many partitions the
        zone maps keep, e.g. ``partitions=2/13 (zone-map)``.
        """
        lines: list[str] = []
        memo: dict[int, float] = {}
        resolve = self._stats_resolver(plan)

        def walk(
            op: logical.LogicalOp,
            depth: int,
            parent: logical.LogicalOp | None,
        ) -> None:
            annotations = [
                f"est_rows={self.estimate_rows(op, memo, resolve):.0f}"
            ]
            if isinstance(op, logical.Filter):
                selectivity = estimate_predicate_selectivity(
                    op.predicate, resolve
                )
                annotations.append(f"selectivity={selectivity:.3f}")
                if isinstance(op.child, logical.Scan) and (
                    self._execution_options is None
                    or self._execution_options.enable_zone_map_pruning
                ):
                    pruning = self._pruning_counts(op.child, op.predicate)
                    if pruning is not None:
                        from repro.relational.algebra.executor import (
                            ExecutionOptions,
                            Executor,
                        )

                        kept, total, table_rows = pruning
                        opts = (
                            self._execution_options or ExecutionOptions()
                        )
                        # Mirror the executor's decision. A filter
                        # feeding PREDICT on a big-enough table runs
                        # morsel-parallel and skips pruned partitions
                        # without compaction, so no copy threshold
                        # applies; otherwise weak pruning is declined
                        # (compaction would cost more than it saves).
                        morsel = (
                            isinstance(parent, logical.Predict)
                            and opts.morsel_parallel_predict
                            and opts.parallel_predict
                            and table_rows >= opts.parallel_row_threshold
                        )
                        if morsel or (
                            kept <= total * Executor.PRUNE_COPY_THRESHOLD
                        ):
                            annotations.append(
                                f"partitions={kept}/{total} (zone-map)"
                            )
                        else:
                            annotations.append(
                                f"partitions={kept}/{total} "
                                "(zone-map: weak, full scan)"
                            )
            if isinstance(op, logical.Scan):
                stats = self._table_statistics(op.table_name)
                if stats is not None:
                    annotations[0] = f"rows={stats.row_count}"
            lines.append(
                "  " * depth + _describe(op) + " [" + ", ".join(annotations) + "]"
            )
            for child in op.children:
                walk(child, depth + 1, op)

        walk(plan, 0, None)
        return lines

    def _pruning_counts(
        self, scan: logical.Scan, predicate: Expression
    ) -> tuple[int, int, int] | None:
        """``(kept, total, table_rows)`` under zone maps, or ``None``.

        ``table_rows`` is the live table's row count (not the possibly
        drift-stale statistics), because the executor's morsel guard
        checks the real table.
        """
        try:
            table = self._catalog.get_table(scan.table_name)
        except Exception:
            return None
        keep = table_stats.surviving_partitions(table, predicate)
        if keep is None:
            return None
        return int(keep.sum()), int(len(keep)), table.num_rows


def _stored_names(schema: Schema) -> frozenset:
    return frozenset(column.name.lower() for column in schema)


def _resolve_ref_mapping(
    schema: Schema, expr: Expression
) -> dict[str, str] | None:
    """Map each column reference to the stored name it binds to in scope.

    Mirrors the executor's resolution order (exact, unique suffix,
    qualified fallback) so placement decisions follow exactly the
    columns evaluation would read. ``None`` when any reference fails or
    is ambiguous — such a conjunct must stay where it is, preserving
    the runtime error instead of silently picking a side.
    """
    names = [stored.lower() for stored in schema.names]
    mapping: dict[str, str] = {}
    for ref in expr.columns():
        key = ref.lower()
        if key in names:
            mapping[ref] = key
            continue
        suffix_matches = [
            stored for stored in names if stored.endswith("." + key)
        ]
        if len(suffix_matches) == 1:
            mapping[ref] = suffix_matches[0]
            continue
        if suffix_matches:
            return None  # ambiguous
        if "." in key:
            short = key.rsplit(".", 1)[-1]
            if short in names:
                mapping[ref] = short
                continue
        return None
    return mapping


def _resolve_refs(schema: Schema, expr: Expression) -> frozenset | None:
    """Stored column names the expression's references bind to in scope."""
    mapping = _resolve_ref_mapping(schema, expr)
    return frozenset(mapping.values()) if mapping is not None else None


def _describe(op: logical.LogicalOp) -> str:
    label = type(op).__name__
    if isinstance(op, logical.Scan):
        return f"{label} {op.table_name}" + (
            f" AS {op.alias}" if op.alias else ""
        )
    if isinstance(op, logical.Filter):
        return f"{label} [{op.predicate!r}]"
    if isinstance(op, logical.Project):
        return f"{label} [" + ", ".join(n for _, n in op.items) + "]"
    if isinstance(op, logical.Join):
        detail = f" [{op.condition!r}]" if op.condition is not None else ""
        return f"{label} {op.kind}{detail}"
    if isinstance(op, logical.Predict):
        return f"{label} model={op.model_ref}"
    if isinstance(op, logical.Limit):
        return f"{label} {op.count}"
    return label
