"""Statistics-driven physical planning over logical plans.

Since the memo refactor, plan *search* lives in the unified Cascades
engine (:mod:`repro.core.optimizer.search`): predicate pushdown, DP
join ordering, and the catalog-model rewrites are memo rules shared
with the cross-IR optimizer. This module is the SQL-side shim around
it — it wires the catalog and execution options into a search context,
keeps the cardinality-estimation entry points the rest of the
relational layer uses, and renders ``EXPLAIN`` output (per-operator
row/cost estimates, zone-map pruning outcomes, and the memo's search
statistics).

``join_search`` selects the search mode:

* ``"dp"`` (default) — Selinger DP inside the memo for 3..10-relation
  INNER/CROSS chains (bushy allowed), greedy seed beyond;
* ``"greedy"`` — the greedy seed for any chain size (ablations);
* ``"legacy"`` — the PR 2 behavior: greedy up to 6 relations, FROM
  order beyond (the benchmark baseline).
"""

from __future__ import annotations

from repro.distributed.operators import (
    Gather,
    Repartition,
    ShardScan,
    Shuffle,
    ShuffleJoin,
)
from repro.relational import statistics as table_stats
from repro.relational.algebra import logical
from repro.relational.expressions import Expression
from repro.relational.statistics import (
    DEFAULT_ROW_ESTIMATE,
    TableStatistics,
    estimate_predicate_selectivity,
)

DEFAULT_ROWS = DEFAULT_ROW_ESTIMATE


def _search():
    """The memo search engine, imported lazily.

    ``repro.core.optimizer`` transitively imports the relational layer
    (IR schemas use relational types), so a module-level import here
    would close an import cycle through ``repro.relational.database``.
    """
    from repro.core.optimizer import search

    return search


class PhysicalPlanner:
    """Plans logical operator trees through the shared memo engine.

    ``catalog`` needs ``get_table(name)``, ``table_statistics(name)``
    and ``get_model(name)`` (:class:`repro.relational.catalog.Catalog`
    provides all three); lookups failing (virtual tables like
    ``scoring_models``) degrade to default estimates.
    """

    def __init__(self, catalog, execution_options=None, join_search="dp"):
        self._catalog = catalog
        # The executor's knobs (zone-map pruning on/off, copy
        # threshold), so EXPLAIN reports the plan that will actually
        # execute rather than an idealized one.
        self._execution_options = execution_options
        self.join_search = join_search
        #: The memo report of the most recent ``optimize`` call — a
        #: single-threaded diagnostic (like the executor's
        #: ``last_scan_pruning``) that EXPLAIN renders.
        self.last_report = None

    # -- plan optimization ---------------------------------------------------

    def optimize(self, plan: logical.LogicalOp) -> logical.LogicalOp:
        """Search the memo for the cheapest equivalent plan."""
        search = _search()
        context = search.SearchContext(
            catalog=self._catalog,
            join_search=self.join_search,
            options=self._search_options(),
        )
        optimizer = search.MemoOptimizer(search.sql_rules(), context)
        best, report = optimizer.optimize(plan)
        self.last_report = report
        return best

    def _search_options(self) -> dict:
        """Executor knobs the memo rules honor (distribution on/off,
        assumed worker-pool width for fan-out costing)."""
        options = self._execution_options
        if options is None:
            return {}
        return {
            "enable_distributed": options.enable_distributed,
            "shard_workers": options.max_workers,
            "enable_staged_fragments": getattr(
                options, "enable_staged_fragments", True
            ),
        }

    # -- statistics access ---------------------------------------------------

    def _table_statistics(self, name: str) -> TableStatistics | None:
        try:
            return self._catalog.table_statistics(name)
        except Exception:
            return None

    def _estimation_context(self, plan: logical.LogicalOp):
        context = _search().SearchContext(
            catalog=self._catalog, options=self._search_options()
        )
        context.prepare(plan)
        return context

    # -- cardinality estimation ----------------------------------------------

    def estimate_rows(self, plan: logical.LogicalOp) -> float:
        """Estimated output rows (the memo's shared estimator).

        Builds a fresh estimation context per call; callers estimating
        many nodes of one plan should estimate the root (the context
        memoizes per sub-tree internally) or use ``explain_lines``.
        """
        return self._estimation_context(plan).estimate_tree(plan)

    # -- EXPLAIN rendering ---------------------------------------------------

    def explain_lines(
        self, plan: logical.LogicalOp, actuals=None
    ) -> list[str]:
        """The optimized plan, one indented line per operator.

        Each line carries the estimated rows and (after the bracket)
        the operator's estimated cost; filters over scans additionally
        report how many partitions the zone maps keep, e.g.
        ``partitions=2/13 (zone-map)``. When a memo search ran
        (``optimize`` was called), its statistics — groups created,
        expressions explored, branches pruned, DP subset counts — and
        the rules that fired are appended as footer lines.

        ``actuals`` (EXPLAIN ANALYZE) maps ``id(op)`` to the
        instrumented executor's :class:`OperatorStats`; measured
        operators additionally print actual rows, wall time, and the
        estimate's q-error. Operators fused into a parent pipeline (or
        executed worker-side inside a fragment) have no record and keep
        their estimate-only line.
        """
        from repro.observability.explain import analyze_annotations

        lines: list[str] = []
        context = self._estimation_context(plan)
        resolve = context.resolver

        def walk(
            op: logical.LogicalOp,
            depth: int,
            parent: logical.LogicalOp | None,
        ) -> None:
            rows = context.estimate_tree(op)
            annotations = [f"est_rows={rows:.0f}"]
            if isinstance(op, logical.Filter):
                selectivity = estimate_predicate_selectivity(
                    op.predicate, resolve
                )
                annotations.append(f"selectivity={selectivity:.3f}")
                if isinstance(op.child, logical.Scan) and (
                    self._execution_options is None
                    or self._execution_options.enable_zone_map_pruning
                ):
                    pruning = self._pruning_counts(op.child, op.predicate)
                    if pruning is not None:
                        from repro.relational.algebra.executor import (
                            ExecutionOptions,
                            Executor,
                        )

                        kept, total, table_rows = pruning
                        opts = (
                            self._execution_options or ExecutionOptions()
                        )
                        # Mirror the executor's decision. A filter
                        # feeding PREDICT on a big-enough table runs
                        # morsel-parallel and skips pruned partitions
                        # without compaction, so no copy threshold
                        # applies; otherwise weak pruning is declined
                        # (compaction would cost more than it saves).
                        morsel = (
                            isinstance(parent, logical.Predict)
                            and opts.morsel_parallel_predict
                            and opts.parallel_predict
                            and table_rows >= opts.parallel_row_threshold
                        )
                        if morsel or (
                            kept <= total * Executor.PRUNE_COPY_THRESHOLD
                        ):
                            annotations.append(
                                f"partitions={kept}/{total} (zone-map)"
                            )
                        else:
                            annotations.append(
                                f"partitions={kept}/{total} "
                                "(zone-map: weak, full scan)"
                            )
            if isinstance(op, logical.Scan):
                stats = self._table_statistics(op.table_name)
                if stats is not None:
                    annotations[0] = f"rows={stats.row_count}"
            if isinstance(op, Gather):
                suffix = (
                    " (zone-map)" if op.pruned_by == "zone-map" else ""
                )
                shards = (
                    f"shards={op.shards_scanned}/{op.total_shards}{suffix}"
                )
                if op.join == "colocated":
                    shards = f"join=colocated {shards}"
                    if any(
                        isinstance(n, logical.Aggregate)
                        for n in op.fragment.walk()
                    ):
                        shards += " [partial-agg]"
                annotations.append(shards)
            if isinstance(op, ShuffleJoin):
                detail = f"join=shuffle buckets={op.num_buckets}"
                if op.stages:
                    detail += f" stages={len(op.stages)}"
                annotations.append(detail)
            if isinstance(op, Shuffle):
                if op.is_sharded:
                    suffix = (
                        " (zone-map)" if op.pruned_by == "zone-map" else ""
                    )
                    annotations.append(
                        f"shards={len(op.shard_ids)}/{op.total_shards}"
                        f"{suffix}"
                    )
                else:
                    annotations.append("local")
            if actuals is not None:
                record = actuals.get(id(op))
                if record is not None:
                    annotations.extend(analyze_annotations(record, rows))
            child_rows = [context.estimate_tree(c) for c in op.children]
            cost = _search().operator_cost(op, rows, child_rows, context)
            lines.append(
                "  " * depth
                + _describe(op)
                + " ["
                + ", ".join(annotations)
                + "]"
                + f" cost={cost:.0f}"
            )
            if isinstance(op, Gather):
                # The per-shard fragment, rendered as a sub-plan.
                walk(op.fragment, depth + 1, op)
            if isinstance(op, ShuffleJoin):
                walk(op.left, depth + 1, op)
                walk(op.right, depth + 1, op)
                # Post-join worker stages, rendered as sub-plans under
                # a stage=k/N header (the whole pipeline runs in the
                # same worker round-trip as the bucket join).
                for index, stage in enumerate(op.stages):
                    marker = (
                        " [partial-agg]"
                        if any(
                            isinstance(n, logical.Aggregate)
                            for n in stage.walk()
                        )
                        else ""
                    )
                    lines.append(
                        "  " * (depth + 1)
                        + f"Stage stage={index + 1}/{len(op.stages)}"
                        + marker
                    )
                    walk(stage, depth + 2, op)
            if isinstance(op, Shuffle):
                walk(op.fragment, depth + 1, op)
            for child in op.children:
                walk(child, depth + 1, op)

        walk(plan, 0, None)
        lines.extend(self._memo_footer())
        return lines

    def _memo_footer(self) -> list[str]:
        """Search statistics of the last ``optimize`` call, as text.

        Rule names render as lowercase slugs so the footer never
        collides with operator-line assertions (``Filter``, ``Join``).
        """
        report = self.last_report
        if report is None:
            return []
        stats = report.stats
        lines = [
            "memo: groups={} expressions={} explored={} pruned={} "
            "dedup={}".format(
                stats.groups_created,
                stats.expressions_added,
                stats.expressions_explored,
                stats.branches_pruned,
                stats.dedup_hits,
            )
        ]
        if stats.dp_relations or stats.dp_fallbacks:
            lines.append(
                "memo: dp relations={} subsets={} fallbacks={}".format(
                    stats.dp_relations, stats.dp_subsets, stats.dp_fallbacks
                )
            )
        fired = stats.fired_rule_names()
        if fired:
            lines.append("memo rules: " + ", ".join(_slug(n) for n in fired))
        return lines

    def _pruning_counts(
        self, scan: logical.Scan, predicate: Expression
    ) -> tuple[int, int, int] | None:
        """``(kept, total, table_rows)`` under zone maps, or ``None``.

        ``table_rows`` is the live table's row count (not the possibly
        drift-stale statistics), because the executor's morsel guard
        checks the real table.
        """
        try:
            table = self._catalog.get_table(scan.table_name)
        except Exception:
            return None
        keep = table_stats.surviving_partitions(table, predicate)
        if keep is None:
            return None
        return int(keep.sum()), int(len(keep)), table.num_rows


def _slug(name: str) -> str:
    out = []
    for i, char in enumerate(name):
        if char.isupper() and i > 0 and not name[i - 1].isupper():
            out.append("_")
        out.append(char.lower())
    return "".join(out)


def _describe(op: logical.LogicalOp) -> str:
    label = type(op).__name__
    if isinstance(op, (logical.Scan, ShardScan)):
        return f"{label} {op.table_name}" + (
            f" AS {op.alias}" if op.alias else ""
        )
    if isinstance(op, Gather):
        return f"{label} {op.table_name} key={op.shard_key}"
    if isinstance(op, Shuffle):
        return f"{label} {op.table_name} key={op.key}"
    if isinstance(op, ShuffleJoin):
        return f"{label} {op.kind} [{op.condition!r}]"
    if isinstance(op, Repartition):
        return f"{label} key={op.key} buckets={op.num_buckets}"
    if isinstance(op, logical.Filter):
        return f"{label} [{op.predicate!r}]"
    if isinstance(op, logical.Project):
        return f"{label} [" + ", ".join(n for _, n in op.items) + "]"
    if isinstance(op, logical.Join):
        detail = f" [{op.condition!r}]" if op.condition is not None else ""
        return f"{label} {op.kind}{detail}"
    if isinstance(op, logical.Predict):
        detail = f"{label} model={op.model_ref}"
        backend = dict(op.extra).get("backend") if op.extra else None
        if backend:
            detail += f" backend={backend}"
        return detail
    if isinstance(op, logical.Limit):
        return f"{label} {op.count}"
    return label
