"""Logical plan operators for the relational engine.

A logical plan is a tree of :class:`LogicalOp` nodes, each of which knows its
output schema. The binder produces these from SQL ASTs; the physical
executor interprets them; the Raven analyzer lifts them into the unified IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import BindError, SchemaError
from repro.relational.expressions import Expression
from repro.relational.table import Table
from repro.relational.types import Column, DataType, Schema

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class LogicalOp:
    """Base class for logical operators."""

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    @property
    def children(self) -> tuple["LogicalOp", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        """Rebuild this node with new children (rewrites use this)."""
        if children:
            raise BindError(f"{type(self).__name__} takes no children")
        return self

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class Scan(LogicalOp):
    """Read a base table (optionally aliased, which prefixes columns)."""

    table_name: str
    base_schema: Schema
    alias: str | None = None

    @property
    def schema(self) -> Schema:
        if self.alias:
            return self.base_schema.prefixed(self.alias)
        return self.base_schema


@dataclass(frozen=True)
class InlineTable(LogicalOp):
    """A literal table (VALUES rows, or data injected by the runtime).

    ``source_name`` remembers which application-supplied ``data`` binding
    produced this table, so prepared queries can re-bind fresh request
    data into a cached plan without re-analyzing the query.
    """

    table: Table
    alias: str | None = None
    source_name: str | None = None

    @property
    def schema(self) -> Schema:
        if self.alias:
            return self.table.schema.prefixed(self.alias)
        return self.table.schema


@dataclass(frozen=True)
class Filter(LogicalOp):
    child: LogicalOp
    predicate: Expression

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Filter":
        (child,) = children
        return Filter(child, self.predicate)


@dataclass(frozen=True)
class Project(LogicalOp):
    """Compute named expressions (the SELECT list)."""

    child: LogicalOp
    items: tuple[tuple[Expression, str], ...]  # (expression, output name)

    @property
    def schema(self) -> Schema:
        in_schema = self.child.schema
        cols = []
        for expr, name in self.items:
            try:
                dtype = expr.output_type(in_schema)
            except SchemaError:
                dtype = DataType.FLOAT
            cols.append(Column(name, dtype))
        return Schema(tuple(cols))

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Project":
        (child,) = children
        return Project(child, self.items)


@dataclass(frozen=True)
class Join(LogicalOp):
    left: LogicalOp
    right: LogicalOp
    kind: str  # INNER, LEFT, CROSS (RIGHT/FULL are normalized by the binder)
    condition: Expression | None

    @property
    def schema(self) -> Schema:
        return self.left.schema.concat(self.right.schema)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "Join":
        left, right = children
        return Join(left, right, self.kind, self.condition)


@dataclass(frozen=True)
class Aggregate(LogicalOp):
    """GROUP BY with aggregate functions."""

    child: LogicalOp
    group_by: tuple[tuple[Expression, str], ...]
    aggregates: tuple[tuple[str, Expression | None, str], ...]
    # each aggregate: (function name, argument or None for COUNT(*), alias)

    @property
    def schema(self) -> Schema:
        in_schema = self.child.schema
        cols = [
            Column(name, expr.output_type(in_schema))
            for expr, name in self.group_by
        ]
        for func, arg, alias in self.aggregates:
            if func in ("COUNT",):
                cols.append(Column(alias, DataType.INT))
            elif func in ("AVG",):
                cols.append(Column(alias, DataType.FLOAT))
            elif arg is not None:
                cols.append(Column(alias, arg.output_type(in_schema)))
            else:
                cols.append(Column(alias, DataType.FLOAT))
        return Schema(tuple(cols))

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.aggregates)


@dataclass(frozen=True)
class OrderBy(LogicalOp):
    child: LogicalOp
    keys: tuple[tuple[Expression, bool], ...]  # (expr, ascending)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "OrderBy":
        (child,) = children
        return OrderBy(child, self.keys)


@dataclass(frozen=True)
class Limit(LogicalOp):
    child: LogicalOp
    count: int

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)


@dataclass(frozen=True)
class Distinct(LogicalOp):
    child: LogicalOp

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Distinct":
        (child,) = children
        return Distinct(child)


@dataclass(frozen=True)
class UnionAll(LogicalOp):
    branches: tuple[LogicalOp, ...]

    @property
    def schema(self) -> Schema:
        return self.branches[0].schema

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return self.branches

    def with_children(self, children: Sequence[LogicalOp]) -> "UnionAll":
        return UnionAll(tuple(children))


@dataclass(frozen=True)
class Predict(LogicalOp):
    """The ``PREDICT(MODEL=..., DATA=...)`` table-valued function.

    Appends the model's output columns to the input relation, exactly like
    SQL Server native scoring. ``model_ref`` names a model in the catalog
    (resolved from the ``@variable`` in the query); the physical executor
    resolves it to a scorer at run time.

    The memo optimizer's model rewrites (predicate-based pruning,
    projection pushdown) produce *rewritten* model objects that no longer
    exist in the catalog; such a plan carries the rewritten model inline:
    ``payload`` (the fitted pipeline / tensor graph / script source),
    ``flavor`` (which runtime understands the payload), and
    ``feature_names`` (the — possibly narrowed — input columns it reads).
    Executors score ``payload`` directly when present and fall back to
    catalog resolution by ``model_ref`` otherwise. ``extra`` round-trips
    auxiliary IR attributes (e.g. the tensor device) through the memo.
    """

    child: LogicalOp
    model_ref: str
    output_columns: tuple[tuple[str, DataType], ...]
    alias: str | None = None
    batch_size: int | None = field(default=None, compare=False)
    flavor: str | None = field(default=None, compare=False)
    payload: object = field(default=None, compare=False)
    feature_names: tuple[str, ...] | None = field(default=None, compare=False)
    extra: tuple[tuple[str, object], ...] = field(default=(), compare=False)

    @property
    def schema(self) -> Schema:
        out_cols = tuple(
            Column(f"{self.alias}.{name}" if self.alias else name, dtype)
            for name, dtype in self.output_columns
        )
        return Schema(self.child.schema.columns + out_cols)

    @property
    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Predict":
        (child,) = children
        return Predict(
            child,
            self.model_ref,
            self.output_columns,
            self.alias,
            self.batch_size,
            self.flavor,
            self.payload,
            self.feature_names,
            self.extra,
        )


def plan_to_string(op: LogicalOp, indent: int = 0) -> str:
    """Pretty-print a logical plan tree (tests assert against this)."""
    pad = "  " * indent
    label = type(op).__name__
    detail = ""
    if isinstance(op, Scan):
        detail = f" {op.table_name}" + (f" AS {op.alias}" if op.alias else "")
    elif isinstance(op, Filter):
        detail = f" [{op.predicate!r}]"
    elif isinstance(op, Project):
        detail = " [" + ", ".join(name for _, name in op.items) + "]"
    elif isinstance(op, Join):
        detail = f" {op.kind}" + (f" [{op.condition!r}]" if op.condition else "")
    elif isinstance(op, Predict):
        detail = f" model={op.model_ref}"
        backend = dict(op.extra).get("backend") if op.extra else None
        if backend:
            detail += f" backend={backend}"
    elif isinstance(op, Limit):
        detail = f" {op.count}"
    lines = [f"{pad}{label}{detail}"]
    for child in op.children:
        lines.append(plan_to_string(child, indent + 1))
    return "\n".join(lines)
