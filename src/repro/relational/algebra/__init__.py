"""Logical algebra and the vectorized physical executor."""

from repro.relational.algebra.binder import BindContext, Binder
from repro.relational.algebra.executor import ExecutionOptions, Executor

__all__ = ["BindContext", "Binder", "ExecutionOptions", "Executor"]
