"""Name resolution: SQL AST -> logical plan.

The binder resolves table names against a catalog, expands ``*``, detects
aggregate queries, normalizes join kinds, and resolves ``@model`` variables
declared earlier in the batch to catalog model references.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import BindError
from repro.relational.algebra import logical
from repro.relational.expressions import (
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
)
from repro.relational.sql import ast_nodes as ast
from repro.relational.types import Schema


@dataclass
class BindContext:
    """Per-batch binding state: CTEs and DECLAREd variables."""

    ctes: dict[str, logical.LogicalOp] = field(default_factory=dict)
    variables: dict[str, object] = field(default_factory=dict)

    def child(self) -> "BindContext":
        return BindContext(dict(self.ctes), dict(self.variables))


class Binder:
    """Binds SQL ASTs to logical plans against a catalog.

    The catalog just needs ``table_schema(name) -> Schema`` and
    ``has_table(name) -> bool``; :class:`repro.relational.catalog.Catalog`
    provides both.
    """

    def __init__(self, catalog):
        self._catalog = catalog

    # -- public API ----------------------------------------------------------

    def bind_select(
        self, stmt: ast.SelectStatement, context: BindContext | None = None
    ) -> logical.LogicalOp:
        context = context or BindContext()
        scope = context.child()
        for name, query in stmt.ctes:
            scope.ctes[name.lower()] = self.bind_select(query, scope)
        plan = self._bind_core(stmt, scope)
        if stmt.union:
            branches = [plan]
            for branch in stmt.union:
                branches.append(self._bind_core(branch, scope))
            widths = {len(b.schema) for b in branches}
            if len(widths) != 1:
                raise BindError("UNION ALL branches have different arity")
            plan = logical.UnionAll(tuple(branches))
        return plan

    # -- internals -----------------------------------------------------------

    def _bind_core(
        self, stmt: ast.SelectStatement, context: BindContext
    ) -> logical.LogicalOp:
        stmt = _substitute_variables(stmt, context.variables)
        if stmt.source is None:
            raise BindError("SELECT without FROM is not supported")
        plan = self._bind_table_ref(stmt.source, context)
        for join in stmt.joins:
            right = self._bind_table_ref(join.table, context)
            kind = join.kind
            left_plan, right_plan = plan, right
            if kind == "RIGHT":
                # Normalize RIGHT to LEFT by swapping inputs.
                kind = "LEFT"
                left_plan, right_plan = right, plan
            plan = logical.Join(left_plan, right_plan, kind, join.condition)
        if stmt.where is not None:
            plan = logical.Filter(plan, stmt.where)

        pre_projection = plan
        aggregates = self._collect_aggregates(stmt.items)
        if stmt.group_by or aggregates:
            plan = self._bind_aggregate(stmt, plan, aggregates)
        else:
            items = self._expand_items(stmt.items, plan.schema)
            plan = logical.Project(plan, tuple(items))

        if stmt.having is not None:
            plan = logical.Filter(plan, stmt.having)
        if stmt.distinct:
            plan = logical.Distinct(plan)
        if stmt.order_by:
            keys = tuple((item.expression, item.ascending) for item in stmt.order_by)
            # SQL permits ordering by columns that were projected away;
            # when a key only resolves pre-projection, sort below the
            # projection instead.
            if isinstance(plan, logical.Project) and not self._keys_resolve(
                keys, plan.schema
            ):
                sorted_child = logical.OrderBy(pre_projection, keys)
                plan = logical.Project(sorted_child, plan.items)
            else:
                plan = logical.OrderBy(plan, keys)
        if stmt.limit is not None:
            plan = logical.Limit(plan, stmt.limit)
        return plan

    @staticmethod
    def _keys_resolve(keys, schema) -> bool:
        for expr, _ascending in keys:
            for name in expr.columns():
                try:
                    schema.column(name)
                except Exception:
                    return False
        return True

    def _bind_table_ref(
        self, ref: ast.TableRef, context: BindContext
    ) -> logical.LogicalOp:
        if isinstance(ref, ast.NamedTable):
            key = ref.name.lower()
            if key in context.ctes:
                child = context.ctes[key]
                if ref.alias:
                    return self._alias_plan(child, ref.alias)
                return child
            if not self._catalog.has_table(ref.name):
                raise BindError(f"unknown table {ref.name!r}")
            schema = self._catalog.table_schema(ref.name)
            return logical.Scan(ref.name, schema, ref.alias)
        if isinstance(ref, ast.SubqueryTable):
            child = self.bind_select(ref.query, context)
            if ref.alias:
                return self._alias_plan(child, ref.alias)
            return child
        if isinstance(ref, ast.PredictTable):
            data_plan = self._bind_table_ref(ref.data, context)
            model_ref = context.variables.get(ref.model_variable)
            if model_ref is None:
                # Unbound variable: keep the raw name, the runtime resolves it.
                model_ref = f"@{ref.model_variable}"
            return logical.Predict(
                data_plan,
                str(model_ref),
                ref.output_columns,
                alias=ref.alias,
            )
        raise BindError(f"unsupported FROM item {type(ref).__name__}")

    @staticmethod
    def _alias_plan(child: logical.LogicalOp, alias: str) -> logical.LogicalOp:
        """Re-expose a subplan's columns under ``alias.``."""
        items = tuple(
            (ColumnRef(col.name), f"{alias}.{col.name.split('.')[-1]}")
            for col in child.schema
        )
        return logical.Project(child, items)

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], schema: Schema
    ) -> list[tuple[Expression, str]]:
        out: list[tuple[Expression, str]] = []
        used: set[str] = set()

        def output_name(base: str) -> str:
            name = base
            suffix = 1
            while name.lower() in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name.lower())
            return name

        for item in items:
            if item.star:
                for column in schema:
                    if item.star_qualifier and not column.name.lower().startswith(
                        item.star_qualifier.lower() + "."
                    ):
                        continue
                    short = column.name.split(".")[-1]
                    out.append((ColumnRef(column.name), output_name(short)))
                continue
            expr = item.expression
            assert expr is not None
            if item.alias:
                base = item.alias
            elif isinstance(expr, ColumnRef):
                base = expr.unqualified
            else:
                base = f"expr_{len(out) + 1}"
            out.append((expr, output_name(base)))
        return out

    @staticmethod
    def substitutable_variables(variables: dict[str, object]) -> dict[str, Expression]:
        """DECLAREd scalar values as a ``Parameter``-substitution mapping."""
        return {
            f"@{name}": Literal(value)
            for name, value in variables.items()
            if value is not None
        }

    def _collect_aggregates(
        self, items: tuple[ast.SelectItem, ...]
    ) -> list[tuple[str, Expression | None, str]]:
        aggregates = []
        for i, item in enumerate(items):
            expr = item.expression
            if isinstance(expr, FunctionCall) and (
                expr.name.upper() in logical.AGGREGATE_FUNCTIONS
            ):
                func = expr.name.upper()
                arg: Expression | None = expr.args[0] if expr.args else None
                if (
                    func == "COUNT"
                    and arg is not None
                    and isinstance(arg, ColumnRef)
                    and arg.name == "*"
                ):
                    arg = None
                alias = item.alias or f"{func.lower()}_{i + 1}"
                aggregates.append((func, arg, alias))
        return aggregates

    def _bind_aggregate(
        self,
        stmt: ast.SelectStatement,
        plan: logical.LogicalOp,
        aggregates: list[tuple[str, Expression | None, str]],
    ) -> logical.LogicalOp:
        group_items: list[tuple[Expression, str]] = []
        for expr in stmt.group_by:
            if isinstance(expr, ColumnRef):
                group_items.append((expr, expr.unqualified))
            else:
                group_items.append((expr, f"group_{len(group_items) + 1}"))
        # Non-aggregate SELECT items must appear in GROUP BY.
        for item in stmt.items:
            expr = item.expression
            if item.star or expr is None:
                raise BindError("SELECT * is not allowed with GROUP BY")
            if isinstance(expr, FunctionCall) and (
                expr.name.upper() in logical.AGGREGATE_FUNCTIONS
            ):
                continue
            if expr not in [g for g, _ in group_items]:
                raise BindError(
                    f"{expr!r} must appear in GROUP BY or an aggregate"
                )
            if item.alias:
                group_items = [
                    (g, item.alias if g == expr else name)
                    for g, name in group_items
                ]
        return logical.Aggregate(plan, tuple(group_items), tuple(aggregates))


def _substitute_variables(
    stmt: ast.SelectStatement, variables: dict[str, object]
) -> ast.SelectStatement:
    """Replace ``@var`` placeholders with DECLAREd values in one SELECT.

    Only this statement's own expression slots are rewritten; CTEs, FROM
    subqueries, and UNION branches each pass through :meth:`Binder._bind_core`
    themselves. Placeholders with no DECLAREd value (``?`` positional and
    unbound ``@pN``) survive as :class:`~repro.relational.expressions.Parameter`
    nodes for prepared-query binding.
    """
    if not variables:
        return stmt
    mapping = Binder.substitutable_variables(variables)
    if not mapping:
        return stmt

    def sub(expr: Expression | None) -> Expression | None:
        return expr.substitute(mapping) if expr is not None else None

    return replace(
        stmt,
        items=tuple(
            item if item.star else replace(item, expression=sub(item.expression))
            for item in stmt.items
        ),
        joins=tuple(
            replace(join, condition=sub(join.condition)) for join in stmt.joins
        ),
        where=sub(stmt.where),
        group_by=tuple(sub(expr) for expr in stmt.group_by),
        having=sub(stmt.having),
        order_by=tuple(
            replace(item, expression=sub(item.expression))
            for item in stmt.order_by
        ),
    )
