"""Vectorized physical executor for logical plans.

One physical implementation per logical operator, all column-at-a-time over
NumPy arrays: hash joins, sort-based ORDER BY, ``np.unique``-based grouping.
``Predict`` dispatches to a model scorer resolved from the model catalog —
this is the integration point where the "database" calls the "ML runtime",
and where chunked parallel scoring happens (the paper's Fig. 3 observation
that SQL Server parallelizes scan + PREDICT).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Protocol

import numpy as np

from repro.errors import ExecutionError
from repro.relational.algebra import logical
from repro.relational.table import Table
from repro.relational.types import DataType, Schema


class ModelResolver(Protocol):
    """Resolves a model reference to a batch scorer.

    The scorer takes the input :class:`Table` and returns a mapping from
    output column name to a 1-D array (one entry per declared output).
    """

    def resolve_scorer(
        self, model_ref: str, output_columns: tuple[tuple[str, DataType], ...]
    ) -> Callable[[Table], dict[str, np.ndarray]]: ...


class ExecutionOptions:
    """Tuning knobs for the executor (used by ablation benchmarks)."""

    def __init__(
        self,
        parallel_predict: bool = True,
        parallel_row_threshold: int = 50_000,
        max_workers: int = 8,
        default_batch_size: int | None = None,
    ):
        self.parallel_predict = parallel_predict
        self.parallel_row_threshold = parallel_row_threshold
        self.max_workers = max_workers
        self.default_batch_size = default_batch_size


class Executor:
    """Interprets logical plans against a table provider + model resolver."""

    def __init__(
        self,
        table_provider: Callable[[str], Table],
        model_resolver: ModelResolver | None = None,
        options: ExecutionOptions | None = None,
    ):
        self._table_provider = table_provider
        self._model_resolver = model_resolver
        self.options = options or ExecutionOptions()

    def execute(self, plan: logical.LogicalOp) -> Table:
        method = getattr(self, f"_execute_{type(plan).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"no physical operator for {type(plan).__name__}")
        return method(plan)

    # -- leaf operators -------------------------------------------------------

    def _execute_scan(self, op: logical.Scan) -> Table:
        table = self._table_provider(op.table_name)
        if op.alias:
            return table.prefixed(op.alias)
        return table

    def _execute_inlinetable(self, op: logical.InlineTable) -> Table:
        if op.alias:
            return op.table.prefixed(op.alias)
        return op.table

    # -- unary operators ------------------------------------------------------

    def _execute_filter(self, op: logical.Filter) -> Table:
        table = self.execute(op.child)
        mask = op.predicate.evaluate(table)
        mask = np.asarray(mask)
        if mask.ndim == 0:
            mask = np.full(table.num_rows, bool(mask))
        return table.filter(mask.astype(bool))

    def _execute_project(self, op: logical.Project) -> Table:
        table = self.execute(op.child)
        columns = {}
        for expr, name in op.items:
            values = np.asarray(expr.evaluate(table))
            if values.ndim == 0:
                values = np.full(table.num_rows, values[()])
            columns[name] = values
        schema_cols = []
        from repro.relational.types import Column

        for expr, name in op.items:
            schema_cols.append(
                Column(name, DataType.from_numpy(columns[name].dtype))
            )
        return Table(Schema(tuple(schema_cols)), columns)

    def _execute_orderby(self, op: logical.OrderBy) -> Table:
        table = self.execute(op.child)
        if table.num_rows == 0:
            return table
        # np.lexsort sorts by the last key first: feed keys in reverse.
        keys = []
        for expr, ascending in reversed(op.keys):
            values = expr.evaluate(table)
            if not ascending:
                if values.dtype.kind in ("U", "S"):
                    # Rank-invert strings (no stable negation exists).
                    order = np.argsort(values, kind="stable")
                    ranks = np.empty(len(values), dtype=np.int64)
                    ranks[order] = np.arange(len(values))
                    values = -ranks
                else:
                    values = -values
            keys.append(values)
        indices = np.lexsort(keys)
        return table.take(indices)

    def _execute_limit(self, op: logical.Limit) -> Table:
        return self.execute(op.child).head(op.count)

    def _execute_distinct(self, op: logical.Distinct) -> Table:
        table = self.execute(op.child)
        if table.num_rows == 0:
            return table
        seen: set[tuple] = set()
        keep = np.zeros(table.num_rows, dtype=bool)
        for i, row in enumerate(table.rows()):
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                keep[i] = True
        return table.filter(keep)

    # -- joins ----------------------------------------------------------------

    def _execute_join(self, op: logical.Join) -> Table:
        left = self.execute(op.left)
        right = self.execute(op.right)
        if op.kind == "CROSS" or op.condition is None:
            return self._cross_join(left, right)
        equi, residual = self._split_join_condition(op.condition, left, right)
        if equi is None:
            combined = self._cross_join(left, right)
            mask = op.condition.evaluate(combined).astype(bool)
            return combined.filter(mask)
        left_key, right_key = equi
        result = self._hash_join(left, right, left_key, right_key, op.kind)
        if residual is not None:
            mask = residual.evaluate(result).astype(bool)
            result = result.filter(mask)
        return result

    @staticmethod
    def _split_join_condition(condition, left: Table, right: Table):
        """Find one ``l.col = r.col`` equi-conjunct; the rest is residual."""
        from repro.relational.expressions import (
            BinaryOp,
            ColumnRef,
            conjoin,
            conjuncts,
        )

        def side_of(ref: ColumnRef) -> str | None:
            try:
                left.resolve_name(ref.name)
                return "left"
            except Exception:
                pass
            try:
                right.resolve_name(ref.name)
                return "right"
            except Exception:
                return None

        equi = None
        residual = []
        for conjunct in conjuncts(condition):
            if (
                equi is None
                and isinstance(conjunct, BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                left_side = side_of(conjunct.left)
                right_side = side_of(conjunct.right)
                if left_side == "left" and right_side == "right":
                    equi = (conjunct.left, conjunct.right)
                    continue
                if left_side == "right" and right_side == "left":
                    equi = (conjunct.right, conjunct.left)
                    continue
            residual.append(conjunct)
        return equi, (conjoin(residual) if residual else None)

    @staticmethod
    def _cross_join(left: Table, right: Table) -> Table:
        left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
        return left.take(left_idx).concat_columns(right.take(right_idx))

    @staticmethod
    def _hash_join(
        left: Table, right: Table, left_key, right_key, kind: str
    ) -> Table:
        left_values = left_key.evaluate(left)
        right_values = right_key.evaluate(right)
        buckets: dict = {}
        for i, value in enumerate(right_values.tolist()):
            buckets.setdefault(value, []).append(i)
        left_indices: list[int] = []
        right_indices: list[int] = []
        unmatched_left: list[int] = []
        for i, value in enumerate(left_values.tolist()):
            matches = buckets.get(value)
            if matches:
                left_indices.extend([i] * len(matches))
                right_indices.extend(matches)
            elif kind in ("LEFT", "FULL"):
                unmatched_left.append(i)
        left_idx = np.asarray(left_indices, dtype=np.int64)
        right_idx = np.asarray(right_indices, dtype=np.int64)
        matched = left.take(left_idx).concat_columns(right.take(right_idx))
        if kind == "INNER" or not unmatched_left:
            return matched
        # LEFT/FULL: pad unmatched left rows with type-default right values.
        pad_left = left.take(np.asarray(unmatched_left, dtype=np.int64))
        pad_columns = {}
        for col in right.schema:
            dtype = col.dtype.numpy_dtype
            if dtype.kind == "f":
                fill = np.full(len(unmatched_left), np.nan)
            elif dtype.kind in ("i", "u", "b"):
                fill = np.zeros(len(unmatched_left), dtype=dtype)
            else:
                fill = np.full(len(unmatched_left), "", dtype=dtype)
            pad_columns[col.name] = fill
        pad_right = Table(right.schema, pad_columns)
        padded = pad_left.concat_columns(pad_right)
        return Table.concat_rows([matched, padded])

    # -- aggregation ----------------------------------------------------------

    def _execute_aggregate(self, op: logical.Aggregate) -> Table:
        table = self.execute(op.child)
        if not op.group_by:
            return self._global_aggregate(op, table)
        key_arrays = [expr.evaluate(table) for expr, _ in op.group_by]
        # Build group ids from the composite key.
        composite = np.empty(table.num_rows, dtype=object)
        rows = list(zip(*(arr.tolist() for arr in key_arrays)))
        for i, key in enumerate(rows):
            composite[i] = key
        uniques, group_ids = np.unique(composite, return_inverse=True)
        num_groups = len(uniques)
        columns: dict[str, np.ndarray] = {}
        for (expr, name), arr in zip(op.group_by, key_arrays):
            firsts = np.zeros(num_groups, dtype=np.int64)
            seen = np.zeros(num_groups, dtype=bool)
            for i, gid in enumerate(group_ids):
                if not seen[gid]:
                    seen[gid] = True
                    firsts[gid] = i
            columns[name] = arr[firsts]
        for func, arg, alias in op.aggregates:
            columns[alias] = self._grouped_aggregate(
                func, arg, table, group_ids, num_groups
            )
        schema = op.schema
        return Table(schema, {c.name: columns[c.name] for c in schema})

    def _global_aggregate(self, op: logical.Aggregate, table: Table) -> Table:
        columns = {}
        for func, arg, alias in op.aggregates:
            group_ids = np.zeros(table.num_rows, dtype=np.int64)
            columns[alias] = self._grouped_aggregate(func, arg, table, group_ids, 1)
        schema = op.schema
        return Table(schema, {c.name: columns[c.name] for c in schema})

    @staticmethod
    def _grouped_aggregate(
        func: str,
        arg,
        table: Table,
        group_ids: np.ndarray,
        num_groups: int,
    ) -> np.ndarray:
        if func == "COUNT" and arg is None:
            return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        if arg is None:
            raise ExecutionError(f"{func} requires an argument")
        values = arg.evaluate(table).astype(np.float64)
        if func == "COUNT":
            return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        if func == "SUM":
            return np.bincount(group_ids, weights=values, minlength=num_groups)
        if func == "AVG":
            sums = np.bincount(group_ids, weights=values, minlength=num_groups)
            counts = np.bincount(group_ids, minlength=num_groups)
            return sums / np.maximum(counts, 1)
        if func in ("MIN", "MAX"):
            fill = np.inf if func == "MIN" else -np.inf
            out = np.full(num_groups, fill)
            np_func = np.minimum if func == "MIN" else np.maximum
            np_func.at(out, group_ids, values)
            return out
        raise ExecutionError(f"unknown aggregate {func!r}")

    # -- set operations ---------------------------------------------------

    def _execute_unionall(self, op: logical.UnionAll) -> Table:
        tables = [self.execute(branch) for branch in op.branches]
        first = tables[0]
        aligned = [first]
        for table in tables[1:]:
            if table.schema.names != first.schema.names:
                mapping = dict(zip(table.schema.names, first.schema.names))
                table = table.rename(mapping)
            aligned.append(table)
        return Table.concat_rows(aligned)

    # -- model scoring ----------------------------------------------------

    def _execute_predict(self, op: logical.Predict) -> Table:
        table = self.execute(op.child)
        if self._model_resolver is None:
            raise ExecutionError("no model resolver configured for PREDICT")
        scorer = self._model_resolver.resolve_scorer(
            op.model_ref, op.output_columns
        )
        outputs = self._score(scorer, table, op.batch_size)
        result = table
        for name, dtype in op.output_columns:
            out_name = f"{op.alias}.{name}" if op.alias else name
            values = outputs[name].astype(dtype.numpy_dtype)
            result = result.with_column(out_name, values)
        return result

    def _score(
        self,
        scorer: Callable[[Table], dict[str, np.ndarray]],
        table: Table,
        batch_size: int | None,
    ) -> dict[str, np.ndarray]:
        options = self.options
        batch_size = batch_size or options.default_batch_size
        use_parallel = (
            options.parallel_predict
            and table.num_rows >= options.parallel_row_threshold
        )
        if not use_parallel and batch_size is None:
            return scorer(table)
        if batch_size is None:
            batch_size = max(
                1, table.num_rows // (options.max_workers * 2)
            )
        chunks = [
            table.slice(start, min(start + batch_size, table.num_rows))
            for start in range(0, max(table.num_rows, 1), batch_size)
        ]
        if use_parallel and len(chunks) > 1:
            with ThreadPoolExecutor(max_workers=options.max_workers) as pool:
                results = list(pool.map(scorer, chunks))
        else:
            results = [scorer(chunk) for chunk in chunks]
        merged: dict[str, np.ndarray] = {}
        for key in results[0]:
            merged[key] = np.concatenate([r[key] for r in results])
        return merged
