"""Vectorized physical executor for logical plans.

One physical implementation per logical operator, all column-at-a-time over
NumPy arrays: hash joins, sort-based ORDER BY, ``np.unique``-based grouping.
``Predict`` dispatches to a model scorer resolved from the model catalog —
this is the integration point where the "database" calls the "ML runtime",
and where chunked parallel scoring happens (the paper's Fig. 3 observation
that SQL Server parallelizes scan + PREDICT).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Protocol

import numpy as np

from repro.concurrency import default_max_workers
from repro.errors import ExecutionError
from repro.observability import trace as qtrace
from repro.relational import statistics as table_stats
from repro.relational.algebra import logical
from repro.relational.table import Table
from repro.relational.types import DataType, Schema


class ModelResolver(Protocol):
    """Resolves a model reference to a batch scorer.

    The scorer takes the input :class:`Table` and returns a mapping from
    output column name to a 1-D array (one entry per declared output).
    """

    def resolve_scorer(
        self, model_ref: str, output_columns: tuple[tuple[str, DataType], ...]
    ) -> Callable[[Table], dict[str, np.ndarray]]: ...


class ExecutionOptions:
    """Tuning knobs for the executor (used by ablation benchmarks).

    ``max_workers`` defaults from the machine via
    :func:`repro.concurrency.default_max_workers` (capped) rather than a
    hard-coded constant; pass an explicit value to pin it.
    """

    def __init__(
        self,
        parallel_predict: bool = True,
        parallel_row_threshold: int = 50_000,
        max_workers: int | None = None,
        default_batch_size: int | None = None,
        enable_zone_map_pruning: bool = True,
        morsel_parallel_predict: bool = True,
        enable_distributed: bool = True,
        distributed_mode: str = "process",
        enable_staged_fragments: bool = True,
    ):
        self.parallel_predict = parallel_predict
        self.parallel_row_threshold = parallel_row_threshold
        self.max_workers = (
            max_workers if max_workers is not None else default_max_workers()
        )
        self.default_batch_size = default_batch_size
        self.enable_zone_map_pruning = enable_zone_map_pruning
        self.morsel_parallel_predict = morsel_parallel_predict
        #: Whether the optimizer may choose scatter-gather plans over
        #: sharded tables, and how their fragments run (``"process"``
        #: for the multi-process pool, ``"inprocess"`` for a serial
        #: in-coordinator fallback useful in tests and restricted
        #: environments).
        self.enable_distributed = enable_distributed
        self.distributed_mode = distributed_mode
        #: Whether aggregates over distributed joins may run as staged
        #: worker pipelines (partial aggregation inside the exchange).
        #: Off = the ablation baseline: gather raw join output and
        #: aggregate on the coordinator.
        self.enable_staged_fragments = enable_staged_fragments


def _shuffle_tables(shuffle) -> list[str]:
    """Base tables a shuffle side's ShardScan leaves read (none for a
    coordinator-local side whose leaf is a plain Scan)."""
    from repro.distributed.operators import fragment_tables

    return fragment_tables(shuffle.fragment)


def _side_gather(shuffle):
    """A Gather view of one shuffle side (for the inline map phase)."""
    from repro.distributed.operators import Gather

    return Gather(
        shuffle.table_name,
        shuffle.fragment,
        shuffle.key,
        shuffle.shard_ids,
        shuffle.total_shards,
    )


def _null_extended(schema, count: int) -> "Table":
    """``count`` rows of type-default values for an outer join's
    NULL-extension (NaN for floats, 0 for ints/bools, "" for strings)."""
    columns = {}
    for col in schema:
        dtype = col.dtype.numpy_dtype
        if dtype.kind == "f":
            fill = np.full(count, np.nan)
        elif dtype.kind in ("i", "u", "b"):
            fill = np.zeros(count, dtype=dtype)
        else:
            fill = np.full(count, "", dtype=dtype)
        columns[col.name] = fill
    return Table(schema, columns)


class Executor:
    """Interprets logical plans against a table provider + model resolver."""

    def __init__(
        self,
        table_provider: Callable[[str], Table],
        model_resolver: ModelResolver | None = None,
        options: ExecutionOptions | None = None,
        shard_provider: Callable[[str], object] | None = None,
        fragment_runner: Callable | None = None,
        shuffle_runner: Callable | None = None,
    ):
        self._table_provider = table_provider
        self._model_resolver = model_resolver
        #: ``shard_provider(table) -> ShardedTable | None``,
        #: ``fragment_runner(gather_op, {table: ShardedTable}) ->
        #: list[Table]`` and ``shuffle_runner(shuffle_join_op, sides)
        #: -> list[Table]`` wire the distributed runtime in; tests
        #: inject recording runners here to prove pruned shards (and
        #: empty buckets) are never dispatched.
        self._shard_provider = shard_provider
        self._fragment_runner = fragment_runner
        self._shuffle_runner = shuffle_runner
        self.options = options or ExecutionOptions()
        #: Zone-map outcome of the most recent pruned scan:
        #: {"table", "partitions_total", "partitions_scanned"}. A
        #: single-threaded diagnostic for tests and benchmarks only —
        #: it is unsynchronized and persists across queries that prune
        #: nothing, so read it immediately after the query of interest.
        self.last_scan_pruning: dict | None = None
        #: Same diagnostic for the most recent Gather: {"table",
        #: "shards_total", "shards_scanned"}.
        self.last_shard_routing: dict | None = None

    def execute(self, plan: logical.LogicalOp) -> Table:
        method = getattr(self, f"_execute_{type(plan).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"no physical operator for {type(plan).__name__}")
        return method(plan)

    # -- leaf operators -------------------------------------------------------

    def _execute_scan(self, op: logical.Scan) -> Table:
        table = self._table_provider(op.table_name)
        if op.alias:
            return table.prefixed(op.alias)
        return table

    def _execute_inlinetable(self, op: logical.InlineTable) -> Table:
        if op.alias:
            return op.table.prefixed(op.alias)
        return op.table

    # -- unary operators ------------------------------------------------------

    def _execute_filter(self, op: logical.Filter) -> Table:
        table = self._pruned_scan_input(op)
        if table is None:
            table = self.execute(op.child)
        return self._apply_predicate(table, op.predicate)

    @staticmethod
    def _apply_predicate(table: Table, predicate) -> Table:
        mask = np.asarray(predicate.evaluate(table))
        if mask.ndim == 0:
            mask = np.full(table.num_rows, bool(mask))
        return table.filter(mask.astype(bool))

    #: Below this surviving-partition fraction, pruning materializes a
    #: compacted table; above it the copy would cost more than the
    #: predicate evaluation it saves, so the full table is scanned.
    PRUNE_COPY_THRESHOLD = 0.5

    def _zone_map_survivors(
        self, base: Table, predicate
    ) -> np.ndarray | None:
        """Keep-mask of ``base``'s partitions under ``predicate``.

        The single source of zone-map pruning decisions — both the
        Filter fast path and the morsel-parallel Predict path consult
        it, so pruning semantics never diverge. ``None`` when pruning
        does not apply. Callers record ``last_scan_pruning`` only when
        they commit to the pruned execution.
        """
        if not self.options.enable_zone_map_pruning:
            return None
        return table_stats.surviving_partitions(base, predicate)

    def _record_pruning(self, table_name: str, keep: np.ndarray) -> None:
        self.last_scan_pruning = {
            "table": table_name,
            "partitions_total": int(len(keep)),
            "partitions_scanned": int(keep.sum()),
        }

    def _pruned_scan_input(self, op: logical.Filter) -> Table | None:
        """Zone-map pruned base rows for a filter directly over a scan.

        Partitions whose min/max prove the predicate cannot match are
        never materialized, so predicate evaluation touches only the
        surviving chunks. ``None`` means no pruning applies (or too few
        partitions drop to pay for compaction) and the caller should
        execute the child normally.
        """
        scan = op.child
        if not isinstance(scan, logical.Scan):
            return None
        base = self._table_provider(scan.table_name)
        keep = self._zone_map_survivors(base, op.predicate)
        if keep is None:
            return None
        kept = int(keep.sum())
        if kept > len(keep) * self.PRUNE_COPY_THRESHOLD:
            return None  # weak pruning: compaction would cost more
        self._record_pruning(scan.table_name, keep)
        surviving = [
            base.slice(start, stop)
            for (start, stop), is_kept in zip(base.partition_bounds(), keep)
            if is_kept
        ]
        pruned = (
            Table.concat_rows(surviving) if surviving else base.slice(0, 0)
        )
        return pruned.prefixed(scan.alias) if scan.alias else pruned

    def _execute_project(self, op: logical.Project) -> Table:
        table = self.execute(op.child)
        columns = {}
        for expr, name in op.items:
            values = np.asarray(expr.evaluate(table))
            if values.ndim == 0:
                values = np.full(table.num_rows, values[()])
            columns[name] = values
        schema_cols = []
        from repro.relational.types import Column

        for expr, name in op.items:
            schema_cols.append(
                Column(name, DataType.from_numpy(columns[name].dtype))
            )
        return Table(Schema(tuple(schema_cols)), columns)

    def _execute_orderby(self, op: logical.OrderBy) -> Table:
        table = self.execute(op.child)
        if table.num_rows == 0:
            return table
        # np.lexsort sorts by the last key first: feed keys in reverse.
        keys = []
        for expr, ascending in reversed(op.keys):
            values = expr.evaluate(table)
            if not ascending:
                if values.dtype.kind in ("U", "S"):
                    # Rank-invert strings (no stable negation exists).
                    order = np.argsort(values, kind="stable")
                    ranks = np.empty(len(values), dtype=np.int64)
                    ranks[order] = np.arange(len(values))
                    values = -ranks
                else:
                    values = -values
            keys.append(values)
        indices = np.lexsort(keys)
        return table.take(indices)

    def _execute_limit(self, op: logical.Limit) -> Table:
        return self.execute(op.child).head(op.count)

    def _execute_distinct(self, op: logical.Distinct) -> Table:
        table = self.execute(op.child)
        if table.num_rows == 0:
            return table
        seen: set[tuple] = set()
        keep = np.zeros(table.num_rows, dtype=bool)
        for i, row in enumerate(table.rows()):
            key = tuple(row)
            if key not in seen:
                seen.add(key)
                keep[i] = True
        return table.filter(keep)

    # -- joins ----------------------------------------------------------------

    def _execute_join(self, op: logical.Join) -> Table:
        left = self.execute(op.left)
        right = self.execute(op.right)
        if op.kind == "CROSS" or op.condition is None:
            return self._cross_join(left, right)
        equi, residual = self._split_join_condition(op.condition, left, right)
        if equi is None:
            combined = self._cross_join(left, right)
            mask = op.condition.evaluate(combined).astype(bool)
            return combined.filter(mask)
        left_key, right_key = equi
        result = self._hash_join(left, right, left_key, right_key, op.kind)
        if residual is not None:
            mask = residual.evaluate(result).astype(bool)
            result = result.filter(mask)
        return result

    @staticmethod
    def _split_join_condition(condition, left: Table, right: Table):
        """Find one ``l.col = r.col`` equi-conjunct; the rest is residual."""
        from repro.relational.expressions import (
            BinaryOp,
            ColumnRef,
            conjoin,
            conjuncts,
        )

        def side_of(ref: ColumnRef) -> str | None:
            try:
                left.resolve_name(ref.name)
                return "left"
            except Exception:
                pass
            try:
                right.resolve_name(ref.name)
                return "right"
            except Exception:
                return None

        equi = None
        residual = []
        for conjunct in conjuncts(condition):
            if (
                equi is None
                and isinstance(conjunct, BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                left_side = side_of(conjunct.left)
                right_side = side_of(conjunct.right)
                if left_side == "left" and right_side == "right":
                    equi = (conjunct.left, conjunct.right)
                    continue
                if left_side == "right" and right_side == "left":
                    equi = (conjunct.right, conjunct.left)
                    continue
            residual.append(conjunct)
        return equi, (conjoin(residual) if residual else None)

    @staticmethod
    def _cross_join(left: Table, right: Table) -> Table:
        left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
        return left.take(left_idx).concat_columns(right.take(right_idx))

    @staticmethod
    def _hash_join(
        left: Table, right: Table, left_key, right_key, kind: str
    ) -> Table:
        left_values = left_key.evaluate(left)
        right_values = right_key.evaluate(right)
        buckets: dict = {}
        for i, value in enumerate(right_values.tolist()):
            buckets.setdefault(value, []).append(i)
        left_indices: list[int] = []
        right_indices: list[int] = []
        unmatched_left: list[int] = []
        matched_right: set[int] = set()
        track_right = kind == "FULL"
        for i, value in enumerate(left_values.tolist()):
            matches = buckets.get(value)
            if matches:
                left_indices.extend([i] * len(matches))
                right_indices.extend(matches)
                if track_right:
                    matched_right.update(matches)
            elif kind in ("LEFT", "FULL"):
                unmatched_left.append(i)
        left_idx = np.asarray(left_indices, dtype=np.int64)
        right_idx = np.asarray(right_indices, dtype=np.int64)
        pieces = [left.take(left_idx).concat_columns(right.take(right_idx))]
        if unmatched_left:
            # LEFT/FULL: pad unmatched left rows with type-default
            # right values.
            pad_left = left.take(np.asarray(unmatched_left, dtype=np.int64))
            pieces.append(
                pad_left.concat_columns(
                    _null_extended(right.schema, len(unmatched_left))
                )
            )
        if track_right:
            # FULL: unmatched *right* rows are preserved too, padded
            # with type-default left values.
            unmatched_right = [
                i for i in range(right.num_rows) if i not in matched_right
            ]
            if unmatched_right:
                pad_right = right.take(
                    np.asarray(unmatched_right, dtype=np.int64)
                )
                pieces.append(
                    _null_extended(
                        left.schema, len(unmatched_right)
                    ).concat_columns(pad_right)
                )
        if len(pieces) == 1:
            return pieces[0]
        return Table.concat_rows(pieces)

    # -- aggregation ----------------------------------------------------------

    def _execute_aggregate(self, op: logical.Aggregate) -> Table:
        table = self.execute(op.child)
        if not op.group_by:
            return self._global_aggregate(op, table)
        bucketed = self._bucket_parallel_aggregate(op, table)
        if bucketed is not None:
            return bucketed
        return self._aggregate_table(op, table)

    def _bucket_parallel_aggregate(
        self, op: logical.Aggregate, table: Table
    ) -> Table | None:
        """Aggregate a hash-bucketed input bucket-at-a-time in parallel.

        Only a ``Repartition`` child produces explicit partition bounds,
        and it only fires when its key is one of the grouping columns —
        so buckets are group-disjoint and per-bucket aggregation needs
        no cross-bucket merge. ``None`` falls back to the one-pass path.
        """
        from repro.distributed.operators import Repartition

        # Explicit bounds only ever come from a Repartition exchange
        # (possibly via the IR runtime, which re-feeds the repartitioned
        # table as an InlineTable), whose bucket key is always one of
        # the grouping columns.
        if not isinstance(op.child, (Repartition, logical.InlineTable)):
            return None
        if not table.has_explicit_partitions or table.num_partitions < 2:
            return None
        buckets = [
            table.slice(start, stop)
            for start, stop in table.partition_bounds()
            if stop > start
        ]
        if len(buckets) < 2:
            return None
        with ThreadPoolExecutor(max_workers=self.options.max_workers) as pool:
            parts = list(
                pool.map(lambda chunk: self._aggregate_table(op, chunk), buckets)
            )
        return Table.concat_rows(parts)

    def _aggregate_table(self, op: logical.Aggregate, table: Table) -> Table:
        key_arrays = [expr.evaluate(table) for expr, _ in op.group_by]
        # Build group ids from the composite key.
        composite = np.empty(table.num_rows, dtype=object)
        rows = list(zip(*(arr.tolist() for arr in key_arrays)))
        for i, key in enumerate(rows):
            composite[i] = key
        uniques, group_ids = np.unique(composite, return_inverse=True)
        num_groups = len(uniques)
        columns: dict[str, np.ndarray] = {}
        for (expr, name), arr in zip(op.group_by, key_arrays):
            firsts = np.zeros(num_groups, dtype=np.int64)
            seen = np.zeros(num_groups, dtype=bool)
            for i, gid in enumerate(group_ids):
                if not seen[gid]:
                    seen[gid] = True
                    firsts[gid] = i
            columns[name] = arr[firsts]
        for func, arg, alias in op.aggregates:
            columns[alias] = self._grouped_aggregate(
                func, arg, table, group_ids, num_groups
            )
        schema = op.schema
        return Table(schema, {c.name: columns[c.name] for c in schema})

    def _global_aggregate(self, op: logical.Aggregate, table: Table) -> Table:
        columns = {}
        for func, arg, alias in op.aggregates:
            group_ids = np.zeros(table.num_rows, dtype=np.int64)
            columns[alias] = self._grouped_aggregate(func, arg, table, group_ids, 1)
        schema = op.schema
        return Table(schema, {c.name: columns[c.name] for c in schema})

    @staticmethod
    def _grouped_aggregate(
        func: str,
        arg,
        table: Table,
        group_ids: np.ndarray,
        num_groups: int,
    ) -> np.ndarray:
        if func == "COUNT" and arg is None:
            return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        if arg is None:
            raise ExecutionError(f"{func} requires an argument")
        values = arg.evaluate(table).astype(np.float64)
        if func == "COUNT":
            return np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        if func == "SUM":
            return np.bincount(group_ids, weights=values, minlength=num_groups)
        if func == "AVG":
            sums = np.bincount(group_ids, weights=values, minlength=num_groups)
            counts = np.bincount(group_ids, minlength=num_groups)
            return sums / np.maximum(counts, 1)
        if func in ("MIN", "MAX"):
            fill = np.inf if func == "MIN" else -np.inf
            out = np.full(num_groups, fill)
            np_func = np.minimum if func == "MIN" else np.maximum
            np_func.at(out, group_ids, values)
            return out
        raise ExecutionError(f"unknown aggregate {func!r}")

    # -- set operations ---------------------------------------------------

    def _execute_unionall(self, op: logical.UnionAll) -> Table:
        tables = [self.execute(branch) for branch in op.branches]
        first = tables[0]
        aligned = [first]
        for table in tables[1:]:
            if table.schema.names != first.schema.names:
                mapping = dict(zip(table.schema.names, first.schema.names))
                table = table.rename(mapping)
            aligned.append(table)
        return Table.concat_rows(aligned)

    # -- exchange operators (distributed execution) -----------------------

    def _execute_gather(self, op) -> Table:
        """Scatter a fragment across shards, gather in shard order.

        Dispatch goes through the injected ``fragment_runner`` (the
        database's :class:`~repro.distributed.runtime.DistributedRuntime`
        by default; tests inject recording runners). A table that is no
        longer sharded — or a missing runner — degrades to executing
        the fragment once over the full base table(s), which is
        equivalent for every fragment shape the optimizer emits
        (filters, scoring, joins, and *partial* aggregates are all
        union-compatible). A co-located join whose layout assumptions
        no longer hold (a reshard raced a cached plan) degrades the
        same way — joining the full base tables locally is always
        correct.
        """
        with qtrace.span("gather", table=op.table_name, join=op.join) as sp:
            result = self._gather(op)
            routing = self.last_shard_routing or {}
            sp.set("shards_scanned", routing.get("shards_scanned"))
            sp.set("shards_total", routing.get("shards_total"))
            sp.set("rows", result.num_rows)
            return result

    def _gather(self, op) -> Table:
        from repro.distributed.operators import fragment_tables
        from repro.distributed.routing import colocated_layouts_ok

        tables = fragment_tables(op.fragment)
        shardeds = {}
        for name in tables:
            sharded = (
                self._shard_provider(name)
                if self._shard_provider is not None
                else None
            )
            if sharded is None:
                break
            shardeds[name] = sharded
        layout_ok = len(shardeds) == len(tables)
        if layout_ok and op.join == "colocated":
            layout_ok = colocated_layouts_ok(op, shardeds)
        if not layout_ok:
            self.last_shard_routing = {
                "table": op.table_name,
                "shards_total": 1,
                "shards_scanned": 1,
                "join": op.join,
            }
            return self._execute_fragment_locally(
                op.fragment,
                {name: self._table_provider(name) for name in tables},
            )
        if self._fragment_runner is not None:
            parts = self._fragment_runner(op, shardeds)
        else:
            parts = self._gather_inline(op, shardeds)
        self.last_shard_routing = {
            "table": op.table_name,
            "shards_total": op.total_shards,
            "shards_scanned": len(parts),
            "join": op.join,
        }
        if not parts:
            return Table.empty(op.schema)
        return Table.concat_rows(parts)

    def _gather_inline(self, op, shardeds) -> list[Table]:
        """No-runner gather: run the fragment per shard in this process."""
        from repro.distributed.operators import shard_target
        from repro.distributed.routing import (
            colocated_shard_ids,
            effective_shard_ids,
        )

        if op.join == "colocated":
            shard_ids, _pruned = colocated_shard_ids(op.fragment, shardeds)
        else:
            shard_ids = effective_shard_ids(
                op, shardeds[op.table_name.lower()]
            )
        parts = []
        for shard_id in shard_ids:
            shards = {
                shard_target(name): sharded.shard(shard_id)
                for name, sharded in shardeds.items()
            }
            parts.append(
                self._execute_fragment_locally(
                    op.fragment, shards, localized=True
                )
            )
        return parts

    def _execute_fragment_locally(
        self, fragment, tables: dict, localized: bool = False
    ) -> Table:
        """Run a fragment over its shard (or base) tables *in-process*.

        ``tables`` maps either base table names (``localized=False``,
        the degradation path over full tables) or localized
        :func:`~repro.distributed.operators.shard_target` names to the
        tables each ShardScan should read. Unlike a pool worker, the
        coordinator still has the model catalog, so catalog-referenced
        models resolve normally.
        """
        from repro.distributed.operators import (
            localize_fragment,
            shard_target,
        )

        if not localized:
            tables = {
                shard_target(name): table for name, table in tables.items()
            }

        def provide(name: str) -> Table:
            shard = tables.get(name)
            if shard is not None:
                return shard
            return self._table_provider(name)

        sub = Executor(
            table_provider=provide,
            model_resolver=self._model_resolver,
            options=self.options,
        )
        return sub.execute(localize_fragment(fragment))

    def _execute_shufflejoin(self, op) -> Table:
        """Distributed hash-shuffle join (see ``ShuffleJoin``).

        Sharded sides map on the worker pool; unsharded (or no longer
        sharded) sides are executed here and partitioned by the
        runtime. Without an injected ``shuffle_runner`` the whole
        exchange degrades to an in-process bucket-by-bucket join —
        identical results, same bucket order, no pool.
        """
        from repro.distributed.routing import effective_shard_ids

        sides = []
        scanned = 0
        total = 0
        for shuffle in op.sides:
            sharded = (
                self._shard_provider(shuffle.table_name)
                if self._shard_provider is not None and shuffle.is_sharded
                else None
            )
            if sharded is not None and sharded.num_shards < 2:
                sharded = None
            local = None
            if sharded is None:
                local = self._execute_fragment_locally(
                    shuffle.fragment,
                    {
                        name: self._table_provider(name)
                        for name in _shuffle_tables(shuffle)
                    },
                )
                scanned += 1
                total += 1
            else:
                # Mirror the runtime's execution-time routing so the
                # diagnostic agrees with the live layout and with
                # DistributedRuntime.stats() for the same query.
                scanned += len(effective_shard_ids(shuffle, sharded))
                total += sharded.num_shards
            sides.append((shuffle, sharded, local))
        if self._shuffle_runner is not None:
            parts = self._shuffle_runner(op, sides)
        else:
            parts = self._shuffle_inline(op, sides)
        self.last_shard_routing = {
            "table": op.left.table_name,
            "shards_total": total,
            "shards_scanned": scanned,
            "join": "shuffle",
        }
        if not parts:
            return Table.empty(op.schema)
        return Table.concat_rows(parts)

    def _shuffle_inline(self, op, sides) -> list[Table]:
        """No-runner shuffle join: bucket and join inside this process.

        Mirrors the runtime's bucket order, its join-kind-aware
        empty-bucket guard, and its post-join stage execution, so
        results are row-for-row identical to the pooled path.
        """
        from repro.distributed import worker
        from repro.distributed.operators import bind_stage_input
        from repro.distributed.runtime import _skip_bucket_pair

        bucket_lists = []
        for shuffle, sharded, local in sides:
            if local is None:
                parts = self._gather_inline(
                    _side_gather(shuffle), {shuffle.table_name.lower(): sharded}
                )
                local = (
                    Table.concat_rows(parts)
                    if parts
                    else Table.empty(shuffle.schema)
                )
            bucket_lists.append(
                worker.bucketize(local, shuffle.key, op.num_buckets)
            )
        left_buckets, right_buckets = bucket_lists
        parts = []
        for bucket_id in range(op.num_buckets):
            left = left_buckets[bucket_id]
            right = right_buckets[bucket_id]
            if _skip_bucket_pair(op.kind, left, right):
                continue
            if left is None:
                left = Table.empty(op.left.schema)
            if right is None:
                right = Table.empty(op.right.schema)
            result = self.execute(
                logical.Join(
                    logical.InlineTable(left),
                    logical.InlineTable(right),
                    op.kind,
                    op.condition,
                )
            )
            for stage in op.stages:
                result = self.execute(bind_stage_input(stage, result))
            parts.append(result)
        return parts

    def _execute_repartition(self, op) -> Table:
        """Hash-recluster rows into key-disjoint contiguous buckets."""
        from repro.distributed.shards import hash_buckets

        table = self.execute(op.child)
        if table.num_rows == 0 or op.num_buckets < 2:
            return table
        values = table.column(op.key)
        buckets = hash_buckets(values, op.num_buckets)
        order = np.argsort(buckets, kind="stable")
        clustered = table.take(order)
        counts = np.bincount(buckets, minlength=op.num_buckets)
        edges = np.concatenate(([0], np.cumsum(counts)))
        bounds = [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(op.num_buckets)
            if edges[i + 1] > edges[i]
        ]
        if len(bounds) < 2:
            return clustered
        # Dropping empty buckets keeps the bounds contiguous (an empty
        # bucket spans zero rows), so the explicit-bounds validation
        # accepts them as-is.
        return clustered.with_partition_bounds(bounds)

    def _execute_shardscan(self, op) -> Table:
        raise ExecutionError(
            f"ShardScan of {op.table_name!r} escaped its fragment; "
            "shard scans only execute inside Gather fragments"
        )

    def _execute_shuffle(self, op) -> Table:
        raise ExecutionError(
            f"Shuffle of {op.table_name!r} escaped its exchange; "
            "shuffles only execute inside ShuffleJoin operators"
        )

    # -- model scoring ----------------------------------------------------

    def _execute_predict(self, op: logical.Predict) -> Table:
        if self._model_resolver is None:
            raise ExecutionError("no model resolver configured for PREDICT")
        morsel = self._morsel_predict(op)
        if morsel is not None:
            return morsel
        table = self.execute(op.child)
        scorer = self._resolve_scorer(op)
        outputs = self._score(scorer, table, op.batch_size)
        return self._attach_outputs(op, table, outputs)

    def _resolve_scorer(self, op: logical.Predict):
        """Scorer for a Predict: inline payload first, catalog second.

        The memo optimizer's model rewrites (pruning, projection
        pushdown) attach the rewritten pipeline to the plan; it no
        longer exists in the catalog, so it must be scored directly.
        The memo-chosen compiled backend (in ``extra``) is forwarded
        only when non-default so duck-typed resolvers (tests, workers
        built before backends existed) keep their plain signature.
        """
        backend = dict(op.extra).get("backend") if op.extra else None
        kwargs = {"backend": backend} if backend and backend != "numpy" else {}
        if op.payload is not None and op.flavor == "ml.pipeline":
            resolve_inline = getattr(
                self._model_resolver, "resolve_inline_scorer", None
            )
            if resolve_inline is not None:
                return resolve_inline(
                    op.payload, op.feature_names, op.output_columns, **kwargs
                )
        return self._model_resolver.resolve_scorer(
            op.model_ref, op.output_columns, **kwargs
        )

    @staticmethod
    def _attach_outputs(
        op: logical.Predict, table: Table, outputs: dict[str, np.ndarray]
    ) -> Table:
        result = table
        for name, dtype in op.output_columns:
            out_name = f"{op.alias}.{name}" if op.alias else name
            values = outputs[name].astype(dtype.numpy_dtype)
            result = result.with_column(out_name, values)
        return result

    def _morsel_predict(self, op: logical.Predict) -> Table | None:
        """Morsel-parallel filter→predict over a partitioned scan.

        A ``Predict(Filter(Scan))`` pipeline on a large partitioned
        table runs partition-at-a-time on the thread pool: each morsel
        evaluates the predicate, filters, and scores independently, and
        zone maps drop non-matching partitions before any work is
        scheduled. Results concatenate in partition order, so row order
        matches sequential execution. ``None`` falls back to the
        operator-at-a-time path.
        """
        options = self.options
        if not (options.morsel_parallel_predict and options.parallel_predict):
            return None
        filter_op = op.child
        if not isinstance(filter_op, logical.Filter):
            return None
        scan = filter_op.child
        if not isinstance(scan, logical.Scan):
            return None
        # Cheap guards first: zone maps are only computed once this
        # path commits (declining here falls back to _execute_filter,
        # which would otherwise repeat the survivors computation).
        base = self._table_provider(scan.table_name)
        if not base.partition_size or base.num_rows < options.parallel_row_threshold:
            return None
        bounds = base.partition_bounds()
        keep = self._zone_map_survivors(base, filter_op.predicate)
        if keep is None:
            keep = np.ones(len(bounds), dtype=bool)
        else:
            self._record_pruning(scan.table_name, keep)
        scorer = self._resolve_scorer(op)

        # Within a morsel, scoring is chunked by the same batch-size
        # knobs as the sequential path, but never parallelized: the
        # morsel threads ARE the parallelism, and a nested pool per
        # morsel (possible with huge manual partitions) would spawn up
        # to max_workers^2 threads.
        batch_size = op.batch_size or options.default_batch_size

        def work(bound: tuple[int, int]) -> Table:
            start, stop = bound
            with qtrace.span("morsel", rows_in=stop - start):
                chunk = base.slice(start, stop)
                if scan.alias:
                    chunk = chunk.prefixed(scan.alias)
                filtered = self._apply_predicate(chunk, filter_op.predicate)
                if filtered.num_rows == 0:
                    return self._empty_predict_result(op, filtered)
                if batch_size is not None and filtered.num_rows > batch_size:
                    outputs = self._score(
                        scorer, filtered, batch_size, allow_parallel=False
                    )
                else:
                    outputs = scorer(filtered)
                return self._attach_outputs(op, filtered, outputs)

        surviving = [b for b, kept in zip(bounds, keep) if kept]
        if not surviving:
            empty = base.slice(0, 0)
            if scan.alias:
                empty = empty.prefixed(scan.alias)
            return self._empty_predict_result(op, empty)
        if len(surviving) > 1:
            # Worker threads do not inherit the submitter's contextvars;
            # qtrace.wrap re-installs the active span so morsel spans
            # attribute to this query's trace (a no-op when untraced).
            with ThreadPoolExecutor(max_workers=options.max_workers) as pool:
                parts = list(pool.map(qtrace.wrap(work), surviving))
        else:
            parts = [work(surviving[0])]
        return Table.concat_rows(parts)

    @classmethod
    def _empty_predict_result(cls, op: logical.Predict, empty: Table) -> Table:
        """A zero-row result with the predict output columns appended."""
        outputs = {
            name: np.empty(0, dtype=dtype.numpy_dtype)
            for name, dtype in op.output_columns
        }
        return cls._attach_outputs(op, empty, outputs)

    def _score(
        self,
        scorer: Callable[[Table], dict[str, np.ndarray]],
        table: Table,
        batch_size: int | None,
        allow_parallel: bool = True,
    ) -> dict[str, np.ndarray]:
        options = self.options
        batch_size = batch_size or options.default_batch_size
        use_parallel = (
            allow_parallel
            and options.parallel_predict
            and table.num_rows >= options.parallel_row_threshold
        )
        if not use_parallel and batch_size is None:
            return scorer(table)
        if batch_size is None:
            batch_size = max(
                1, table.num_rows // (options.max_workers * 2)
            )
        chunks = [
            table.slice(start, min(start + batch_size, table.num_rows))
            for start in range(0, max(table.num_rows, 1), batch_size)
        ]
        if use_parallel and len(chunks) > 1:
            with ThreadPoolExecutor(max_workers=options.max_workers) as pool:
                results = list(pool.map(qtrace.wrap(scorer), chunks))
        else:
            results = [scorer(chunk) for chunk in chunks]
        merged: dict[str, np.ndarray] = {}
        for key in results[0]:
            merged[key] = np.concatenate([r[key] for r in results])
        return merged
