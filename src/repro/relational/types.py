"""Logical data types and schemas for the relational engine.

The engine is columnar: a table is a set of named NumPy arrays. The logical
type system is deliberately small (the types a SQL Server ``PREDICT`` query
touches) but carries enough information for binding, type inference in the
static analyzer, and codegen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BINARY = "binary"  # opaque payloads, e.g. serialized models

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used to store a column of this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.BOOL, DataType.INT, DataType.FLOAT)

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DataType":
        """Map a NumPy dtype to the logical type that stores it."""
        kind = np.dtype(dtype).kind
        if kind == "b":
            return cls.BOOL
        if kind in ("i", "u"):
            return cls.INT
        if kind == "f":
            return cls.FLOAT
        if kind in ("U", "S"):
            return cls.STRING
        if kind == "O":
            return cls.BINARY
        raise SchemaError(f"unsupported numpy dtype {dtype!r}")

    @classmethod
    def from_sql_name(cls, name: str) -> "DataType":
        """Map a SQL type name (``float``, ``varchar`` ...) to a DataType."""
        normalized = name.strip().lower().split("(")[0]
        try:
            return _SQL_NAMES[normalized]
        except KeyError:
            raise SchemaError(f"unknown SQL type name {name!r}") from None

    @classmethod
    def common(cls, left: "DataType", right: "DataType") -> "DataType":
        """The implicit-cast result type of combining two types.

        Follows the usual numeric promotion ladder; strings only combine
        with strings.
        """
        if left == right:
            return left
        if left.is_numeric and right.is_numeric:
            order = [DataType.BOOL, DataType.INT, DataType.FLOAT]
            return max(left, right, key=order.index)
        raise SchemaError(f"no common type for {left.value} and {right.value}")


_NUMPY_DTYPES = {
    DataType.BOOL: np.dtype(np.bool_),
    DataType.INT: np.dtype(np.int64),
    DataType.FLOAT: np.dtype(np.float64),
    DataType.STRING: np.dtype("U64"),
    DataType.BINARY: np.dtype(object),
}

_SQL_NAMES = {
    "bit": DataType.BOOL,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
    "tinyint": DataType.INT,
    "smallint": DataType.INT,
    "int": DataType.INT,
    "integer": DataType.INT,
    "bigint": DataType.INT,
    "float": DataType.FLOAT,
    "real": DataType.FLOAT,
    "double": DataType.FLOAT,
    "decimal": DataType.FLOAT,
    "numeric": DataType.FLOAT,
    "char": DataType.STRING,
    "varchar": DataType.STRING,
    "nvarchar": DataType.STRING,
    "text": DataType.STRING,
    "string": DataType.STRING,
    "binary": DataType.BINARY,
    "varbinary": DataType.BINARY,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column in a schema."""

    name: str
    dtype: DataType

    def __repr__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns with unique (case-insensitive) names."""

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            key = col.name.lower()
            if key in seen:
                raise SchemaError(f"duplicate column name {col.name!r}")
            seen.add(key)

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(tuple(Column(name, dtype) for name, dtype in pairs))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def dtypes(self) -> tuple[DataType, ...]:
        return tuple(col.dtype for col in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return any(col.name.lower() == name.lower() for col in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name.

        Resolution mirrors :meth:`repro.relational.table.Table.column`:
        case-insensitive exact match, then unique suffix match
        (``age`` finds ``pi.age``), then unqualified fallback.
        """
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        suffix_matches = [
            col for col in self.columns if col.name.lower().endswith("." + lowered)
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        if len(suffix_matches) > 1:
            raise SchemaError(
                f"ambiguous column {name!r}: matches "
                f"{[c.name for c in suffix_matches]}"
            )
        if "." in lowered:
            short = lowered.split(".")[-1]
            for col in self.columns:
                if col.name.lower() == short:
                    return col
        raise SchemaError(f"no column named {name!r} in {self.names}")

    def index_of(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.lower() == name.lower():
                return i
        raise SchemaError(f"no column named {name!r} in {self.names}")

    def dtype_of(self, name: str) -> DataType:
        return self.column(name).dtype

    def select(self, names: Iterable[str]) -> "Schema":
        """A new schema keeping ``names`` in the order given."""
        return Schema(tuple(self.column(n) for n in names))

    def drop(self, names: Iterable[str]) -> "Schema":
        """A new schema without the given columns."""
        dropped = {n.lower() for n in names}
        return Schema(
            tuple(c for c in self.columns if c.name.lower() not in dropped)
        )

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with columns renamed per ``mapping``."""
        lowered = {k.lower(): v for k, v in mapping.items()}
        return Schema(
            tuple(
                Column(lowered.get(c.name.lower(), c.name), c.dtype)
                for c in self.columns
            )
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a side-by-side concatenation (join output)."""
        return Schema(self.columns + other.columns)

    def prefixed(self, prefix: str) -> "Schema":
        """A new schema with every column name prefixed (``t.col``)."""
        return Schema(
            tuple(Column(f"{prefix}.{c.name}", c.dtype) for c in self.columns)
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.columns)
        return f"Schema({inner})"
