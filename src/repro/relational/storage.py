"""Database persistence: save/load a database directory.

Tables are stored as ``.npz`` column archives, models as
:mod:`repro.ml.model_format` JSON bundles (or serialized tensor graphs /
raw scripts), and a JSON manifest ties them together with schema and
version metadata. Loading never unpickles anything — the same
data-not-code property as the model bundles.

Layout::

    <dir>/manifest.json
    <dir>/tables/<name>.npz
    <dir>/models/<name>_v<version>.json|.txt
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import CatalogError
from repro.ml import model_format
from repro.ml.base import BaseEstimator
from repro.relational.database import Database
from repro.relational.statistics import TableStatistics
from repro.relational.table import Table
from repro.relational.types import Column, DataType, Schema
from repro.tensor import serialize as tensor_serialize
from repro.tensor.graph import Graph

#: Version 2 added per-table ``partition_size`` and persisted
#: ``statistics`` (row count, min/max, NDV, histograms). Version 3
#: adds the per-table ``sharding`` spec (key, shard count, hash/range
#: boundaries); the shards themselves are *not* persisted — they are a
#: deterministic function of the table and the spec, so loading
#: re-declares the sharding and the catalog rebuilds shard tables (and
#: their statistics) lazily on first distributed access. Version 1 and
#: 2 manifests still load; missing statistics rebuild lazily.
MANIFEST_VERSION = 3

_SUPPORTED_MANIFEST_VERSIONS = (1, 2, 3)


def save_database(database: Database, path: str | Path) -> Path:
    """Persist all tables and models of ``database`` under ``path``."""
    path = Path(path)
    (path / "tables").mkdir(parents=True, exist_ok=True)
    (path / "models").mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "manifest_version": MANIFEST_VERSION,
        "tables": {},
        "models": [],
    }
    for name in database.catalog.table_names():
        table = database.table(name)
        file_name = f"{name}.npz"
        np.savez(path / "tables" / file_name, **table.to_dict())
        spec: dict = {
            "file": file_name,
            "schema": [
                [column.name, column.dtype.value] for column in table.schema
            ],
            "partition_size": table.partition_size,
            # Persisting statistics means a reloaded database plans at
            # full fidelity immediately — no warm-up ANALYZE pass.
            "statistics": database.catalog.table_statistics(name).to_dict(),
        }
        sharding = database.catalog.sharding_spec(name)
        if sharding is not None:
            spec["sharding"] = sharding.to_dict()
        manifest["tables"][name] = spec
    for model_name in database.catalog.model_names():
        for entry in database.catalog.model_versions(model_name):
            stem = f"{model_name}_v{entry.version}"
            payload = entry.payload
            if isinstance(payload, BaseEstimator):
                file_name = f"{stem}.json"
                (path / "models" / file_name).write_text(
                    model_format.dumps(payload)
                )
                payload_kind = "ml.bundle"
            elif isinstance(payload, Graph):
                file_name = f"{stem}.json"
                (path / "models" / file_name).write_text(
                    tensor_serialize.dumps(payload)
                )
                payload_kind = "tensor.graph"
            elif isinstance(payload, str):
                file_name = f"{stem}.txt"
                (path / "models" / file_name).write_text(payload)
                payload_kind = "text"
            else:
                raise CatalogError(
                    f"model {entry.qualified_name}: payload of type "
                    f"{type(payload).__name__} is not persistable"
                )
            manifest["models"].append(
                {
                    "name": entry.name,
                    "version": entry.version,
                    "flavor": entry.flavor,
                    "file": file_name,
                    "payload_kind": payload_kind,
                    "metadata": entry.metadata,
                }
            )
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return path


def load_database(path: str | Path) -> Database:
    """Reconstruct a database saved by :func:`save_database`."""
    path = Path(path)
    manifest_file = path / "manifest.json"
    if not manifest_file.exists():
        raise CatalogError(f"no manifest.json under {path}")
    manifest = json.loads(manifest_file.read_text())
    if manifest.get("manifest_version") not in _SUPPORTED_MANIFEST_VERSIONS:
        raise CatalogError(
            f"unsupported manifest_version {manifest.get('manifest_version')!r}"
        )
    database = Database()
    for name, spec in manifest["tables"].items():
        schema = Schema(
            tuple(
                Column(col_name, DataType(type_name))
                for col_name, type_name in spec["schema"]
            )
        )
        with np.load(path / "tables" / spec["file"], allow_pickle=False) as data:
            columns = {key: data[key] for key in data.files}
        database.register_table(
            name, Table(schema, columns, spec.get("partition_size"))
        )
        stats_spec = spec.get("statistics")
        if stats_spec:
            # v2+: reuse the persisted statistics. v1 manifests have
            # none; the catalog rebuilds them lazily on first use.
            database.catalog.set_table_statistics(
                name, TableStatistics.from_dict(stats_spec)
            )
        sharding_spec = spec.get("sharding")
        if sharding_spec:
            # v3: re-declare the sharding; shard tables and their
            # statistics materialize lazily on first distributed use.
            from repro.distributed.shards import ShardingSpec

            sharding = ShardingSpec.from_dict(sharding_spec)
            database.catalog.shard_table(
                name,
                sharding.key,
                sharding.num_shards,
                sharding.kind,
                sharding.boundaries,
            )
    # Versions were appended in order; re-storing in order recreates them.
    for spec in sorted(
        manifest["models"], key=lambda m: (m["name"], m["version"])
    ):
        text = (path / "models" / spec["file"]).read_text()
        if spec["payload_kind"] == "ml.bundle":
            payload: object = model_format.loads(text)
        elif spec["payload_kind"] == "tensor.graph":
            payload = tensor_serialize.loads(text)
        else:
            payload = text
        entry = database.store_model(
            spec["name"],
            payload,
            flavor=spec["flavor"],
            metadata=spec.get("metadata") or {},
        )
        if entry.version != spec["version"]:
            raise CatalogError(
                f"model {spec['name']}: version gap in manifest "
                f"(expected {spec['version']}, created {entry.version})"
            )
    return database
