"""The relational substrate: a columnar mini-RDBMS with native scoring.

Public surface:

* :class:`~repro.relational.database.Database` — SQL in, tables out.
* :class:`~repro.relational.table.Table` — the columnar batch format.
* :class:`~repro.relational.types.Schema` / :class:`DataType`.
* :mod:`repro.relational.expressions` — scalar expression trees.
"""

from repro.relational.database import Database, SessionCache
from repro.relational.table import Table
from repro.relational.types import Column, DataType, Schema

__all__ = ["Database", "SessionCache", "Table", "Column", "DataType", "Schema"]
