"""Abstract syntax tree for the SQL dialect.

The parser produces these nodes; the binder lowers them onto the logical
algebra. Expressions reuse :mod:`repro.relational.expressions` directly —
SQL expression syntax maps 1:1 onto that tree, which keeps the binder thin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Expression
from repro.relational.types import DataType


@dataclass(frozen=True)
class SelectItem:
    """One item in a SELECT list: expression + optional alias; ``*`` when
    ``star`` is set (optionally qualified, ``t.*``)."""

    expression: Expression | None = None
    alias: str | None = None
    star: bool = False
    star_qualifier: str | None = None


@dataclass(frozen=True)
class TableRef:
    """Base class for anything that can appear in FROM."""

    alias: str | None


@dataclass(frozen=True)
class NamedTable(TableRef):
    """A base table or CTE reference."""

    name: str = ""


@dataclass(frozen=True)
class SubqueryTable(TableRef):
    """A parenthesized subquery in FROM."""

    query: "SelectStatement" = None  # type: ignore[assignment]


@dataclass(frozen=True)
class PredictTable(TableRef):
    """``PREDICT(MODEL = @m, DATA = source AS d) WITH (col type, ...)``.

    The SQL Server 2017 native-scoring table-valued function the paper
    builds on. ``output_columns`` is the WITH clause declaring prediction
    output names/types; ``data`` is the input relation.
    """

    model_variable: str = ""
    data: TableRef = None  # type: ignore[assignment]
    data_alias: str | None = None
    output_columns: tuple[tuple[str, DataType], ...] = ()


@dataclass(frozen=True)
class Join:
    """A join clause attached to the previous FROM item."""

    kind: str  # INNER, LEFT, RIGHT, FULL, CROSS
    table: TableRef
    condition: Expression | None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT, possibly with CTEs, joins, grouping and set ops."""

    items: tuple[SelectItem, ...]
    source: TableRef | None = None
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
    ctes: tuple[tuple[str, "SelectStatement"], ...] = ()
    union: tuple["SelectStatement", ...] = ()  # UNION ALL branches


@dataclass(frozen=True)
class DeclareStatement:
    """``DECLARE @name type = <scalar subquery or literal>``."""

    name: str
    type_name: str
    value: Expression | None = None
    subquery: SelectStatement | None = None


@dataclass(frozen=True)
class InsertStatement:
    name: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectStatement | None = None


@dataclass(frozen=True)
class CreateTableStatement:
    name: str
    columns: tuple[tuple[str, DataType], ...]


@dataclass(frozen=True)
class DropTableStatement:
    name: str


@dataclass(frozen=True)
class DeleteStatement:
    name: str
    where: Expression | None = None


@dataclass(frozen=True)
class UpdateStatement:
    name: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class AnalyzeStatement:
    """``ANALYZE <table>``: recompute statistics, bump the stats epoch."""

    name: str


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``: render the optimized physical plan.

    Executing it returns a one-column table of plan lines annotated with
    histogram-based row estimates and zone-map partition pruning counts.
    With ``ANALYZE``, the plan is additionally *executed* through an
    instrumented executor and each line carries actual rows, wall time,
    and the q-error of the estimate.
    """

    select: SelectStatement
    analyze: bool = False


@dataclass(frozen=True)
class TransactionStatement:
    """BEGIN TRANSACTION / COMMIT / ROLLBACK."""

    action: str  # "begin" | "commit" | "rollback"


@dataclass(frozen=True)
class ExecStatement:
    """``EXEC sp_execute_external_script @language=..., @script=...``.

    The out-of-process escape hatch (§5 of the paper). Parameters are kept
    as raw name/expression pairs for the runtime to interpret.
    """

    procedure: str
    parameters: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class Script:
    """A batch of statements separated by ``;``."""

    statements: tuple = field(default_factory=tuple)

    def single(self):
        """The only statement in the batch (errors otherwise)."""
        if len(self.statements) != 1:
            raise ValueError(f"expected one statement, got {len(self.statements)}")
        return self.statements[0]
