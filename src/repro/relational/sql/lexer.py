"""SQL tokenizer.

Supports the T-SQL-flavoured subset Raven queries use: ``DECLARE @var``,
``WITH`` CTEs, ``SELECT``/``JOIN``/``WHERE``, the ``PREDICT(MODEL=...,
DATA=...)`` table-valued function, ``CASE`` expressions, string/number
literals, and comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
    "OUTER", "CROSS", "ON", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "WITH", "DECLARE", "INSERT", "INTO", "VALUES", "CREATE", "TABLE",
    "DROP", "DELETE", "UPDATE", "SET", "GROUP", "BY", "ORDER", "ASC",
    "DESC", "LIMIT", "TOP", "UNION", "ALL", "DISTINCT", "CASE", "WHEN",
    "THEN", "ELSE", "END", "PREDICT", "MODEL", "DATA", "EXEC", "BETWEEN",
    "HAVING", "CAST", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "LIKE",
    "ANALYZE", "EXPLAIN",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    VARIABLE = "variable"  # @name
    PARAMETER = "parameter"  # ? placeholder
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"  # ( ) , ; .
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value.upper() == value.upper()

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


_OPERATORS = ("<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),;."


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(sql)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = sql[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        # Comments
        if sql.startswith("--", i):
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SQLSyntaxError("unterminated block comment", line, column())
            line += sql.count("\n", i, end)
            i = end + 2
            continue
        # String literal (single quotes, '' escapes)
        if ch == "'":
            start_line, start_col = line, column()
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(
                        "unterminated string literal", start_line, start_col
                    )
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                if sql[j] == "\n":
                    line += 1
                parts.append(sql[j])
                j += 1
            tokens.append(
                Token(TokenType.STRING, "".join(parts), start_line, start_col)
            )
            i = j + 1
            continue
        # Bracketed identifier [name]
        if ch == "[":
            end = sql.find("]", i)
            if end == -1:
                raise SQLSyntaxError("unterminated [identifier]", line, column())
            tokens.append(
                Token(TokenType.IDENTIFIER, sql[i + 1 : end], line, column())
            )
            i = end + 1
            continue
        # Positional parameter placeholder
        if ch == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", line, column()))
            i += 1
            continue
        # Variable @name
        if ch == "@":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise SQLSyntaxError("bare '@'", line, column())
            tokens.append(Token(TokenType.VARIABLE, sql[i + 1 : j], line, column()))
            i = j
            continue
        # Number
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], line, column()))
            i = j
            continue
        # Identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            token_type = (
                TokenType.KEYWORD if word.upper() in KEYWORDS else TokenType.IDENTIFIER
            )
            tokens.append(Token(token_type, word, line, column()))
            i = j
            continue
        # Operators
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                value = "<>" if op == "!=" else op
                tokens.append(Token(TokenType.OPERATOR, value, line, column()))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, line, column()))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
