"""Recursive-descent parser for the SQL dialect.

The grammar covers what Raven inference queries need (Fig. 1 of the paper):
``DECLARE`` of model variables, ``WITH`` CTEs, joins, ``PREDICT(MODEL=...,
DATA=...) WITH (...)``, ``CASE`` expressions, plus the DML/DDL used by the
examples and tests (CREATE/INSERT/UPDATE/DELETE, transactions, EXEC).
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    Literal,
    Parameter,
    UnaryOp,
)
from repro.relational.sql import ast_nodes as ast
from repro.relational.sql.lexer import Token, TokenType, tokenize
from repro.relational.types import DataType


class Parser:
    """A single-use parser over a token stream."""

    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._pos = 0
        self._param_count = 0  # numbers ? placeholders in parse order

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self._peek().matches(token_type, value)

    def _match(self, token_type: TokenType, value: str | None = None) -> bool:
        if self._check(token_type, value):
            self._advance()
            return True
        return False

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(token_type, value):
            expected = value or token_type.value
            raise SQLSyntaxError(
                f"expected {expected!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _keyword(self, word: str) -> bool:
        return self._match(TokenType.KEYWORD, word)

    def _expect_keyword(self, word: str) -> Token:
        return self._expect(TokenType.KEYWORD, word)

    def _identifier(self) -> str:
        token = self._peek()
        # Allow non-reserved keywords (MODEL, DATA...) as identifiers.
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._advance()
            return token.value
        raise SQLSyntaxError(
            f"expected identifier, found {token.value!r}", token.line, token.column
        )

    # -- entry points --------------------------------------------------------

    def parse_script(self) -> ast.Script:
        statements = []
        while not self._check(TokenType.EOF):
            if self._match(TokenType.PUNCT, ";"):
                continue
            statements.append(self._statement())
        return ast.Script(tuple(statements))

    # -- statements ----------------------------------------------------------

    def _statement(self):
        token = self._peek()
        if token.matches(TokenType.KEYWORD, "DECLARE"):
            return self._declare()
        if token.matches(TokenType.KEYWORD, "WITH") or token.matches(
            TokenType.KEYWORD, "SELECT"
        ):
            return self._select_statement()
        if token.matches(TokenType.KEYWORD, "INSERT"):
            return self._insert()
        if token.matches(TokenType.KEYWORD, "CREATE"):
            return self._create_table()
        if token.matches(TokenType.KEYWORD, "DROP"):
            return self._drop_table()
        if token.matches(TokenType.KEYWORD, "DELETE"):
            return self._delete()
        if token.matches(TokenType.KEYWORD, "UPDATE"):
            return self._update()
        if token.matches(TokenType.KEYWORD, "BEGIN"):
            self._advance()
            self._expect_keyword("TRANSACTION")
            return ast.TransactionStatement("begin")
        if token.matches(TokenType.KEYWORD, "COMMIT"):
            self._advance()
            self._keyword("TRANSACTION")
            return ast.TransactionStatement("commit")
        if token.matches(TokenType.KEYWORD, "ROLLBACK"):
            self._advance()
            self._keyword("TRANSACTION")
            return ast.TransactionStatement("rollback")
        if token.matches(TokenType.KEYWORD, "EXEC"):
            return self._exec()
        if token.matches(TokenType.KEYWORD, "ANALYZE"):
            self._advance()
            self._keyword("TABLE")
            return ast.AnalyzeStatement(self._identifier())
        if token.matches(TokenType.KEYWORD, "EXPLAIN"):
            self._advance()
            analyze = self._keyword("ANALYZE")
            return ast.ExplainStatement(
                self._select_statement(), analyze=analyze
            )
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at statement start",
            token.line,
            token.column,
        )

    def _declare(self) -> ast.DeclareStatement:
        self._expect_keyword("DECLARE")
        name = self._expect(TokenType.VARIABLE).value
        type_name = self._identifier()
        if self._match(TokenType.PUNCT, "("):
            # varbinary(max) and friends: swallow the size spec
            while not self._match(TokenType.PUNCT, ")"):
                self._advance()
        value: Expression | None = None
        subquery: ast.SelectStatement | None = None
        if self._match(TokenType.OPERATOR, "="):
            if self._check(TokenType.PUNCT, "(") and self._peek(1).matches(
                TokenType.KEYWORD, "SELECT"
            ):
                self._expect(TokenType.PUNCT, "(")
                subquery = self._select_statement()
                self._expect(TokenType.PUNCT, ")")
            else:
                value = self._expression()
        return ast.DeclareStatement(name, type_name, value, subquery)

    def _insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        name = self._identifier()
        columns: tuple[str, ...] = ()
        if self._match(TokenType.PUNCT, "("):
            names = [self._identifier()]
            while self._match(TokenType.PUNCT, ","):
                names.append(self._identifier())
            self._expect(TokenType.PUNCT, ")")
            columns = tuple(names)
        if self._keyword("VALUES"):
            rows = [self._value_row()]
            while self._match(TokenType.PUNCT, ","):
                rows.append(self._value_row())
            return ast.InsertStatement(name, columns, tuple(rows))
        # INSERT INTO t AS (SELECT ...) / INSERT INTO t SELECT ...
        self._keyword("AS")
        had_paren = self._match(TokenType.PUNCT, "(")
        select = self._select_statement()
        if had_paren:
            self._expect(TokenType.PUNCT, ")")
        return ast.InsertStatement(name, columns, (), select)

    def _value_row(self) -> tuple[Expression, ...]:
        self._expect(TokenType.PUNCT, "(")
        values = [self._expression()]
        while self._match(TokenType.PUNCT, ","):
            values.append(self._expression())
        self._expect(TokenType.PUNCT, ")")
        return tuple(values)

    def _create_table(self) -> ast.CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._identifier()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._column_def()]
        while self._match(TokenType.PUNCT, ","):
            columns.append(self._column_def())
        self._expect(TokenType.PUNCT, ")")
        return ast.CreateTableStatement(name, tuple(columns))

    def _column_def(self) -> tuple[str, DataType]:
        name = self._identifier()
        type_name = self._identifier()
        if self._match(TokenType.PUNCT, "("):
            while not self._match(TokenType.PUNCT, ")"):
                self._advance()
        return name, DataType.from_sql_name(type_name)

    def _drop_table(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return ast.DropTableStatement(self._identifier())

    def _delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        name = self._identifier()
        where = self._expression() if self._keyword("WHERE") else None
        return ast.DeleteStatement(name, where)

    def _update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        name = self._identifier()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._match(TokenType.PUNCT, ","):
            assignments.append(self._assignment())
        where = self._expression() if self._keyword("WHERE") else None
        return ast.UpdateStatement(name, tuple(assignments), where)

    def _assignment(self) -> tuple[str, Expression]:
        name = self._identifier()
        self._expect(TokenType.OPERATOR, "=")
        return name, self._expression()

    def _exec(self) -> ast.ExecStatement:
        self._expect_keyword("EXEC")
        procedure = self._identifier()
        parameters: list[tuple[str, Expression]] = []
        while self._check(TokenType.VARIABLE):
            pname = self._advance().value
            self._expect(TokenType.OPERATOR, "=")
            parameters.append((pname, self._expression()))
            if not self._match(TokenType.PUNCT, ","):
                break
        return ast.ExecStatement(procedure, tuple(parameters))

    # -- SELECT --------------------------------------------------------------

    def _select_statement(self) -> ast.SelectStatement:
        ctes: list[tuple[str, ast.SelectStatement]] = []
        if self._keyword("WITH"):
            while True:
                name = self._identifier()
                self._expect_keyword("AS")
                self._expect(TokenType.PUNCT, "(")
                ctes.append((name, self._select_statement()))
                self._expect(TokenType.PUNCT, ")")
                if not self._match(TokenType.PUNCT, ","):
                    break
        select = self._select_core()
        unions: list[ast.SelectStatement] = []
        while self._keyword("UNION"):
            self._expect_keyword("ALL")
            unions.append(self._select_core())
        return ast.SelectStatement(
            items=select.items,
            source=select.source,
            joins=select.joins,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=select.limit,
            distinct=select.distinct,
            ctes=tuple(ctes),
            union=tuple(unions),
        )

    def _select_core(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = bool(self._keyword("DISTINCT"))
        limit: int | None = None
        if self._keyword("TOP"):
            limit = int(self._expect(TokenType.NUMBER).value)
        items = [self._select_item()]
        while self._match(TokenType.PUNCT, ","):
            items.append(self._select_item())
        source: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self._keyword("FROM"):
            source = self._table_ref()
            while True:
                join = self._maybe_join()
                if join is None:
                    break
                joins.append(join)
        where = self._expression() if self._keyword("WHERE") else None
        group_by: list[Expression] = []
        if self._keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._match(TokenType.PUNCT, ","):
                group_by.append(self._expression())
        having = self._expression() if self._keyword("HAVING") else None
        order_by: list[ast.OrderItem] = []
        if self._keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._expression()
                ascending = True
                if self._keyword("DESC"):
                    ascending = False
                else:
                    self._keyword("ASC")
                order_by.append(ast.OrderItem(expr, ascending))
                if not self._match(TokenType.PUNCT, ","):
                    break
        if self._keyword("LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)
        return ast.SelectStatement(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._match(TokenType.OPERATOR, "*"):
            return ast.SelectItem(star=True)
        # t.* — identifier '.' '*'
        if (
            self._check(TokenType.IDENTIFIER)
            and self._peek(1).matches(TokenType.PUNCT, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(star=True, star_qualifier=qualifier)
        expr = self._expression()
        alias: str | None = None
        if self._keyword("AS"):
            alias = self._identifier()
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expression=expr, alias=alias)

    def _maybe_join(self) -> ast.Join | None:
        kind: str | None = None
        if self._keyword("JOIN"):
            kind = "INNER"
        elif self._keyword("INNER"):
            self._expect_keyword("JOIN")
            kind = "INNER"
        elif self._keyword("LEFT"):
            self._keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "LEFT"
        elif self._keyword("RIGHT"):
            self._keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "RIGHT"
        elif self._keyword("FULL"):
            self._keyword("OUTER")
            self._expect_keyword("JOIN")
            kind = "FULL"
        elif self._keyword("CROSS"):
            self._expect_keyword("JOIN")
            kind = "CROSS"
        if kind is None:
            return None
        table = self._table_ref()
        condition: Expression | None = None
        if kind != "CROSS":
            self._expect_keyword("ON")
            condition = self._expression()
        return ast.Join(kind, table, condition)

    def _table_ref(self) -> ast.TableRef:
        if self._keyword("PREDICT"):
            return self._predict_table()
        if self._match(TokenType.PUNCT, "("):
            query = self._select_statement()
            self._expect(TokenType.PUNCT, ")")
            alias = self._table_alias()
            return ast.SubqueryTable(alias=alias, query=query)
        name = self._identifier()
        alias = self._table_alias()
        return ast.NamedTable(alias=alias, name=name)

    def _table_alias(self) -> str | None:
        if self._keyword("AS"):
            return self._identifier()
        if self._check(TokenType.IDENTIFIER) and not self._peek(1).matches(
            TokenType.PUNCT, "."
        ):
            return self._advance().value
        return None

    def _predict_table(self) -> ast.PredictTable:
        """PREDICT(MODEL = @m, DATA = <ref> AS d) WITH (name type, ...) AS p"""
        self._expect(TokenType.PUNCT, "(")
        self._expect_keyword("MODEL")
        self._expect(TokenType.OPERATOR, "=")
        model_variable = self._expect(TokenType.VARIABLE).value
        self._expect(TokenType.PUNCT, ",")
        self._expect_keyword("DATA")
        self._expect(TokenType.OPERATOR, "=")
        data = self._table_ref()
        data_alias = data.alias
        self._expect(TokenType.PUNCT, ")")
        self._expect_keyword("WITH")
        self._expect(TokenType.PUNCT, "(")
        outputs = []
        while True:
            col_name = self._identifier()
            type_name = self._identifier()
            if self._match(TokenType.PUNCT, "("):
                while not self._match(TokenType.PUNCT, ")"):
                    self._advance()
            outputs.append((col_name, DataType.from_sql_name(type_name)))
            if not self._match(TokenType.PUNCT, ","):
                break
        self._expect(TokenType.PUNCT, ")")
        alias = self._table_alias()
        return ast.PredictTable(
            alias=alias,
            model_variable=model_variable,
            data=data,
            data_alias=data_alias,
            output_columns=tuple(outputs),
        )

    # -- expressions ---------------------------------------------------------
    # Precedence: OR < AND < NOT < comparison/IN/BETWEEN < add < mul < unary.

    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            return BinaryOp(token.value, left, self._additive())
        if self._keyword("IN"):
            self._expect(TokenType.PUNCT, "(")
            values = [self._literal_value()]
            while self._match(TokenType.PUNCT, ","):
                values.append(self._literal_value())
            self._expect(TokenType.PUNCT, ")")
            return InList(left, tuple(values))
        if self._keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return BinaryOp("AND", BinaryOp(">=", left, low), BinaryOp("<=", left, high))
        if self._keyword("IS"):
            negate = bool(self._keyword("NOT"))
            self._expect_keyword("NULL")
            # No NULLs in the storage model: IS NULL is constant-folded.
            return Literal(bool(negate))
        return left

    def _literal_value(self):
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return float(text) if ("." in text or "e" in text.lower()) else int(text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise SQLSyntaxError(
            f"expected literal, found {token.value!r}", token.line, token.column
        )

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self._match(TokenType.OPERATOR, "-"):
            return UnaryOp("-", self._unary())
        if self._match(TokenType.OPERATOR, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text.lower()) else int(text)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            self._param_count += 1
            return Parameter(f"?{self._param_count}")
        if token.type is TokenType.VARIABLE:
            # In scalar position a variable is a placeholder: either a
            # DECLAREd value the binder substitutes, or a named prepared-
            # query parameter (@p1, @p2, ...) bound at execution time.
            self._advance()
            return Parameter(f"@{token.value}")
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._case()
        if token.matches(TokenType.KEYWORD, "CAST"):
            self._advance()
            self._expect(TokenType.PUNCT, "(")
            inner = self._expression()
            self._expect_keyword("AS")
            self._identifier()  # target type: storage handles coercion
            if self._match(TokenType.PUNCT, "("):
                while not self._match(TokenType.PUNCT, ")"):
                    self._advance()
            self._expect(TokenType.PUNCT, ")")
            return inner
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return Literal(0.0)
        if self._match(TokenType.PUNCT, "("):
            expr = self._expression()
            self._expect(TokenType.PUNCT, ")")
            return expr
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            name = self._identifier()
            # function call
            if self._check(TokenType.PUNCT, "("):
                self._advance()
                args: list[Expression] = []
                if self._match(TokenType.OPERATOR, "*"):
                    # COUNT(*) — the star stands for "any column".
                    args.append(ColumnRef("*"))
                elif not self._check(TokenType.PUNCT, ")"):
                    args.append(self._expression())
                    while self._match(TokenType.PUNCT, ","):
                        args.append(self._expression())
                self._expect(TokenType.PUNCT, ")")
                return FunctionCall(name, tuple(args))
            # dotted column reference
            parts = [name]
            while self._match(TokenType.PUNCT, "."):
                parts.append(self._identifier())
            return ColumnRef(".".join(parts))
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} in expression",
            token.line,
            token.column,
        )

    def _case(self) -> Expression:
        self._expect_keyword("CASE")
        branches: list[tuple[Expression, Expression]] = []
        while self._keyword("WHEN"):
            cond = self._expression()
            self._expect_keyword("THEN")
            branches.append((cond, self._expression()))
        default: Expression = Literal(0.0)
        if self._keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        return CaseWhen(tuple(branches), default)


def parse(sql: str) -> ast.Script:
    """Parse a SQL batch into a :class:`~ast_nodes.Script`."""
    return Parser(sql).parse_script()


def parse_statement(sql: str):
    """Parse SQL expected to contain exactly one statement."""
    return parse(sql).single()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone scalar expression (used in tests and codegen)."""
    parser = Parser(sql)
    expr = parser._expression()
    parser._expect(TokenType.EOF)
    return expr
