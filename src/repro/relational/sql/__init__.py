"""SQL front end: lexer, AST, and parser."""

from repro.relational.sql.parser import parse, parse_expression, parse_statement

__all__ = ["parse", "parse_expression", "parse_statement"]
