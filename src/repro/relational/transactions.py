"""Undo-log transactions over the catalog.

Because tables are immutable :class:`~repro.relational.table.Table` values,
a transaction only needs to remember, per touched object, the reference that
was current when the transaction first touched it; rollback restores those
references. This gives atomicity for the catalog operations the paper cares
about — in particular "a change to the model is handled as part of a
transaction" (§2).
"""

from __future__ import annotations

from repro.errors import TransactionError
from repro.relational.catalog import Catalog


class Transaction:
    """A single active transaction (no nesting, like a basic T-SQL batch)."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._table_undo: dict[str, object] = {}
        self._model_undo: dict[str, object] = {}
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def note_table(self, name: str) -> None:
        """Record the pre-image of a table before the first write to it."""
        self._require_active()
        key = name.lower()
        if key not in self._table_undo:
            self._table_undo[key] = self._catalog.snapshot_table(name)

    def note_model(self, name: str) -> None:
        """Record the pre-image of a model's version list."""
        self._require_active()
        key = name.lower()
        if key not in self._model_undo:
            self._model_undo[key] = self._catalog.snapshot_model_versions(name)

    def commit(self) -> None:
        self._require_active()
        self._table_undo.clear()
        self._model_undo.clear()
        self._active = False

    def rollback(self) -> None:
        self._require_active()
        for name, snapshot in self._table_undo.items():
            self._catalog.restore_table(name, snapshot)
        for name, snapshot in self._model_undo.items():
            self._catalog.restore_model_versions(name, snapshot)
        self._table_undo.clear()
        self._model_undo.clear()
        self._active = False

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("transaction is no longer active")


class TransactionManager:
    """Tracks the (single) active transaction for a database session."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._current: Transaction | None = None

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.active

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise TransactionError("a transaction is already active")
        self._current = Transaction(self._catalog)
        return self._current

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("COMMIT without an active transaction")
        assert self._current is not None
        self._current.commit()
        self._current = None

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("ROLLBACK without an active transaction")
        assert self._current is not None
        self._current.rollback()
        self._current = None

    def note_table_write(self, name: str) -> None:
        """Called by the database before any table mutation."""
        if self.in_transaction:
            assert self._current is not None
            self._current.note_table(name)

    def note_model_write(self, name: str) -> None:
        """Called by the database before any model mutation."""
        if self.in_transaction:
            assert self._current is not None
            self._current.note_model(name)
