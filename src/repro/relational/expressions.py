"""Scalar expression trees with vectorized evaluation.

These expressions appear in ``WHERE`` clauses, projection lists, join
conditions, and inside the Raven IR (predicates that the cross-optimizer
pushes into models). They evaluate against a :class:`~repro.relational.table.Table`
one batch at a time using NumPy, and they can be rendered back to SQL text by
the runtime code generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError, SchemaError
from repro.relational.table import Table
from repro.relational.types import DataType, Schema


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Evaluate over all rows of ``table``, returning a 1-D array."""
        raise NotImplementedError

    def output_type(self, schema: Schema) -> DataType:
        """The logical type this expression produces under ``schema``."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names referenced anywhere in this expression."""
        return {node.name for node in self.walk() if isinstance(node, ColumnRef)}

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Expression", ...]:
        return ()

    def substitute(self, mapping: Mapping[str, "Expression"]) -> "Expression":
        """Replace column references by expressions (used by UDF inlining)."""
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render this expression as SQL text."""
        raise NotImplementedError

    # Structural equality lets the optimizer deduplicate predicates.
    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    # Convenience builders so tests and rules read naturally.
    def __and__(self, other: "Expression") -> "Expression":
        return BinaryOp("AND", self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return BinaryOp("OR", self, other)

    def __invert__(self) -> "Expression":
        return UnaryOp("NOT", self)


@dataclass(frozen=True, eq=False)
class ColumnRef(Expression):
    """A reference to a column by name (possibly qualified, ``t.col``)."""

    name: str

    @property
    def unqualified(self) -> str:
        return self.name.split(".")[-1]

    def evaluate(self, table: Table) -> np.ndarray:
        try:
            return table.column(self.name)
        except SchemaError:
            # Fall back to unqualified match (after joins drop prefixes).
            return table.column(self.unqualified)

    def output_type(self, schema: Schema) -> DataType:
        if self.name in schema:
            return schema.dtype_of(self.name)
        return schema.dtype_of(self.unqualified)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        for key in (self.name, self.unqualified):
            if key in mapping:
                return mapping[key]
        return self

    def to_sql(self) -> str:
        return self.name

    def _key(self):
        return (self.name,)

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant value."""

    value: object

    def evaluate(self, table: Table) -> np.ndarray:
        return np.full(table.num_rows, self.value)

    def output_type(self, schema: Schema) -> DataType:
        if isinstance(self.value, bool):
            return DataType.BOOL
        if isinstance(self.value, (int, np.integer)):
            return DataType.INT
        if isinstance(self.value, (float, np.floating)):
            return DataType.FLOAT
        if isinstance(self.value, str):
            return DataType.STRING
        return DataType.BINARY

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self

    def to_sql(self) -> str:
        if isinstance(self.value, bool):
            return "1" if self.value else "0"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, float) and math.isinf(self.value):
            return "1e308" if self.value > 0 else "-1e308"
        return str(self.value)

    def _key(self):
        return (self.value,)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=False)
class Parameter(Expression):
    """A query parameter placeholder, bound at execution time.

    ``name`` carries its sigil: positional placeholders are ``"?1"``,
    ``"?2"``, ... in parse order; named placeholders are ``"@p1"`` etc.
    Prepared queries cache plans containing :class:`Parameter` nodes and
    substitute literals per execution (:mod:`repro.serving.prepared`).
    """

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        raise ExecutionError(
            f"unbound parameter {self.name}; bind it via a prepared query "
            "or a DECLAREd variable"
        )

    def output_type(self, schema: Schema) -> DataType:
        # The bound value's type is unknown until execution; FLOAT is the
        # widest type the optimizer's estimates care about.
        return DataType.FLOAT

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        if self.name in mapping:
            return mapping[self.name]
        return self

    def to_sql(self) -> str:
        return "?" if self.name.startswith("?") else self.name

    def _key(self):
        return (self.name,)

    def __repr__(self) -> str:
        return f"param({self.name})"


_COMPARISONS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, or boolean connective."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def evaluate(self, table: Table) -> np.ndarray:
        a = self.left.evaluate(table)
        b = self.right.evaluate(table)
        op = self.op.upper()
        if op in _COMPARISONS:
            return _COMPARISONS[op](a, b)
        if op in _ARITHMETIC:
            return _ARITHMETIC[op](a, b)
        if op == "AND":
            return a.astype(bool) & b.astype(bool)
        if op == "OR":
            return a.astype(bool) | b.astype(bool)
        raise ExecutionError(f"unknown binary operator {self.op!r}")

    def output_type(self, schema: Schema) -> DataType:
        op = self.op.upper()
        if op in _COMPARISONS or op in ("AND", "OR"):
            return DataType.BOOL
        left = self.left.output_type(schema)
        right = self.right.output_type(schema)
        if op == "/":
            return DataType.FLOAT
        return DataType.common(left, right)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return BinaryOp(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def _key(self):
        return (self.op.upper(), self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class UnaryOp(Expression):
    """``NOT x`` or ``-x``."""

    op: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def evaluate(self, table: Table) -> np.ndarray:
        value = self.operand.evaluate(table)
        op = self.op.upper()
        if op == "NOT":
            return ~value.astype(bool)
        if op == "-":
            return -value
        raise ExecutionError(f"unknown unary operator {self.op!r}")

    def output_type(self, schema: Schema) -> DataType:
        if self.op.upper() == "NOT":
            return DataType.BOOL
        return self.operand.output_type(schema)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return UnaryOp(self.op, self.operand.substitute(mapping))

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"(-{self.operand.to_sql()})"

    def _key(self):
        return (self.op.upper(), self.operand)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True, eq=False)
class InList(Expression):
    """``x IN (v1, v2, ...)`` over literal values."""

    operand: Expression
    values: tuple

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def evaluate(self, table: Table) -> np.ndarray:
        value = self.operand.evaluate(table)
        return np.isin(value, np.asarray(list(self.values)))

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return InList(self.operand.substitute(mapping), self.values)

    def to_sql(self) -> str:
        rendered = ", ".join(Literal(v).to_sql() for v in self.values)
        return f"({self.operand.to_sql()} IN ({rendered}))"

    def _key(self):
        return (self.operand, self.values)

    def __repr__(self) -> str:
        return f"{self.operand!r} IN {self.values!r}"


@dataclass(frozen=True, eq=False)
class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 ... ELSE d END`` — the inlined-tree encoding."""

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression

    def children(self) -> tuple[Expression, ...]:
        out: list[Expression] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        out.append(self.default)
        return tuple(out)

    def evaluate(self, table: Table) -> np.ndarray:
        result = self.default.evaluate(table).copy()
        decided = np.zeros(table.num_rows, dtype=bool)
        for cond, value in self.branches:
            mask = cond.evaluate(table).astype(bool) & ~decided
            if mask.any():
                vals = value.evaluate(table)
                result = result.astype(np.result_type(result.dtype, vals.dtype))
                result[mask] = vals[mask]
            decided |= mask
        return result

    def output_type(self, schema: Schema) -> DataType:
        result = self.default.output_type(schema)
        for _, value in self.branches:
            result = DataType.common(result, value.output_type(schema))
        return result

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return CaseWhen(
            tuple(
                (c.substitute(mapping), v.substitute(mapping))
                for c, v in self.branches
            ),
            self.default.substitute(mapping),
        )

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond.to_sql()} THEN {value.to_sql()}")
        parts.append(f"ELSE {self.default.to_sql()} END")
        return " ".join(parts)

    def _key(self):
        return (self.branches, self.default)

    def __repr__(self) -> str:
        return f"case({len(self.branches)} branches)"


@dataclass(frozen=True, eq=False)
class FunctionCall(Expression):
    """A named scalar function (``ABS``, ``LOG`` ...) or a registered UDF."""

    name: str
    args: tuple[Expression, ...]

    _BUILTINS: dict[str, Callable] = None  # set below

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def evaluate(self, table: Table) -> np.ndarray:
        fn = _SCALAR_FUNCTIONS.get(self.name.upper())
        if fn is None:
            raise ExecutionError(f"unknown scalar function {self.name!r}")
        return fn(*(arg.evaluate(table) for arg in self.args))

    def output_type(self, schema: Schema) -> DataType:
        if self.name.upper() in ("LENGTH", "SIGN"):
            return DataType.INT
        return DataType.FLOAT

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return FunctionCall(
            self.name, tuple(a.substitute(mapping) for a in self.args)
        )

    def to_sql(self) -> str:
        rendered = ", ".join(a.to_sql() for a in self.args)
        return f"{self.name.upper()}({rendered})"

    def _key(self):
        return (self.name.upper(), self.args)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


_SCALAR_FUNCTIONS: dict[str, Callable] = {
    "ABS": np.abs,
    "SQRT": np.sqrt,
    "LOG": np.log,
    "EXP": np.exp,
    "FLOOR": np.floor,
    "CEILING": np.ceil,
    "SIGN": np.sign,
    "ROUND": np.round,
    "SIGMOID": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "LENGTH": lambda x: np.char.str_len(x.astype(str)),
    "POWER": np.power,
    "GREATEST": np.maximum,
    "LEAST": np.minimum,
}


def register_scalar_function(name: str, fn: Callable) -> None:
    """Register a vectorized scalar function usable from SQL and plans."""
    _SCALAR_FUNCTIONS[name.upper()] = fn


# ---------------------------------------------------------------------------
# Helpers used across the optimizer
# ---------------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def parameters(expr: Expression) -> list["Parameter"]:
    """All :class:`Parameter` placeholders in the expression, pre-order."""
    return [node for node in expr.walk() if isinstance(node, Parameter)]


def conjuncts(expr: Expression) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expression]) -> Expression:
    """AND a list of predicates back together (TRUE when empty)."""
    if not exprs:
        return Literal(True)
    result = exprs[0]
    for expr in exprs[1:]:
        result = BinaryOp("AND", result, expr)
    return result


def equality_constants(expr: Expression) -> dict[str, object]:
    """Extract ``column = literal`` facts from a predicate's conjuncts.

    This is what predicate-based model pruning consumes: the set of feature
    values that are known constants under the query's WHERE clause.
    """
    facts: dict[str, object] = {}
    for conjunct in conjuncts(expr):
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right = right, left
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            facts[left.unqualified] = right.value
    return facts


def range_bounds(expr: Expression) -> dict[str, tuple[float, float]]:
    """Extract per-column ``[low, high]`` interval facts from conjuncts.

    Used to prune decision-tree branches that the intervals make
    unreachable. Bounds are closed; missing sides are +/- infinity.
    """
    bounds: dict[str, tuple[float, float]] = {}

    def update(name: str, low: float, high: float) -> None:
        old_low, old_high = bounds.get(name, (-math.inf, math.inf))
        bounds[name] = (max(old_low, low), min(old_high, high))

    for conjunct in conjuncts(expr):
        if not isinstance(conjunct, BinaryOp):
            continue
        op, left, right = conjunct.op, conjunct.left, conjunct.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}.get(op, op)
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            continue
        if not isinstance(right.value, (int, float, np.integer, np.floating)):
            continue
        value = float(right.value)
        name = left.unqualified
        if op == "=":
            update(name, value, value)
        elif op in ("<", "<="):
            update(name, -math.inf, value)
        elif op in (">", ">="):
            update(name, value, math.inf)
    return bounds
