"""System catalog: tables, models, versions, and an audit log.

The paper's motivation for in-DB inference is that the RDBMS extends its
enterprise guarantees — transactions, versioning, auditing — to models.
This catalog delivers scaled-down but real versions of those guarantees:

* models are first-class catalog objects with monotonically increasing
  versions,
* every mutation is recorded in an append-only audit log,
* mutations go through an undo log so transactions can roll them back
  (:mod:`repro.relational.transactions`).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import CatalogError
from repro.relational.statistics import TableStatistics, collect_statistics
from repro.relational.table import Table
from repro.relational.types import Schema

#: Tables at or above this row count are automatically partitioned on
#: registration so zone-map pruning and morsel parallelism apply without
#: callers opting in.
AUTO_PARTITION_MIN_ROWS = 32_768

#: Chunk size used for automatic partitioning.
DEFAULT_PARTITION_SIZE = 8_192

#: Relative row-count drift below which a write keeps the existing
#: statistics (and stats epoch) instead of invalidating them. Small
#: writes must not stampede plan re-preparation across the serving tier.
STATS_DRIFT_THRESHOLD = 0.1

#: Sentinel for :meth:`Catalog._stats_drifted_columns`: the write moved
#: the whole table (row-count drift, or nothing cached to compare to).
ALL_COLUMNS = object()


@dataclass(frozen=True)
class ModelEntry:
    """One version of a stored model pipeline.

    ``payload`` is the model object itself (an ``repro.ml`` pipeline, a
    tensor graph, or a raw Python script for the static analyzer) —
    the catalog treats it as an opaque varbinary, as SQL Server does.
    """

    name: str
    version: int
    payload: object
    flavor: str  # "ml.pipeline" | "tensor.graph" | "python.script" | ...
    created_at: float
    metadata: dict = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.name}:v{self.version}"


@dataclass(frozen=True)
class AuditRecord:
    """One entry in the append-only audit log."""

    timestamp: float
    action: str  # create_table/drop_table/insert/delete/update/store_model/...
    object_name: str
    detail: str = ""


class Catalog:
    """In-memory catalog of tables and models with auditing."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._models: dict[str, list[ModelEntry]] = {}
        self._audit: list[AuditRecord] = []
        self._model_observers: list[Callable[[str, str], None]] = []
        # Statistics are collected lazily (first request after a write)
        # and versioned by a monotonically increasing epoch shared
        # across tables; plan caches key on per-table epochs so ANALYZE
        # or a large write replans exactly the affected plans. The lock
        # keeps stats/epoch updates atomic: a serving worker collecting
        # lazily must not install stats from a table a concurrent
        # writer just replaced under a fresh epoch.
        #
        # Epochs are tracked at two granularities. ``_stats_epochs`` is
        # the per-table any-change epoch (PR 2 semantics). For writes
        # that drift only specific columns, ``_column_epochs`` records
        # per-column override epochs on top of ``_full_epochs`` (the
        # last whole-table bump), so plan caches that know which
        # columns a plan reads stay hot when untouched columns move.
        self._stats: dict[str, TableStatistics] = {}
        self._stats_epochs: dict[str, int] = {}
        self._column_epochs: dict[str, dict[str, int]] = {}
        self._full_epochs: dict[str, int] = {}
        self._epoch_counter = 0
        self._stats_lock = threading.RLock()
        # Sharding: per-table split specs plus lazily materialized
        # shards. Shard epochs move whenever the shard layout or the
        # underlying data does, so cached plans (which record their
        # routing decision) replan instead of scanning a stale layout.
        self._shard_specs: dict[str, object] = {}
        self._sharded: dict[str, object] = {}
        self._shard_epochs: dict[str, int] = {}
        # Estimate feedback: per-table q-error summaries folded in by
        # EXPLAIN ANALYZE (the hook for adaptive re-costing). Bounded:
        # one running summary per table, never a sample list.
        self._q_errors: dict[str, dict] = {}
        # Calibrated per-backend scoring costs ({backend: [setup, row_scale]}),
        # persisted by the first calibration micro-bench so later sessions
        # (and the cost model) skip re-measuring.
        self._backend_costs: dict[str, list] = {}

    # -- model-change observers ----------------------------------------------

    def add_model_observer(self, fn: Callable[[str, str], None]) -> None:
        """Register ``fn(event, model_name)`` for model mutations.

        Events: ``"store_model"``, ``"restore_model"``, ``"drop_model"``.
        Caches keyed on model versions (session caches, plan caches,
        prediction caches) subscribe here so every mutation path — including
        transaction rollback — invalidates them.
        """
        self._model_observers.append(fn)

    def remove_model_observer(self, fn: Callable[[str, str], None]) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self._model_observers.remove(fn)
        except ValueError:
            pass

    def _notify_model(self, event: str, name: str) -> None:
        for fn in list(self._model_observers):
            fn(event, name)

    # -- tables ---------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_schema(self, name: str) -> Schema:
        return self.get_table(name).schema

    def create_table(self, name: str, table: Table, replace: bool = False) -> None:
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = _auto_partition(table)
        self._invalidate_stats(key)
        self._invalidate_shards(key)
        self._log("create_table", name, f"{table.num_rows} rows")

    def set_table(self, name: str, table: Table) -> None:
        """Replace table contents (INSERT/DELETE/UPDATE go through here)."""
        key = name.lower()
        previous = self._tables.get(key)
        if previous is None:
            raise CatalogError(f"unknown table {name!r}")
        # DML rebuilds tables from scratch (derived tables drop
        # partitioning); inherit the previous chunk size so an explicit
        # sub-threshold partitioning survives writes.
        if table.partition_size is None and previous.partition_size:
            table = table.with_partitioning(previous.partition_size)
        else:
            table = _auto_partition(table)
        self._tables[key] = table
        drifted = self._stats_drifted_columns(key, table)
        if drifted is ALL_COLUMNS:
            self._invalidate_stats(key)
        elif drifted:
            self._invalidate_stats_columns(key, drifted)
        # Any write to a sharded table moves rows relative to the
        # materialized shards; the split is redone lazily.
        self._invalidate_shards(key)
        self._log("set_table", name, f"{table.num_rows} rows")

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        self._drop_epochs(key)
        with self._stats_lock:
            self._shard_specs.pop(key, None)
            self._sharded.pop(key, None)
            self._shard_epochs.pop(key, None)
        self._log("drop_table", name)

    # -- sharding -------------------------------------------------------------

    def shard_table(
        self,
        name: str,
        key: str,
        num_shards: int,
        kind: str = "hash",
        boundaries=(),
    ) -> None:
        """Declare a table sharded on ``key`` into ``num_shards`` shards.

        The shards themselves materialize lazily on first
        :meth:`sharding` access (so loading a persisted database stays
        cheap). Re-sharding replaces the spec and bumps the shard
        epoch, staling every cached routing decision.
        """
        table = self.get_table(name)
        stored_key = table.resolve_name(key)
        from repro.distributed.shards import ShardingSpec

        spec = ShardingSpec(
            key=stored_key,
            num_shards=num_shards,
            kind=kind,
            boundaries=tuple(boundaries),
        )
        table_key = name.lower()
        with self._stats_lock:
            self._shard_specs[table_key] = spec
            self._sharded.pop(table_key, None)
            self._epoch_counter += 1
            self._shard_epochs[table_key] = self._epoch_counter
        self._log(
            "shard_table", name, f"{kind} on {stored_key} x{num_shards}"
        )

    def unshard_table(self, name: str) -> None:
        """Drop a table's sharding (the table itself is untouched)."""
        key = name.lower()
        with self._stats_lock:
            if key not in self._shard_specs:
                return
            del self._shard_specs[key]
            self._sharded.pop(key, None)
            self._epoch_counter += 1
            self._shard_epochs[key] = self._epoch_counter
        self._log("unshard_table", name)

    def is_sharded(self, name: str) -> bool:
        with self._stats_lock:
            return name.lower() in self._shard_specs

    def sharding_spec(self, name: str):
        """The table's :class:`ShardingSpec`, or ``None``."""
        with self._stats_lock:
            return self._shard_specs.get(name.lower())

    def shard_epoch(self, name: str) -> int:
        """Epoch of the last shard-layout or sharded-data change (0 =
        never sharded)."""
        with self._stats_lock:
            return self._shard_epochs.get(name.lower(), 0)

    def sharding(self, name: str):
        """The table's :class:`ShardedTable`, built lazily, or ``None``.

        Uses the same snapshot-and-compare as :meth:`table_statistics`:
        the O(rows) split runs outside the lock, and the result is
        installed only if no write raced it.
        """
        key = name.lower()
        with self._stats_lock:
            spec = self._shard_specs.get(key)
            if spec is None:
                return None
            cached = self._sharded.get(key)
            epoch_before = self._shard_epochs.get(key, 0)
        if cached is not None:
            return cached
        from repro.distributed.shards import ShardedTable

        built = ShardedTable.build(
            key, self.get_table(name), spec, epoch=epoch_before
        )
        with self._stats_lock:
            if self._shard_epochs.get(key, 0) == epoch_before:
                return self._sharded.setdefault(key, built)
        return built

    # -- estimate feedback (q-error) ------------------------------------------

    def record_q_error(self, name: str, q: float) -> None:
        """Fold one measured estimate-vs-actual q-error for ``name``.

        EXPLAIN ANALYZE calls this with the worst q-error among the
        operators anchored to the table; adaptive re-costing (ROADMAP
        item 4) will read the summary to decide when histogram
        estimates have drifted enough to distrust.
        """
        value = max(float(q), 1.0)
        key = name.lower()
        with self._stats_lock:
            entry = self._q_errors.get(key)
            if entry is None:
                entry = self._q_errors[key] = {
                    "count": 0, "max": 1.0, "sum_log": 0.0, "last": 1.0,
                }
            entry["count"] += 1
            entry["last"] = value
            entry["max"] = max(entry["max"], value)
            entry["sum_log"] += math.log(value)

    def q_error_summary(self, name: str) -> dict | None:
        """``{count, last, max, geo_mean}`` of recorded q-errors, or
        ``None`` when the table has never been ANALYZE-executed (or was
        ANALYZE-d since — fresh statistics restart the series)."""
        with self._stats_lock:
            entry = self._q_errors.get(name.lower())
            if entry is None:
                return None
            return {
                "count": entry["count"],
                "last": entry["last"],
                "max": entry["max"],
                "geo_mean": math.exp(entry["sum_log"] / entry["count"]),
            }

    def q_error_tables(self) -> list[str]:
        """Tables with a live q-error series — the workload watchdog's
        polling set."""
        with self._stats_lock:
            return sorted(self._q_errors)

    # -- backend cost calibration ---------------------------------------------

    def record_backend_costs(self, profiles: dict) -> None:
        """Persist calibrated per-backend costs ``{backend: [setup, row_scale]}``.

        Written once by the lazy calibration micro-bench
        (:mod:`repro.tensor.backends.calibrate`); the optimizer's cost
        model reads them back through :meth:`backend_costs` so backend
        selection reflects this machine rather than shipped defaults.
        """
        with self._stats_lock:
            self._backend_costs = {
                str(name): [float(pair[0]), float(pair[1])]
                for name, pair in profiles.items()
            }
        self._log("record_backend_costs", ",".join(sorted(profiles)))

    def backend_costs(self) -> dict | None:
        """Calibrated ``{backend: [setup, row_scale]}``, or ``None`` when
        no calibration has been recorded yet."""
        with self._stats_lock:
            if not self._backend_costs:
                return None
            return {k: list(v) for k, v in self._backend_costs.items()}

    def _invalidate_shards(self, key: str) -> None:
        """A data change under a sharded table: rebuild lazily, re-epoch."""
        with self._stats_lock:
            if key not in self._shard_specs:
                return
            self._sharded.pop(key, None)
            self._epoch_counter += 1
            self._shard_epochs[key] = self._epoch_counter

    # -- statistics -----------------------------------------------------------

    def table_statistics(self, name: str) -> TableStatistics:
        """Statistics for a table, collected on first use after a write."""
        key = name.lower()
        with self._stats_lock:
            cached = self._stats.get(key)
            epoch_before = self._stats_epochs.get(key, 0)
        if cached is not None:
            return cached
        # Collect outside the lock (an O(rows) pass must not stall
        # writers), then install only if no write raced the collection
        # — otherwise these stats describe a replaced table and would
        # be cached under the new epoch.
        stats = collect_statistics(self.get_table(name))
        with self._stats_lock:
            if self._stats_epochs.get(key, 0) == epoch_before:
                return self._stats.setdefault(key, stats)
        return stats

    def analyze_table(self, name: str) -> TableStatistics:
        """``ANALYZE <table>``: force recollection and bump the epoch.

        Uses the same snapshot-and-compare as :meth:`table_statistics`:
        if a large write lands mid-collection (epoch moved), the pass
        is retried so stale statistics are never installed under a
        fresh epoch.
        """
        key = name.lower()
        for attempt in range(3):
            with self._stats_lock:
                epoch_before = self._stats_epochs.get(key, 0)
            stats = collect_statistics(self.get_table(name))
            with self._stats_lock:
                # Install atomically with the no-race check. After
                # repeated races the latest collection still wins — it
                # is at most one write behind, and that write bumped
                # the epoch, so dependent plans replan regardless.
                if (
                    self._stats_epochs.get(key, 0) == epoch_before
                    or attempt == 2
                ):
                    self._stats[key] = stats
                    self._epoch_counter += 1
                    epoch = self._stats_epochs[key] = self._epoch_counter
                    # ANALYZE refreshes every column: full bump.
                    self._full_epochs[key] = self._epoch_counter
                    self._column_epochs.pop(key, None)
                    # Recorded q-errors measured the *old* estimates;
                    # the drift series restarts under fresh statistics
                    # (otherwise the watchdog would keep re-triggering
                    # on evidence ANALYZE already consumed).
                    self._q_errors.pop(key, None)
                    break
        self._log("analyze", name, f"epoch {epoch}")
        return stats

    def stats_epoch(self, name: str) -> int:
        """The table's current statistics epoch (0 before first write)."""
        with self._stats_lock:
            return self._stats_epochs.get(name.lower(), 0)

    def column_stats_epoch(self, name: str, column: str) -> int:
        """Epoch of the last statistics change affecting ``column``.

        Whole-table events (registration, ANALYZE, row-count drift,
        rollback) move every column; a write that only drifts specific
        columns moves theirs alone. Plans that record the epochs of
        exactly the columns they read stay hot while untouched columns
        churn (the ROADMAP's "stats-epoch granularity" item).
        """
        key = name.lower()
        with self._stats_lock:
            full = self._full_epochs.get(key, self._stats_epochs.get(key, 0))
            override = self._column_epochs.get(key, {}).get(column.lower(), 0)
            return max(full, override)

    def set_table_statistics(self, name: str, stats: TableStatistics) -> None:
        """Install externally persisted statistics (database load path)."""
        key = name.lower()
        with self._stats_lock:
            self._stats[key] = stats
            # Anchor the column-epoch baseline so later per-column
            # drift bumps are measured against this install, not
            # against whatever epoch the table reaches afterwards.
            self._full_epochs.setdefault(key, self._stats_epochs.get(key, 0))

    def _invalidate_stats(self, key: str) -> None:
        """Whole-table bump: every column's epoch moves."""
        with self._stats_lock:
            self._stats.pop(key, None)
            self._epoch_counter += 1
            self._stats_epochs[key] = self._epoch_counter
            self._full_epochs[key] = self._epoch_counter
            self._column_epochs.pop(key, None)

    def _invalidate_stats_columns(self, key: str, columns: set[str]) -> None:
        """Partial bump: only the drifted columns' epochs move.

        The cached table statistics are still dropped (they describe
        the old values of those columns); the table-level epoch moves
        too, preserving PR 2 semantics for table-granular consumers.
        """
        with self._stats_lock:
            self._stats.pop(key, None)
            # Seed the whole-table baseline from the *pre-bump* epoch
            # if it was never recorded (statistics installed externally
            # via set_table_statistics / load_database): otherwise the
            # column_stats_epoch fallback would read the bumped table
            # epoch for every column, silently degrading column-granular
            # invalidation to table-granular.
            self._full_epochs.setdefault(key, self._stats_epochs.get(key, 0))
            self._epoch_counter += 1
            self._stats_epochs[key] = self._epoch_counter
            overrides = self._column_epochs.setdefault(key, {})
            for column in columns:
                overrides[column.lower()] = self._epoch_counter

    def _drop_epochs(self, key: str) -> None:
        with self._stats_lock:
            self._stats.pop(key, None)
            self._stats_epochs.pop(key, None)
            self._column_epochs.pop(key, None)
            self._full_epochs.pop(key, None)
            self._q_errors.pop(key, None)

    def _stats_drifted_columns(self, key: str, table: Table):
        """Which columns a write moved enough to stale cached plans.

        Returns :data:`ALL_COLUMNS` for whole-table drift (row count
        moved, or no cached stats to compare against), a set of column
        names for per-column drift, or an empty set when the write is
        within tolerance. Checks the row count and, because an UPDATE
        can rewrite every value without changing it, the min/max of
        each numeric column against the cached statistics (a cheap
        vectorized pass — writes already copy whole columns). Value
        shuffles within the old range keep the stats: range- and
        NDV-based estimates stay approximately valid.
        """
        stats = self._stats.get(key)
        if stats is None:
            # No cached stats to compare against: bump. This also
            # closes a race — a lazy collection snapshotting the old
            # table must see the epoch move so its snapshot-and-compare
            # rejects installing stale statistics for the new contents.
            return ALL_COLUMNS
        baseline = max(stats.row_count, 1)
        if (
            abs(table.num_rows - stats.row_count) / baseline
            > STATS_DRIFT_THRESHOLD
        ):
            return ALL_COLUMNS
        drifted: set[str] = set()
        for column in table.schema:
            cached = stats.column(column.name)
            if cached is None or cached.min_value is None:
                continue
            values = table.column(column.name)
            if len(values) == 0:
                continue
            kind = values.dtype.kind
            if kind in ("f", "i", "u", "b"):
                if not isinstance(cached.min_value, (int, float)):
                    drifted.add(column.name)  # type changed under stats
                    continue
                if kind == "f":
                    present = values[~np.isnan(values)]
                    if len(present) == 0:
                        drifted.add(column.name)  # all values now NaN
                        continue
                    new_min = float(present.min())
                    new_max = float(present.max())
                else:
                    new_min, new_max = float(values.min()), float(values.max())
            elif kind in ("U", "S"):
                if not isinstance(cached.min_value, str):
                    drifted.add(column.name)  # type changed under stats
                    continue
                # Strings have no distance metric: any change to the
                # lexicographic bounds counts as drift. Vectorized O(n)
                # checks — expansion past a bound, or a bound value
                # disappearing (shrink) — avoid sorting the column.
                if (values < cached.min_value).any() or (
                    values > cached.max_value
                ).any():
                    drifted.add(column.name)
                    continue
                if not (values == cached.min_value).any() or not (
                    values == cached.max_value
                ).any():
                    drifted.add(column.name)
                continue
            else:
                continue
            cached_min = float(cached.min_value)
            cached_max = float(cached.max_value)
            if not (math.isfinite(cached_min) and math.isfinite(cached_max)):
                # Infinite span swallows every shift ratio; with an
                # inf sentinel in the bounds, any bound change counts.
                if new_min != cached_min or new_max != cached_max:
                    drifted.add(column.name)
                continue
            span = max(cached_max - cached_min, 1e-12)
            low_shift = abs(new_min - cached_min)
            high_shift = abs(new_max - cached_max)
            if max(low_shift, high_shift) / span > STATS_DRIFT_THRESHOLD:
                drifted.add(column.name)
        return drifted

    # -- models ---------------------------------------------------------------

    def has_model(self, name: str) -> bool:
        return name.lower() in self._models

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def store_model(
        self,
        name: str,
        payload: object,
        flavor: str,
        metadata: dict | None = None,
    ) -> ModelEntry:
        """Store a new version of a model; returns the created entry."""
        key = name.lower()
        versions = self._models.setdefault(key, [])
        entry = ModelEntry(
            name=name,
            version=len(versions) + 1,
            payload=payload,
            flavor=flavor,
            created_at=time.time(),
            metadata=dict(metadata or {}),
        )
        versions.append(entry)
        self._log("store_model", name, f"v{entry.version} flavor={flavor}")
        self._notify_model("store_model", name)
        return entry

    def get_model(self, name: str, version: int | None = None) -> ModelEntry:
        """Fetch a model by name, defaulting to the latest version.

        Accepts ``name``, ``name:v3``, or an explicit ``version``.
        """
        if version is None and ":v" in name:
            name, _, suffix = name.rpartition(":v")
            version = int(suffix)
        versions = self._models.get(name.lower())
        if not versions:
            raise CatalogError(f"unknown model {name!r}")
        if version is None:
            return versions[-1]
        for entry in versions:
            if entry.version == version:
                return entry
        raise CatalogError(f"model {name!r} has no version {version}")

    def model_versions(self, name: str) -> list[ModelEntry]:
        versions = self._models.get(name.lower())
        if not versions:
            raise CatalogError(f"unknown model {name!r}")
        return list(versions)

    def drop_model(self, name: str) -> None:
        key = name.lower()
        if key not in self._models:
            raise CatalogError(f"unknown model {name!r}")
        del self._models[key]
        self._log("drop_model", name)
        self._notify_model("drop_model", name)

    # -- audit ---------------------------------------------------------------

    def audit_log(self, actions: Iterable[str] | None = None) -> list[AuditRecord]:
        """The audit trail, optionally filtered to specific actions."""
        if actions is None:
            return list(self._audit)
        wanted = set(actions)
        return [record for record in self._audit if record.action in wanted]

    def _log(self, action: str, object_name: str, detail: str = "") -> None:
        self._audit.append(
            AuditRecord(time.time(), action, object_name, detail)
        )

    # -- snapshot support for transactions ------------------------------------

    def snapshot_table(self, name: str) -> Table | None:
        return self._tables.get(name.lower())

    def restore_table(self, name: str, table: Table | None) -> None:
        key = name.lower()
        if table is None:
            self._tables.pop(key, None)
            self._drop_epochs(key)
            with self._stats_lock:
                self._shard_specs.pop(key, None)
                self._sharded.pop(key, None)
                self._shard_epochs.pop(key, None)
        else:
            self._tables[key] = table
            # A rollback can revert arbitrary churn; always re-epoch.
            self._invalidate_stats(key)
            self._invalidate_shards(key)
        self._log("restore_table", name, "rollback")

    def snapshot_model_versions(self, name: str) -> list[ModelEntry] | None:
        versions = self._models.get(name.lower())
        return list(versions) if versions is not None else None

    def restore_model_versions(
        self, name: str, versions: list[ModelEntry] | None
    ) -> None:
        key = name.lower()
        if versions is None:
            self._models.pop(key, None)
        else:
            self._models[key] = list(versions)
        self._log("restore_model", name, "rollback")
        self._notify_model("restore_model", name)


def _auto_partition(table: Table) -> Table:
    """Partition large unpartitioned tables on registration."""
    if (
        table.partition_size is None
        and table.num_rows >= AUTO_PARTITION_MIN_ROWS
    ):
        return table.with_partitioning(DEFAULT_PARTITION_SIZE)
    return table
