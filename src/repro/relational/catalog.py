"""System catalog: tables, models, versions, and an audit log.

The paper's motivation for in-DB inference is that the RDBMS extends its
enterprise guarantees — transactions, versioning, auditing — to models.
This catalog delivers scaled-down but real versions of those guarantees:

* models are first-class catalog objects with monotonically increasing
  versions,
* every mutation is recorded in an append-only audit log,
* mutations go through an undo log so transactions can roll them back
  (:mod:`repro.relational.transactions`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import CatalogError
from repro.relational.table import Table
from repro.relational.types import Schema


@dataclass(frozen=True)
class ModelEntry:
    """One version of a stored model pipeline.

    ``payload`` is the model object itself (an ``repro.ml`` pipeline, a
    tensor graph, or a raw Python script for the static analyzer) —
    the catalog treats it as an opaque varbinary, as SQL Server does.
    """

    name: str
    version: int
    payload: object
    flavor: str  # "ml.pipeline" | "tensor.graph" | "python.script" | ...
    created_at: float
    metadata: dict = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.name}:v{self.version}"


@dataclass(frozen=True)
class AuditRecord:
    """One entry in the append-only audit log."""

    timestamp: float
    action: str  # create_table/drop_table/insert/delete/update/store_model/...
    object_name: str
    detail: str = ""


class Catalog:
    """In-memory catalog of tables and models with auditing."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._models: dict[str, list[ModelEntry]] = {}
        self._audit: list[AuditRecord] = []
        self._model_observers: list[Callable[[str, str], None]] = []

    # -- model-change observers ----------------------------------------------

    def add_model_observer(self, fn: Callable[[str, str], None]) -> None:
        """Register ``fn(event, model_name)`` for model mutations.

        Events: ``"store_model"``, ``"restore_model"``, ``"drop_model"``.
        Caches keyed on model versions (session caches, plan caches,
        prediction caches) subscribe here so every mutation path — including
        transaction rollback — invalidates them.
        """
        self._model_observers.append(fn)

    def remove_model_observer(self, fn: Callable[[str, str], None]) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self._model_observers.remove(fn)
        except ValueError:
            pass

    def _notify_model(self, event: str, name: str) -> None:
        for fn in list(self._model_observers):
            fn(event, name)

    # -- tables ---------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_schema(self, name: str) -> Schema:
        return self.get_table(name).schema

    def create_table(self, name: str, table: Table, replace: bool = False) -> None:
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[key] = table
        self._log("create_table", name, f"{table.num_rows} rows")

    def set_table(self, name: str, table: Table) -> None:
        """Replace table contents (INSERT/DELETE/UPDATE go through here)."""
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._tables[key] = table
        self._log("set_table", name, f"{table.num_rows} rows")

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        self._log("drop_table", name)

    # -- models ---------------------------------------------------------------

    def has_model(self, name: str) -> bool:
        return name.lower() in self._models

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def store_model(
        self,
        name: str,
        payload: object,
        flavor: str,
        metadata: dict | None = None,
    ) -> ModelEntry:
        """Store a new version of a model; returns the created entry."""
        key = name.lower()
        versions = self._models.setdefault(key, [])
        entry = ModelEntry(
            name=name,
            version=len(versions) + 1,
            payload=payload,
            flavor=flavor,
            created_at=time.time(),
            metadata=dict(metadata or {}),
        )
        versions.append(entry)
        self._log("store_model", name, f"v{entry.version} flavor={flavor}")
        self._notify_model("store_model", name)
        return entry

    def get_model(self, name: str, version: int | None = None) -> ModelEntry:
        """Fetch a model by name, defaulting to the latest version.

        Accepts ``name``, ``name:v3``, or an explicit ``version``.
        """
        if version is None and ":v" in name:
            name, _, suffix = name.rpartition(":v")
            version = int(suffix)
        versions = self._models.get(name.lower())
        if not versions:
            raise CatalogError(f"unknown model {name!r}")
        if version is None:
            return versions[-1]
        for entry in versions:
            if entry.version == version:
                return entry
        raise CatalogError(f"model {name!r} has no version {version}")

    def model_versions(self, name: str) -> list[ModelEntry]:
        versions = self._models.get(name.lower())
        if not versions:
            raise CatalogError(f"unknown model {name!r}")
        return list(versions)

    def drop_model(self, name: str) -> None:
        key = name.lower()
        if key not in self._models:
            raise CatalogError(f"unknown model {name!r}")
        del self._models[key]
        self._log("drop_model", name)
        self._notify_model("drop_model", name)

    # -- audit ---------------------------------------------------------------

    def audit_log(self, actions: Iterable[str] | None = None) -> list[AuditRecord]:
        """The audit trail, optionally filtered to specific actions."""
        if actions is None:
            return list(self._audit)
        wanted = set(actions)
        return [record for record in self._audit if record.action in wanted]

    def _log(self, action: str, object_name: str, detail: str = "") -> None:
        self._audit.append(
            AuditRecord(time.time(), action, object_name, detail)
        )

    # -- snapshot support for transactions ------------------------------------

    def snapshot_table(self, name: str) -> Table | None:
        return self._tables.get(name.lower())

    def restore_table(self, name: str, table: Table | None) -> None:
        key = name.lower()
        if table is None:
            self._tables.pop(key, None)
        else:
            self._tables[key] = table
        self._log("restore_table", name, "rollback")

    def snapshot_model_versions(self, name: str) -> list[ModelEntry] | None:
        versions = self._models.get(name.lower())
        return list(versions) if versions is not None else None

    def restore_model_versions(
        self, name: str, versions: list[ModelEntry] | None
    ) -> None:
        key = name.lower()
        if versions is None:
            self._models.pop(key, None)
        else:
            self._models[key] = list(versions)
        self._log("restore_model", name, "rollback")
        self._notify_model("restore_model", name)
