"""Columnar in-memory tables backed by NumPy arrays.

A :class:`Table` is the unit of data exchanged by every physical operator in
the engine and by the Raven runtime when it hands batches to the tensor
runtime. All operations are vectorized and copy-on-write: methods return new
``Table`` objects sharing column arrays where possible.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.types import Column, DataType, Schema


class Table:
    """An immutable, columnar table.

    Parameters
    ----------
    schema:
        Column names and logical types.
    columns:
        Mapping from column name to a 1-D NumPy array. All arrays must have
        equal length; dtypes are coerced to the schema's storage dtypes.
    partition_size:
        Optional fixed row-chunk size. A partitioned table carries lazy
        per-partition zone maps (column min/max) that the executor uses
        to skip chunks a predicate cannot match, and that morsel-parallel
        scan+PREDICT pipelines use as work units. Derived tables (filter,
        take, ...) do not inherit partitioning — only base tables are
        partitioned, by the catalog or by :meth:`with_partitioning`.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        partition_size: int | None = None,
    ):
        if partition_size is not None and partition_size < 1:
            raise SchemaError(
                f"partition_size must be >= 1, got {partition_size}"
            )
        self._partition_size = partition_size
        # Explicit row-range partitioning (set by with_partition_bounds):
        # used by exchange operators whose buckets are variable-sized.
        self._explicit_bounds: list[tuple[int, int]] | None = None
        self._zone_maps: dict[str, tuple[np.ndarray, np.ndarray] | None] = {}
        self._schema = schema
        data: dict[str, np.ndarray] = {}
        num_rows: int | None = None
        for col in schema:
            if col.name not in columns:
                raise SchemaError(f"missing data for column {col.name!r}")
            arr = np.asarray(columns[col.name])
            if arr.ndim != 1:
                raise SchemaError(
                    f"column {col.name!r} must be 1-D, got shape {arr.shape}"
                )
            if arr.dtype != col.dtype.numpy_dtype:
                arr = arr.astype(col.dtype.numpy_dtype)
            if num_rows is None:
                num_rows = len(arr)
            elif len(arr) != num_rows:
                raise SchemaError(
                    f"column {col.name!r} has {len(arr)} rows, expected {num_rows}"
                )
            data[col.name] = arr
        self._columns = data
        self._num_rows = num_rows or 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dict(cls, columns: Mapping[str, Sequence | np.ndarray]) -> "Table":
        """Infer a schema from arrays/lists and build a table."""
        arrays = {name: np.asarray(values) for name, values in columns.items()}
        schema = Schema(
            tuple(
                Column(name, DataType.from_numpy(arr.dtype))
                for name, arr in arrays.items()
            )
        )
        return cls(schema, arrays)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        columns = {}
        for i, col in enumerate(schema):
            values = [row[i] for row in rows]
            columns[col.name] = np.array(values, dtype=col.dtype.numpy_dtype)
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        columns = {
            col.name: np.empty(0, dtype=col.dtype.numpy_dtype) for col in schema
        }
        return cls(schema, columns)

    # -- basic accessors -----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> np.ndarray:
        """The storage array of a column.

        Resolution order: exact name; case-insensitive name; unique
        suffix match (``age`` finds ``pi.age``); unqualified fallback
        (``d.age`` finds ``age``). This mirrors SQL scoping after joins
        without the binder having to rewrite every expression.
        """
        if name in self._columns:
            return self._columns[name]
        return self._columns[self.resolve_name(name)]

    def resolve_name(self, name: str) -> str:
        """Resolve ``name`` to the stored column name (see :meth:`column`)."""
        lowered = name.lower()
        for stored in self._columns:
            if stored.lower() == lowered:
                return stored
        suffix_matches = [
            stored
            for stored in self._columns
            if stored.lower().endswith("." + lowered)
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        if len(suffix_matches) > 1:
            raise SchemaError(
                f"ambiguous column {name!r}: matches {suffix_matches}"
            )
        if "." in name:
            short = lowered.split(".")[-1]
            for stored in self._columns:
                if stored.lower() == short:
                    return stored
        raise SchemaError(f"no column named {name!r} in {self._schema.names}")

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # -- partitioning --------------------------------------------------------

    @property
    def partition_size(self) -> int | None:
        """Row-chunk size, or ``None`` for an unpartitioned table."""
        return self._partition_size

    @property
    def num_partitions(self) -> int:
        if self._explicit_bounds is not None:
            return max(1, len(self._explicit_bounds))
        if not self._partition_size or self._num_rows == 0:
            return 1
        return -(-self._num_rows // self._partition_size)

    @property
    def has_explicit_partitions(self) -> bool:
        """True when partitioning came from an exchange's bucket bounds."""
        return self._explicit_bounds is not None

    def with_partitioning(self, partition_size: int | None) -> "Table":
        """The same data as a (re)partitioned table (arrays are shared)."""
        if partition_size == self._partition_size:
            return self
        return Table(self._schema, self._columns, partition_size)

    def with_partition_bounds(
        self, bounds: Sequence[tuple[int, int]]
    ) -> "Table":
        """The same data under explicit ``[start, stop)`` partition bounds.

        Exchange operators (``Repartition``) produce variable-sized,
        key-disjoint buckets that fixed-size partitioning cannot
        express. Bounds must be ascending and contiguous over all rows.
        """
        bounds = [(int(start), int(stop)) for start, stop in bounds]
        expected = 0
        for start, stop in bounds:
            if start != expected or stop < start:
                raise SchemaError(
                    f"partition bounds must be contiguous; got {bounds}"
                )
            expected = stop
        if expected != self._num_rows:
            raise SchemaError(
                f"partition bounds cover {expected} rows, table has "
                f"{self._num_rows}"
            )
        table = Table(self._schema, self._columns)
        table._explicit_bounds = bounds
        return table

    def partition_bounds(self) -> list[tuple[int, int]]:
        """``[start, stop)`` row ranges, one per partition."""
        if self._explicit_bounds is not None:
            return list(self._explicit_bounds)
        if not self._partition_size:
            return [(0, self._num_rows)]
        size = self._partition_size
        return [
            (start, min(start + size, self._num_rows))
            for start in range(0, max(self._num_rows, 1), size)
        ]

    def partition(self, index: int) -> "Table":
        """One partition as an (unpartitioned) table slice."""
        bounds = self.partition_bounds()
        start, stop = bounds[index]
        return self.slice(start, stop)

    def zone_map(self, name: str) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-partition ``(mins, maxs)`` for a column (lazily cached).

        ``None`` for columns without an ordering (opaque payloads) or
        when the name does not resolve. NaN rows are excluded: a
        comparison predicate can never select them, so a partition's
        zone reflects only its non-NaN values (all-NaN partitions get
        an empty ``[+inf, -inf]`` zone and are always prunable).
        Infinities are real, orderable values — ``x > 100`` matches
        ``+inf`` — so they stay in the zone.
        """
        if self._num_rows == 0:
            return None
        try:
            stored = self.resolve_name(name)
        except SchemaError:
            return None
        if stored in self._zone_maps:
            return self._zone_maps[stored]
        values = self._columns[stored]
        if values.dtype.kind not in ("b", "i", "u", "f", "U", "S"):
            self._zone_maps[stored] = None
            return None
        bounds = self.partition_bounds()
        if values.dtype.kind == "f":
            mins = np.full(len(bounds), np.inf)
            maxs = np.full(len(bounds), -np.inf)
            for i, (start, stop) in enumerate(bounds):
                chunk = values[start:stop]
                present = chunk[~np.isnan(chunk)]
                if len(present):
                    mins[i] = present.min()
                    maxs[i] = present.max()
        elif values.dtype.kind in ("U", "S"):
            # The min/max ufuncs lack unicode loops; sort each chunk.
            sorted_chunks = [np.sort(values[s:e]) for s, e in bounds]
            mins = np.array([c[0] if len(c) else "" for c in sorted_chunks])
            maxs = np.array([c[-1] if len(c) else "" for c in sorted_chunks])
        else:
            mins = np.array([values[s:e].min() for s, e in bounds])
            maxs = np.array([values[s:e].max() for s, e in bounds])
        zone = (mins, maxs)
        self._zone_maps[stored] = zone
        return zone

    def rows(self) -> Iterator[tuple]:
        """Iterate rows as tuples (slow path, for tests and display)."""
        arrays = [self._columns[c.name] for c in self._schema]
        for i in range(self._num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_dict(self) -> dict[str, np.ndarray]:
        """A shallow copy of the column mapping."""
        return dict(self._columns)

    # -- relational kernels --------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices`` (gather)."""
        return Table(
            self._schema,
            {name: arr[indices] for name, arr in self._columns.items()},
        )

    def filter(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean ``mask`` is true."""
        if mask.dtype != np.bool_:
            mask = mask.astype(np.bool_)
        return Table(
            self._schema,
            {name: arr[mask] for name, arr in self._columns.items()},
        )

    def select(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order."""
        schema = self._schema.select(names)
        return Table(schema, {c.name: self.column(c.name) for c in schema})

    def drop(self, names: Sequence[str]) -> "Table":
        """Remove the named columns."""
        schema = self._schema.drop(names)
        return Table(schema, {c.name: self._columns[c.name] for c in schema})

    def rename(self, mapping: dict[str, str]) -> "Table":
        """Rename columns per ``mapping``."""
        schema = self._schema.rename(mapping)
        lowered = {k.lower(): v for k, v in mapping.items()}
        columns = {}
        for col in self._schema:
            new_name = lowered.get(col.name.lower(), col.name)
            columns[new_name] = self._columns[col.name]
        return Table(schema, columns)

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        """Add (or replace) a column."""
        values = np.asarray(values)
        dtype = DataType.from_numpy(values.dtype)
        if name in self._schema:
            schema = Schema(
                tuple(
                    Column(c.name, dtype) if c.name.lower() == name.lower() else c
                    for c in self._schema
                )
            )
            columns = dict(self._columns)
            columns[self._schema.column(name).name] = values
            return Table(schema, columns)
        schema = Schema(self._schema.columns + (Column(name, dtype),))
        columns = dict(self._columns)
        columns[name] = values
        return Table(schema, columns)

    def prefixed(self, prefix: str) -> "Table":
        """Prefix every column name with ``prefix.`` (for join scoping)."""
        schema = self._schema.prefixed(prefix)
        columns = {
            f"{prefix}.{name}": arr for name, arr in self._columns.items()
        }
        return Table(schema, columns)

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)`` — used for chunked parallel execution."""
        return Table(
            self._schema,
            {name: arr[start:stop] for name, arr in self._columns.items()},
        )

    def head(self, n: int) -> "Table":
        return self.slice(0, min(n, self._num_rows))

    @staticmethod
    def concat_rows(tables: Sequence["Table"]) -> "Table":
        """Stack tables with identical schemas vertically (UNION ALL)."""
        if not tables:
            raise SchemaError("concat_rows requires at least one table")
        first = tables[0]
        for other in tables[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError(
                    f"schema mismatch in concat: {other.schema.names} "
                    f"vs {first.schema.names}"
                )
        columns = {
            col.name: np.concatenate([t.column(col.name) for t in tables])
            for col in first.schema
        }
        return Table(first.schema, columns)

    def concat_columns(self, other: "Table") -> "Table":
        """Glue two equal-length tables side by side (join output)."""
        if other.num_rows != self.num_rows:
            raise SchemaError(
                f"row count mismatch: {self.num_rows} vs {other.num_rows}"
            )
        schema = self._schema.concat(other.schema)
        columns = dict(self._columns)
        columns.update(other._columns)
        return Table(schema, columns)

    # -- ML bridge -----------------------------------------------------------

    def to_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into a ``(rows, features)`` float matrix.

        This is the batch hand-off format between the relational engine and
        the ML/tensor runtimes (the paper's "transform data to tensors").
        """
        names = list(names) if names is not None else list(self._schema.names)
        arrays = []
        for name in names:
            col = self._schema.column(name)
            if not col.dtype.is_numeric:
                raise SchemaError(
                    f"column {name!r} of type {col.dtype.value} is not numeric"
                )
            arrays.append(self.column(name).astype(np.float64))
        if not arrays:
            return np.empty((self._num_rows, 0), dtype=np.float64)
        return np.column_stack(arrays)

    # -- misc ----------------------------------------------------------------

    def equals(self, other: "Table") -> bool:
        """Exact equality of schema and data (used by tests)."""
        if self.schema.names != other.schema.names:
            return False
        if self.num_rows != other.num_rows:
            return False
        for name in self.schema.names:
            left, right = self.column(name), other.column(name)
            if left.dtype.kind == "f":
                if not np.allclose(left, right, equal_nan=True):
                    return False
            elif not np.array_equal(left, right):
                return False
        return True

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._num_rows})"

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width textual rendering for examples and debugging."""
        names = list(self._schema.names)
        shown = list(self.head(limit).rows())
        cells = [[str(v) for v in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(r[i]) for r in cells)) if cells else len(names[i])
            for i in range(len(names))
        ]
        def fmt(row: Sequence[str]) -> str:
            return " | ".join(v.ljust(w) for v, w in zip(row, widths))
        lines = [fmt(names), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(r) for r in cells)
        if self._num_rows > limit:
            lines.append(f"... ({self._num_rows} rows total)")
        return "\n".join(lines)
