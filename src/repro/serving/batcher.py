"""Adaptive micro-batching: coalesce tiny PREDICT requests into one call.

The paper's Fig. 3 shows per-invocation overhead dominating small-input
inference; a serving tier sees exactly that shape — thousands of
independent one-row requests. :class:`MicroBatcher` queues concurrent
requests and dispatches them as a single vectorized scoring call when
either ``max_batch_rows`` accumulate or the oldest request has waited
``max_wait_seconds`` (classic size-or-deadline coalescing). The combined
batch then flows through the executor's chunked thread-pool scoring path,
so intra-batch parallelism still applies to large coalesced batches.

The runner must be *row-preserving*: one output row per input row, in
order (true of the canonical ``SELECT ..., p.pred FROM PREDICT(...)``
serving query with no WHERE/ORDER/aggregate). The batcher verifies the
row count and fails the whole batch loudly otherwise.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.concurrency import default_max_workers
from repro.observability import events
from repro.errors import (
    ExecutionError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.relational.table import Table
from repro.serving.stats import ServingStats


@dataclass
class _Request:
    table: Table
    future: Future
    enqueued_at: float
    rows: int = field(init=False)

    def __post_init__(self):
        self.rows = self.table.num_rows


class MicroBatcher:
    """Coalesces concurrent small requests against one scoring callable."""

    def __init__(
        self,
        runner: Callable[[Table], Table],
        max_batch_rows: int = 64,
        max_wait_seconds: float = 0.002,
        max_pending_requests: int | None = None,
        stats: ServingStats | None = None,
        clock: Callable[[], float] = time.monotonic,
        dispatch_workers: int | None = None,
    ):
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1")
        self._runner = runner
        self.max_batch_rows = max_batch_rows
        self.max_wait_seconds = max_wait_seconds
        self.max_pending_requests = max_pending_requests
        self._stats = stats
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: deque[_Request] = deque()
        self._flush_requested = False
        self._closed = False
        # Batches dispatch onto a small pool (sized with the same
        # helper as the executor's scoring pool) so the next batch can
        # coalesce while the previous one is still scoring, instead of
        # serializing coalescing behind scoring. The semaphore caps
        # in-flight batches at the pool width: when every dispatch slot
        # is busy, the coalescing loop blocks, the pending deque fills,
        # and ``max_pending_requests`` overload rejection fires exactly
        # as it did with inline scoring.
        if dispatch_workers is None:
            dispatch_workers = max(1, default_max_workers(cap=4) // 2)
        dispatch_workers = max(1, dispatch_workers)
        self._dispatch_slots = threading.Semaphore(dispatch_workers)
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=dispatch_workers,
            thread_name_prefix="raven-microbatch-dispatch",
        )
        self._thread = threading.Thread(
            target=self._loop, name="raven-microbatcher", daemon=True
        )
        self._thread.start()

    # -- client API --------------------------------------------------------

    def submit(self, table: Table) -> Future:
        """Enqueue one request; the future resolves to its result rows."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise ServerClosedError("micro-batcher is closed")
            if (
                self.max_pending_requests is not None
                and len(self._pending) >= self.max_pending_requests
            ):
                raise ServerOverloadedError(
                    f"micro-batch queue is full "
                    f"({self.max_pending_requests} requests)"
                )
            self._pending.append(_Request(table, future, self._clock()))
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        """Dispatch whatever is pending without waiting for the deadline."""
        with self._cond:
            if self._pending:  # an idle flush must not taint the next batch
                self._flush_requested = True
                self._cond.notify_all()

    def close(self) -> None:
        """Stop accepting requests; drain the queue, then join the worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        # The loop has dispatched every drained batch by now; wait for
        # in-flight scoring so no future is left unresolved.
        self._dispatch_pool.shutdown(wait=True)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker ------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending:
                    if self._closed:
                        return
                    self._cond.wait()
                deadline = self._pending[0].enqueued_at + self.max_wait_seconds
                while (
                    not self._closed
                    and not self._flush_requested
                    and self._pending_rows() < self.max_batch_rows
                ):
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
            # Wait for a dispatch slot *before* draining: requests keep
            # queueing (and rejecting on overload) while scoring is
            # saturated, instead of piling into the pool unboundedly.
            self._dispatch_slots.acquire()
            with self._cond:
                self._flush_requested = False
                batch = self._drain_batch()
            if batch:
                self._dispatch_pool.submit(self._run_dispatched, batch)
            else:
                self._dispatch_slots.release()

    def _run_dispatched(self, batch: list[_Request]) -> None:
        try:
            self._run_batch(batch)
        finally:
            self._dispatch_slots.release()

    def _pending_rows(self) -> int:
        return sum(request.rows for request in self._pending)

    def _drain_batch(self) -> list[_Request]:
        """Pop requests until the row budget is met (always at least one)."""
        batch: list[_Request] = []
        rows = 0
        while self._pending and (not batch or rows < self.max_batch_rows):
            request = self._pending.popleft()
            batch.append(request)
            rows += request.rows
        return batch

    def _run_batch(self, batch: list[_Request]) -> None:
        # Claim every future before scoring: client-cancelled requests
        # drop out of the batch here, and a claimed future can never
        # raise InvalidStateError on set_result/set_exception below
        # (which would kill this worker thread).
        batch = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        try:
            # Assembly failures (e.g. mismatched request schemas in
            # concat_rows) must fail the batch's futures like scoring
            # failures do — an exception escaping to the dispatch pool
            # would strand every client on a forever-pending future.
            combined = (
                batch[0].table
                if len(batch) == 1
                else Table.concat_rows([request.table for request in batch])
            )
            total_rows = combined.num_rows
            result = self._runner(combined)
            if result.num_rows != total_rows:
                raise ExecutionError(
                    f"micro-batched plan is not row-preserving: {total_rows} "
                    f"rows in, {result.num_rows} out; serve this query "
                    "unbatched"
                )
        except BaseException as exc:  # noqa: BLE001 — fail the whole batch
            failed_at = self._clock()
            for request in batch:
                request.future.set_exception(exc)
                if self._stats is not None:
                    self._stats.record_failed(failed_at - request.enqueued_at)
            return
        if self._stats is not None:
            self._stats.record_batch(total_rows)
        events.emit("serving.batch", size=total_rows, requests=len(batch))
        offset = 0
        finished = self._clock()
        for request in batch:
            request.future.set_result(result.slice(offset, offset + request.rows))
            offset += request.rows
            if self._stats is not None:
                self._stats.record_completed(finished - request.enqueued_at)
