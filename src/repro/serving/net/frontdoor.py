"""The asyncio HTTP front door over :class:`~repro.serving.server.RavenServer`.

``HttpFrontDoor`` is the network half of ROADMAP item 2: an HTTP/1.1
server (stdlib :mod:`asyncio` streams, no framework) that puts the
existing bounded-admission serving stack on a real wire. Routes:

* ``POST /query`` — ad-hoc SQL: ``{"sql", "params"?, "data"?}``.
* ``POST /prepared/{name-or-fingerprint}/execute`` — a query prepared
  on the server: ``{"params"?, "data"?}``.
* ``GET /stats`` — ``server.stats()`` plus the front door's own
  counters under ``"net"``.
* ``GET /metrics`` — Prometheus text exposition straight off the
  event-fed metrics registry (``server.enable_metrics()`` is turned on
  when the front door starts, so ``net.*`` events are folded in too).
* ``GET /healthz`` — liveness; ``503`` while the circuit breaker is
  shedding.

Resilience (the POST routes): per-client token-bucket backpressure
(``429 Retry-After``), idempotency-key replay (byte-identical, with
in-flight joining), per-request timeouts with cooperative cancellation
(a timed-out or disconnected client's *queued* work is cancelled, so
no worker slot is spent on a response nobody will read), and a circuit
breaker that sheds with ``503 Retry-After`` when the admission queue
saturates repeatedly. Every decision emits ``net.*`` events on the
process-wide bus, so the PR 6/9 observability stack (metrics,
watchdog, profiler) sees network traffic for free.

Lifecycle::

    with HttpFrontDoor(server, port=0) as door:   # own thread + loop
        requests.post(f"{door.url}/query", json={"sql": ...})

The front door owns one background thread running one event loop; all
resilience state is loop-confined, so none of it needs locks.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time

from repro.errors import (
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.observability import events
from repro.observability.export import render_prometheus
from repro.serving.net import http11
from repro.serving.net.codec import (
    parse_json_body,
    payload_to_tables,
    table_to_payload,
)
from repro.serving.net.http11 import (
    HttpError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
)
from repro.serving.net.resilience import (
    CircuitBreaker,
    IdempotencyCache,
    TokenBucketLimiter,
)


class _Disconnected(Exception):
    """The client hung up while its request was executing."""

    def __init__(self, cancelled_in_queue: bool):
        super().__init__("client disconnected")
        self.cancelled_in_queue = cancelled_in_queue


class _RequestTimeout(Exception):
    """The request exceeded the front door's per-request deadline."""

    def __init__(self, cancelled_in_queue: bool):
        super().__init__("request timed out")
        self.cancelled_in_queue = cancelled_in_queue


class HttpFrontDoor:
    """Serve a :class:`RavenServer` over HTTP with resilience middleware."""

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 1 << 20,
        max_connections: int = 256,
        max_connections_per_client: int = 64,
        request_timeout_seconds: float = 30.0,
        rate_limit_per_client: float | None = None,
        rate_limit_burst: float | None = None,
        idempotency_ttl_seconds: float = 60.0,
        idempotency_capacity: int = 1024,
        breaker_failure_threshold: int = 5,
        breaker_cooldown_seconds: float = 1.0,
        disconnect_poll_seconds: float = 0.025,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.max_connections = max_connections
        self.max_connections_per_client = max_connections_per_client
        self.request_timeout_seconds = request_timeout_seconds
        self.disconnect_poll_seconds = disconnect_poll_seconds
        self.limiter = TokenBucketLimiter(
            rate_limit_per_client, rate_limit_burst
        )
        self.idempotency = IdempotencyCache(
            idempotency_capacity, idempotency_ttl_seconds
        )
        self.breaker = CircuitBreaker(
            breaker_failure_threshold, breaker_cooldown_seconds
        )
        self._counters = {
            "connections_opened": 0,
            "connections_active": 0,
            "connections_rejected": 0,
            "requests": 0,
            "rejected_oversized": 0,
            "rejected_rate_limited": 0,
            "rejected_circuit_open": 0,
            "rejected_overload": 0,
            "timeouts": 0,
            "disconnects": 0,
            "cancelled_in_queue": 0,
            "idempotent_replays": 0,
        }
        self._per_client: dict[str, int] = {}
        self._writers: set = set()  # loop-confined open connections
        self._registry = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._closed = False
        self._state_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> tuple[str, int]:
        """Serve from a background thread; returns the bound address."""
        with self._state_lock:
            if self._closed:
                raise ServingError("front door has been closed")
            if self._thread is not None:
                return self.host, self.port
            ready = threading.Event()
            self._thread = threading.Thread(
                target=self._run_loop,
                args=(ready,),
                name="raven-net",
                daemon=True,
            )
            self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            with self._state_lock:
                self._thread = None
            raise error
        return self.host, self.port

    def close(self) -> None:
        """Stop accepting, drop open connections, and join the thread."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)

    def __enter__(self) -> "HttpFrontDoor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.start_async())
        except BaseException as exc:  # noqa: BLE001 — reported to start()
            self._startup_error = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()  # until close() stops it
            loop.run_until_complete(self.stop_async())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def start_async(self) -> None:
        """Bind and start serving on the *current* event loop."""
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=http11.MAX_LINE_BYTES,
        )
        bound = self._asyncio_server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        # /metrics serves this registry; enabling is idempotent, and it
        # also folds the net.* events this front door emits.
        self._registry = self.server.enable_metrics()

    async def stop_async(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Abort open connections so their handler tasks unwind through
        # the normal EOF path instead of being cancelled mid-await, then
        # give them a bounded grace period to finish; stragglers (e.g.
        # still polling a worker future) are cancelled by _run_loop.
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        deadline = asyncio.get_running_loop().time() + 0.5
        while self._writers and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "unknown"
        counters = self._counters
        if (
            counters["connections_active"] >= self.max_connections
            or self._per_client.get(client, 0)
            >= self.max_connections_per_client
        ):
            counters["connections_rejected"] += 1
            events.emit(
                "net.rejected",
                reason="connection_limit",
                route="",
                client=client,
                retry_after=1,
            )
            writer.write(
                error_response(
                    503, "connection limit reached", retry_after=1, close=True
                ).encode()
            )
            await self._close_writer(writer)
            return
        counters["connections_opened"] += 1
        counters["connections_active"] += 1
        self._per_client[client] = self._per_client.get(client, 0) + 1
        self._writers.add(writer)
        try:
            await self._connection_loop(reader, writer, client)
        finally:
            self._writers.discard(writer)
            counters["connections_active"] -= 1
            remaining = self._per_client.get(client, 1) - 1
            if remaining <= 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = remaining
            await self._close_writer(writer)

    async def _connection_loop(self, reader, writer, client: str) -> None:
        while True:
            try:
                request = await read_request(reader, self.max_body_bytes)
            except HttpError as exc:
                if exc.status == 413:
                    self._counters["rejected_oversized"] += 1
                    events.emit(
                        "net.rejected",
                        reason="oversized",
                        route="",
                        client=client,
                        retry_after=0,
                    )
                writer.write(exc.response().encode())
                await self._drain_quietly(writer)
                if exc.close:
                    return
                continue
            if request is None:
                return
            started = time.perf_counter()
            try:
                response = await self._dispatch(request, client, reader)
            except _Disconnected:
                return
            self._counters["requests"] += 1
            events.emit(
                "net.request",
                method=request.method,
                route=_route_label(request.path),
                status=response.status,
                latency_seconds=time.perf_counter() - started,
                client=client,
            )
            writer.write(response.encode())
            if not await self._drain_quietly(writer):
                return
            if response.close or not request.keep_alive:
                return

    async def _drain_quietly(self, writer) -> bool:
        try:
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            return False

    async def _close_writer(self, writer) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled this handler mid-close. The transport
            # is already closing (or aborted); finishing quietly lets
            # the connection task end clean instead of logging a spent
            # cancellation through the loop's exception handler.
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: Request, client: str, reader
    ) -> Response:
        method, path = request.method, request.path
        try:
            if path == "/healthz":
                if method != "GET":
                    return error_response(405, "use GET")
                return self._healthz()
            if path == "/stats":
                if method != "GET":
                    return error_response(405, "use GET")
                return json_response(self._stats_payload())
            if path == "/metrics":
                if method != "GET":
                    return error_response(405, "use GET")
                return self._metrics()
            if path == "/query":
                if method != "POST":
                    return error_response(405, "use POST")
                return await self._guarded(
                    request, client, reader, self._submit_query
                )
            parts = path.strip("/").split("/")
            if (
                len(parts) == 3
                and parts[0] == "prepared"
                and parts[2] == "execute"
            ):
                if method != "POST":
                    return error_response(405, "use POST")
                return await self._guarded(
                    request, client, reader, self._submit_prepared
                )
            return error_response(404, f"no route for {path!r}")
        except HttpError as exc:
            return exc.response()

    def _healthz(self) -> Response:
        state = self.breaker.state
        if state == CircuitBreaker.OPEN:
            return json_response(
                {"status": "shedding", "breaker": state},
                status=503,
                headers=(("Retry-After", "1"),),
            )
        return json_response({"status": "ok", "breaker": state})

    def _stats_payload(self) -> dict:
        snapshot = self.server.stats()
        snapshot["net"] = self.stats()
        return snapshot

    def _metrics(self) -> Response:
        snapshot = self._registry.snapshot() if self._registry else {}
        text = render_prometheus(snapshot)
        return Response(
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- resilience middleware ---------------------------------------------

    async def _guarded(
        self, request: Request, client: str, reader, submit
    ) -> Response:
        """Circuit breaker -> rate limit -> idempotency -> execute."""
        route = _route_label(request.path)
        allowed, retry_after = self.breaker.allow()
        if not allowed:
            self._counters["rejected_circuit_open"] += 1
            events.emit(
                "net.rejected",
                reason="circuit_open",
                route=route,
                client=client,
                retry_after=retry_after,
            )
            return error_response(
                503,
                "circuit breaker open: the admission queue is saturated",
                retry_after=math.ceil(retry_after),
            )
        wait = self.limiter.acquire(client)
        if wait > 0:
            self._counters["rejected_rate_limited"] += 1
            events.emit(
                "net.rejected",
                reason="rate_limited",
                route=route,
                client=client,
                retry_after=wait,
            )
            return error_response(
                429,
                f"client {client} exceeded its request rate",
                retry_after=math.ceil(wait),
            )
        idem_key = request.header("idempotency-key")
        if idem_key is None:
            return await self._execute(request, client, reader, submit)
        key = (route, idem_key)
        kind, value = self.idempotency.begin(key)
        if kind == "replay":
            self._counters["idempotent_replays"] += 1
            events.emit(
                "net.idempotent_replay", route=route, key=idem_key
            )
            return value
        if kind == "join":
            # The original request is still executing; share its result
            # instead of running the (possibly non-idempotent) work twice.
            try:
                shared = await asyncio.wait_for(
                    asyncio.shield(value), self.request_timeout_seconds
                )
            except asyncio.TimeoutError:
                self._counters["timeouts"] += 1
                return error_response(
                    504, "request timed out", retry_after=1
                )
            if shared is None:
                return error_response(
                    503, "original request was abandoned; retry",
                    retry_after=1,
                )
            self._counters["idempotent_replays"] += 1
            events.emit(
                "net.idempotent_replay", route=route, key=idem_key
            )
            return shared
        try:
            response = await self._execute(request, client, reader, submit)
        except _Disconnected:
            self.idempotency.abandon(key)
            raise
        except HttpError as exc:
            # Deterministic 4xx rejection: cache it like any response so
            # the pending entry never strands its joiners.
            response = exc.response()
        if response.status < 500 and response.status != 429:
            # Deterministic outcomes (results and 4xx rejections) replay;
            # transient ones (overload, timeout, crash) must re-execute.
            self.idempotency.finish(key, response)
        else:
            self.idempotency.abandon(key, response)
        return response

    async def _execute(
        self, request: Request, client: str, reader, submit
    ) -> Response:
        route = _route_label(request.path)
        try:
            future = submit(request)
        except HttpError:
            raise
        except ServerOverloadedError:
            self.breaker.record_overload()
            self._counters["rejected_overload"] += 1
            events.emit(
                "net.rejected",
                reason="overload",
                route=route,
                client=client,
                retry_after=1,
            )
            return error_response(
                429, "admission queue is full", retry_after=1
            )
        except ServerClosedError:
            return error_response(
                503, "server is shutting down", close=True
            )
        except ReproError as exc:
            return error_response(400, f"{type(exc).__name__}: {exc}")
        try:
            result = await self._await_result(future, reader)
        except _RequestTimeout as exc:
            self._counters["timeouts"] += 1
            if exc.cancelled_in_queue:
                self._counters["cancelled_in_queue"] += 1
            events.emit(
                "net.rejected",
                reason="timeout",
                route=route,
                client=client,
                retry_after=1,
            )
            return error_response(504, "request timed out", retry_after=1)
        except _Disconnected as exc:
            self._counters["disconnects"] += 1
            if exc.cancelled_in_queue:
                self._counters["cancelled_in_queue"] += 1
            events.emit(
                "net.disconnect",
                route=route,
                client=client,
                cancelled=exc.cancelled_in_queue,
            )
            raise
        except ServerOverloadedError:
            self.breaker.record_overload()
            self._counters["rejected_overload"] += 1
            events.emit(
                "net.rejected",
                reason="overload",
                route=route,
                client=client,
                retry_after=1,
            )
            return error_response(
                429, "admission queue is full", retry_after=1
            )
        except ReproError as exc:
            # Parse/bind/execution failures are deterministic properties
            # of the request; the queue itself is healthy.
            self.breaker.record_success()
            return error_response(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — surfaced as 500
            return error_response(
                500, f"{type(exc).__name__}: {exc}"
            )
        self.breaker.record_success()
        return json_response(table_to_payload(result))

    async def _await_result(self, future, reader):
        """Await a worker future with a deadline and disconnect watch.

        The concurrent future is polled via a shielded asyncio wrapper;
        between polls the client's stream is checked for EOF. On
        timeout or disconnect the future is cancelled — if it was still
        queued the cancellation sticks and the worker pool never spends
        a slot on it.
        """
        loop = asyncio.get_running_loop()
        wrapped = asyncio.ensure_future(asyncio.wrap_future(future))
        deadline = loop.time() + self.request_timeout_seconds
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise _RequestTimeout(future.cancel())
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(wrapped),
                        min(self.disconnect_poll_seconds, remaining),
                    )
                except asyncio.TimeoutError:
                    if reader is not None and reader.at_eof():
                        raise _Disconnected(future.cancel()) from None
        finally:
            if not wrapped.done():
                wrapped.cancel()
            else:
                # Retrieve a pending exception so the loop never logs
                # "exception was never retrieved" for abandoned work.
                wrapped.exception()

    # -- route bodies ------------------------------------------------------

    def _submit_query(self, request: Request):
        payload = parse_json_body(request.body)
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HttpError(400, '"sql" must be a non-empty string')
        params = _parse_params(payload.get("params"))
        data = payload_to_tables(payload.get("data"))
        return self.server.submit_sql(sql, data=data, params=params)

    def _submit_prepared(self, request: Request):
        ref = request.path.strip("/").split("/")[1]
        try:
            name = self.server.resolve_prepared(ref)
        except ServingError as exc:
            raise HttpError(404, str(exc)) from None
        payload = parse_json_body(request.body)
        params = _parse_params(payload.get("params"))
        data = payload_to_tables(payload.get("data"))
        return self.server.submit(name, params, data)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """The front door's own counters and middleware state."""
        snapshot = dict(self._counters)
        snapshot["breaker"] = self.breaker.stats()
        snapshot["rate_limiter"] = self.limiter.stats()
        snapshot["idempotency"] = self.idempotency.stats()
        snapshot["address"] = f"{self.host}:{self.port}"
        return snapshot


def _route_label(path: str) -> str:
    """A bounded-cardinality route label for events and metrics."""
    parts = path.strip("/").split("/")
    if len(parts) == 3 and parts[0] == "prepared" and parts[2] == "execute":
        return "/prepared/{ref}/execute"
    return path


def _parse_params(raw):
    if raw is None:
        return None
    if isinstance(raw, dict):
        return raw
    if isinstance(raw, list):
        return tuple(raw)
    raise HttpError(400, '"params" must be a JSON array or object')
