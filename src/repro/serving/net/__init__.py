"""The network front door: asyncio HTTP/1.1 serving with resilience.

See :mod:`repro.serving.net.frontdoor` for the server,
:mod:`repro.serving.net.resilience` for the middleware state machines
(idempotency replay, token buckets, circuit breaker), and
``docs/serving.md`` for the HTTP API reference.
"""

from repro.serving.net.codec import payload_to_table, table_to_payload
from repro.serving.net.frontdoor import HttpFrontDoor
from repro.serving.net.http11 import HttpError, Request, Response
from repro.serving.net.resilience import (
    CircuitBreaker,
    IdempotencyCache,
    TokenBucketLimiter,
)

__all__ = [
    "CircuitBreaker",
    "HttpError",
    "HttpFrontDoor",
    "IdempotencyCache",
    "Request",
    "Response",
    "TokenBucketLimiter",
    "payload_to_table",
    "table_to_payload",
]
