"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

This is deliberately not a web framework: the front door speaks just
enough HTTP/1.1 (request line, headers, ``Content-Length`` bodies,
keep-alive) to put the serving subsystem on a real wire with the
stdlib only. The parser is defensive in the ways a front door must be:

* the request line and each header line are bounded by the stream's
  read limit (oversized lines become ``431``, not unbounded buffering);
* header *count* is capped;
* a body larger than ``max_body_bytes`` is rejected from its declared
  ``Content-Length`` — **before** any body byte is read — so a client
  cannot make the server buffer a payload it will refuse anyway;
* ``Transfer-Encoding`` (chunked uploads) is declined with ``501``.

Responses carry no ``Date`` header: a response is a pure function of
the request, which is what lets the idempotency replay cache return
byte-identical responses.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Response phrases for every status the front door emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}

#: Maximum number of header lines accepted per request.
MAX_HEADERS = 64

#: Stream read limit (bounds the request line and each header line).
MAX_LINE_BYTES = 16 * 1024

SERVER_NAME = "repro-raven"


class HttpError(Exception):
    """A protocol-level rejection that maps straight to a response.

    ``close=True`` additionally drops the connection after the error
    response — used when the request body was never drained (oversized
    payloads) so the parser cannot resynchronize on the next request.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: int | None = None,
        close: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.close = close

    def response(self) -> "Response":
        return error_response(
            self.status, self.message,
            retry_after=self.retry_after, close=self.close,
        )


@dataclass
class Request:
    """One parsed request. Header names are lower-cased; last wins."""

    method: str
    path: str
    query: str
    version: str
    headers: dict[str, str]
    body: bytes

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass
class Response:
    """One response, encodable to deterministic wire bytes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    close: bool = False

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Server: {SERVER_NAME}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        lines.append(f"Connection: {'close' if self.close else 'keep-alive'}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def json_response(
    payload,
    status: int = 200,
    headers: tuple[tuple[str, str], ...] = (),
    close: bool = False,
) -> Response:
    body = json.dumps(payload, default=str).encode("utf-8")
    return Response(
        status=status, body=body, headers=tuple(headers), close=close
    )


def error_response(
    status: int,
    message: str,
    retry_after: int | None = None,
    close: bool = False,
) -> Response:
    headers: tuple[tuple[str, str], ...] = ()
    if retry_after is not None:
        headers = (("Retry-After", str(max(1, int(retry_after)))),)
    return json_response(
        {"error": REASONS.get(status, "error"), "detail": message},
        status=status,
        headers=headers,
        close=close,
    )


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request | None:
    """Parse one request; ``None`` on clean end-of-stream.

    Raises :class:`HttpError` on protocol violations. The body size
    check runs on the declared ``Content-Length`` before a single body
    byte is read.
    """
    line = await _read_line(reader)
    for _ in range(4):  # tolerate stray CRLFs between requests (RFC 9112)
        if line != b"":
            break
        line = await _read_line(reader)
    if line == b"":
        raise HttpError(400, "expected a request line", close=True)
    if line is None:
        return None
    try:
        method, target, version = line.decode("latin-1").split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line", close=True) from None
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported version {version!r}", close=True)

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line is None:
            return None  # client vanished mid-headers
        if line == b"":
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many header fields", close=True)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line", close=True)
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(
            501, "Transfer-Encoding is not supported; send Content-Length",
            close=True,
        )
    raw_length = headers.get("content-length", "0")
    try:
        content_length = int(raw_length)
        if content_length < 0:
            raise ValueError
    except ValueError:
        raise HttpError(
            400, f"invalid Content-Length {raw_length!r}", close=True
        ) from None
    if content_length > max_body_bytes:
        # Reject from the declared size, before buffering anything: the
        # connection is closed un-drained, never read.
        raise HttpError(
            413,
            f"body of {content_length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
            close=True,
        )
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None

    path, _, query = target.partition("?")
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


async def _read_line(reader: asyncio.StreamReader) -> bytes | None:
    """One CRLF-terminated line sans terminator; ``None`` at EOF."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        # The stream limit bounds line length; a line that long is
        # hostile, not a framing hiccup.
        raise HttpError(431, "request line or header too long", close=True)
    except ConnectionError:
        return None
    if line == b"":
        return None
    if not line.endswith(b"\n"):
        # readline returned a partial line: the peer closed mid-line.
        return None
    return line.rstrip(b"\r\n")
