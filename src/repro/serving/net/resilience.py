"""Resilience middleware state for the HTTP front door.

Three mechanisms, all bounded-memory and all owned by the front door's
single event-loop thread (no locks needed on their hot paths):

* :class:`IdempotencyCache` — a TTL replay cache keyed by
  ``(route, Idempotency-Key)``. A retry of a completed request replays
  the stored response byte-identically; a retry that races an
  *in-flight* original awaits the same execution instead of running
  the work twice. This is what makes client-side retry-after-timeout
  safe against non-idempotent effects (double scoring, double charge).
* :class:`TokenBucketLimiter` — per-client token buckets. A client
  that exceeds its refill rate gets ``429 Retry-After`` instead of a
  queue slot, so one chatty client cannot starve the admission queue.
* :class:`CircuitBreaker` — a closed → open → half-open state machine
  over admission-queue overload. Consecutive overload rejections trip
  the breaker; while open, requests are shed at the network layer with
  ``503 Retry-After`` without ever touching the queue; after the
  cooldown a single probe request decides between closing and
  re-opening. State transitions emit ``net.circuit_*`` events.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict

from repro.observability import events


class _IdemEntry:
    __slots__ = ("future", "response", "expires_at")

    def __init__(self, future):
        self.future = future
        self.response = None
        self.expires_at = None  # pending entries never expire


class IdempotencyCache:
    """Bounded TTL replay cache for idempotent retries.

    :meth:`begin` returns one of:

    * ``("replay", response)`` — a completed entry; send it verbatim.
    * ``("join", future)`` — the original request is still executing;
      await the future for its response.
    * ``("own", None)`` — the caller owns this key and must call
      :meth:`finish` (cache + wake joiners) or :meth:`abandon`
      (drop the key so a later retry re-executes).
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float = 60.0,
        clock=time.monotonic,
    ):
        self.capacity = max(1, capacity)
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[tuple, _IdemEntry] = OrderedDict()
        self.replays = 0
        self.stores = 0
        self.evictions = 0
        self.expirations = 0

    def begin(self, key: tuple):
        entry = self._entries.get(key)
        now = self._clock()
        if entry is not None:
            if entry.response is not None and entry.expires_at <= now:
                del self._entries[key]
                self.expirations += 1
            elif entry.response is not None:
                self._entries.move_to_end(key)
                self.replays += 1
                return "replay", entry.response
            else:
                return "join", entry.future
        entry = _IdemEntry(asyncio.get_running_loop().create_future())
        self._entries[key] = entry
        return "own", None

    def finish(self, key: tuple, response) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        entry.response = response
        entry.expires_at = self._clock() + self.ttl_seconds
        if not entry.future.done():
            entry.future.set_result(response)
        self.stores += 1
        self._entries.move_to_end(key)
        self._evict()

    def abandon(self, key: tuple, response=None) -> None:
        """Drop a pending key (the attempt did not produce a cacheable
        response); joiners still receive ``response`` when given."""
        entry = self._entries.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(response)

    def _evict(self) -> None:
        while len(self._entries) > self.capacity:
            # Oldest completed entry first; pending entries are pinned
            # (evicting one would orphan its joiners).
            victim = next(
                (
                    key
                    for key, entry in self._entries.items()
                    if entry.response is not None
                ),
                None,
            )
            if victim is None:
                return
            del self._entries[victim]
            self.evictions += 1

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "replays": self.replays,
            "stores": self.stores,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }


class TokenBucketLimiter:
    """Per-client token buckets (classic rate + burst).

    ``rate_per_second=None`` disables limiting (every acquire grants).
    Client state is LRU-bounded: an idle client's bucket ages out once
    ``max_clients`` distinct peers have been seen.
    """

    def __init__(
        self,
        rate_per_second: float | None,
        burst: float | None = None,
        max_clients: int = 1024,
        clock=time.monotonic,
    ):
        self.rate = rate_per_second
        self.burst = burst if burst is not None else (
            max(1.0, 2.0 * rate_per_second) if rate_per_second else 1.0
        )
        self.max_clients = max(1, max_clients)
        self._clock = clock
        self._buckets: OrderedDict[str, list[float]] = OrderedDict()
        self.denials = 0

    def acquire(self, client: str) -> float:
        """``0.0`` when a token was granted, else seconds until one."""
        if not self.rate:
            return 0.0
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = [self.burst, now]
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        tokens, last = bucket
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            bucket[0] = tokens - 1.0
            bucket[1] = now
            return 0.0
        bucket[0] = tokens
        bucket[1] = now
        self.denials += 1
        return (1.0 - tokens) / self.rate

    def stats(self) -> dict:
        return {
            "rate_per_second": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
            "denials": self.denials,
        }


class CircuitBreaker:
    """Load shedding over admission-queue overload.

    ``failure_threshold`` *consecutive* overloads open the circuit for
    ``cooldown_seconds``; while open every request is shed without
    touching the admission queue. After the cooldown the breaker goes
    half-open and admits a single probe: success closes it, another
    overload re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opens = 0
        self.shed = 0

    def allow(self) -> tuple[bool, float]:
        """``(admit?, retry_after_seconds)`` for one request."""
        if self.state == self.CLOSED:
            return True, 0.0
        now = self._clock()
        remaining = self._opened_at + self.cooldown_seconds - now
        if self.state == self.OPEN:
            if remaining > 0:
                self.shed += 1
                return False, remaining
            self.state = self.HALF_OPEN
            self._probe_in_flight = False
            events.emit("net.circuit_half_open", opens=self.opens)
        # Half-open: exactly one probe at a time; everyone else sheds.
        if self._probe_in_flight:
            self.shed += 1
            return False, self.cooldown_seconds
        self._probe_in_flight = True
        return True, 0.0

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != self.CLOSED:
            self.state = self.CLOSED
            self._probe_in_flight = False
            events.emit("net.circuit_closed", opens=self.opens)

    def record_overload(self) -> None:
        self._consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self._opened_at = self._clock()
            self._probe_in_flight = False
            self.opens += 1
            events.emit(
                "net.circuit_open",
                failures=self._consecutive_failures,
                cooldown_seconds=self.cooldown_seconds,
            )

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opens": self.opens,
            "shed": self.shed,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
        }
