"""JSON wire encoding for tables crossing the HTTP boundary.

Result tables travel columnar — ``{"num_rows": N, "columns": {name:
[values...]}}`` — which round-trips through :func:`Table.from_dict`
on a client and keeps the encoding a direct ``tolist()`` per column.
Request data tables arrive in the same shape (the ``columns`` mapping
alone is also accepted).

Non-finite floats are emitted as JSON ``NaN``/``Infinity`` tokens —
Python's :mod:`json` default, accepted back by :func:`json.loads` —
matching the engine's NULL-as-NaN convention.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.relational.table import Table
from repro.serving.net.http11 import HttpError


def table_to_payload(table: Table) -> dict:
    return {
        "num_rows": table.num_rows,
        "columns": {
            name: table.column(name).tolist() for name in table.schema.names
        },
    }


def payload_to_table(obj, name: str = "data") -> Table:
    columns = obj.get("columns", obj) if isinstance(obj, Mapping) else obj
    if not isinstance(columns, Mapping) or not columns:
        raise HttpError(
            400,
            f"data table {name!r} must be a non-empty "
            "{column: [values...]} mapping",
        )
    try:
        return Table.from_dict(columns)
    except Exception as exc:
        raise HttpError(400, f"data table {name!r}: {exc}") from None


def payload_to_tables(obj) -> dict[str, Table] | None:
    if obj is None:
        return None
    if not isinstance(obj, Mapping):
        raise HttpError(400, '"data" must map table names to columns')
    return {
        str(name): payload_to_table(value, str(name))
        for name, value in obj.items()
    }


def parse_json_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError as exc:
        raise HttpError(400, f"request body is not valid JSON: {exc}") from None
    if not isinstance(parsed, dict):
        raise HttpError(400, "request body must be a JSON object")
    return parsed
