"""A concurrent inference server over a :class:`RavenSession`.

``RavenServer`` is the front end of the serving subsystem: N worker
threads drain a bounded admission queue (overload rejects fast instead of
queueing unboundedly), prepared queries are registered once by name and
executed per request with bound parameters, optional micro-batching
coalesces small PREDICT requests, and an optional prediction cache
short-circuits repeats. All request paths feed one
:class:`~repro.serving.stats.ServingStats` object.

Typical use::

    server = RavenServer(session, workers=4)
    server.prepare("score", SQL, data={"requests": schema_row}, batch=True)
    future = server.submit("score", data={"requests": one_row})
    table = future.result()
    print(server.stats_snapshot())
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.observability import events
from repro.observability import trace as qtrace
from repro.relational.table import Table
from repro.serving.batcher import MicroBatcher
from repro.serving.fingerprint import params_key
from repro.serving.prepared import PreparedQuery
from repro.serving.result_cache import ResultCache
from repro.serving.stats import ServingStats

_SHUTDOWN = object()


class _StatsView:
    """``server.stats`` is both the live :class:`ServingStats` object
    (attribute access, the historical surface) and *callable*:
    ``server.stats()`` returns the server's full JSON-serializable
    snapshot, including the opt-in metrics registry and event-bus
    health counters."""

    __slots__ = ("_server", "_stats")

    def __init__(self, server: "RavenServer", stats: ServingStats):
        self._server = server
        self._stats = stats

    def __call__(self) -> dict:
        return self._server.stats_snapshot()

    def __getattr__(self, name: str):
        return getattr(self._stats, name)


@dataclass
class _PreparedSpec:
    prepared: PreparedQuery
    batch: bool
    cache_results: bool
    data_name: str | None  # the single re-bindable data table, when batching
    template_table: Table | None  # its prepare-time schema template


class RavenServer:
    """Serves concurrent inference requests against one database session."""

    def __init__(
        self,
        session,
        workers: int = 4,
        max_queue: int = 256,
        result_cache: ResultCache | None = None,
        result_cache_capacity: int = 256,
        result_ttl_seconds: float = 30.0,
        batch_max_rows: int = 64,
        batch_max_wait_seconds: float = 0.002,
        max_batchers: int = 32,
        trace_requests: bool = False,
        max_traces: int = 16,
    ):
        self.session = session
        self._stats = ServingStats()
        self.stats = _StatsView(self, self._stats)
        #: When on, every worker-path request runs under a
        #: :class:`~repro.observability.trace.QueryTrace`; the last
        #: ``max_traces`` trace dicts are kept (see :meth:`traces`).
        self.trace_requests = trace_requests
        self._traces: deque = deque(maxlen=max(1, max_traces))
        self._spans_dropped = 0  # across all completed traces, ever
        self._metrics = None
        self._watchdog = None
        self._profiler = None
        self.result_cache = result_cache or ResultCache(
            result_cache_capacity, result_ttl_seconds
        )
        self.batch_max_rows = batch_max_rows
        self.batch_max_wait_seconds = batch_max_wait_seconds
        self.max_batchers = max_batchers
        self.max_queue = max_queue
        # A new model version (or rollback) must drop stale predictions;
        # the plan cache subscribes separately via the session.
        session.database.add_model_listener(self._on_model_event)
        # Shard fan-out metrics: every Gather the database dispatches
        # on behalf of this server's requests reports (scanned, pruned,
        # fragment latencies) into ServingStats. Registration is
        # database-level so it survives runtime restarts (close()).
        self._observes_shards = hasattr(session.database, "add_shard_observer")
        if self._observes_shards:
            session.database.add_shard_observer(self._on_shard_query)
        # Database.close() must tear down this server's process-wide
        # BUS subscribers (metrics / watchdog / profiler) even when the
        # caller never shuts the server down explicitly.
        self._observes_close = hasattr(session.database, "add_close_listener")
        if self._observes_close:
            session.database.add_close_listener(self._on_database_close)
        self._prepared: dict[str, _PreparedSpec] = {}
        self._batchers: dict[tuple, MicroBatcher] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"raven-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop admission, drain queued work, and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
            self._batchers.clear()
        # Stop receiving model events; a shut-down server must not stay
        # reachable from (and invalidated by) a long-lived database.
        self.session.database.remove_model_listener(self._on_model_event)
        if self._observes_shards:
            self.session.database.remove_shard_observer(self._on_shard_query)
        if self._observes_close:
            self.session.database.remove_close_listener(self._on_database_close)
        self.disable_metrics()
        self.disable_watchdog()
        self.disable_profiler()
        for batcher in batchers:
            batcher.close()
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()
            # With worker threads, admission (atomic with the closed
            # flag in _enqueue) always precedes the sentinels, so this
            # drain is normally empty. It matters for zero-worker
            # servers (nothing consumes the queue) and as a backstop:
            # fail stragglers rather than leave callers blocked forever.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                _fn, future, _enqueued_at, _label = item
                if future.set_running_or_notify_cancel():
                    future.set_exception(
                        ServerClosedError(
                            "server shut down before executing request"
                        )
                    )

    def __enter__(self) -> "RavenServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- registration ------------------------------------------------------

    def prepare(
        self,
        name: str,
        sql: str,
        data: Mapping[str, Table] | None = None,
        batch: bool = False,
        cache_results: bool = False,
    ) -> PreparedQuery:
        """Register a named prepared query; returns the compiled plan."""
        prepared = PreparedQuery(
            self.session,
            sql,
            data=data,
            result_cache=self.result_cache if cache_results else None,
        )
        data_name: str | None = None
        template_table: Table | None = None
        if batch:
            if len(prepared.data_names) != 1:
                raise ServingError(
                    "micro-batching needs exactly one request-data table; "
                    f"{name!r} has {list(prepared.data_names)}"
                )
            data_name = prepared.data_names[0]
            template_table = next(
                table
                for key, table in (data or {}).items()
                if key.lower() == data_name
            )
        with self._lock:
            self._prepared[name] = _PreparedSpec(
                prepared, batch, cache_results, data_name, template_table
            )
            # Re-registering a name must retire its batchers; their
            # runner closures capture the old spec and would keep
            # scoring already-seen parameter groups with the old plan.
            stale = [
                key for key in self._batchers if key[0] == name
            ]
            retired = [self._batchers.pop(key) for key in stale]
        for batcher in retired:
            batcher.close()
        return prepared

    def prepared(self, name: str) -> PreparedQuery:
        return self._spec(name).prepared

    def resolve_prepared(self, ref: str) -> str:
        """The registered name for ``ref`` — a name or a plan fingerprint.

        The HTTP front door addresses prepared queries by either form
        (``POST /prepared/{name-or-fingerprint}/execute``); fingerprints
        are listed next to their names in ``stats()["prepared"]``.
        """
        with self._lock:
            if ref in self._prepared:
                return ref
            for name, spec in self._prepared.items():
                if spec.prepared.fingerprint == ref:
                    return name
        raise ServingError(f"unknown prepared query or fingerprint {ref!r}")

    def _spec(self, name: str) -> _PreparedSpec:
        try:
            return self._prepared[name]
        except KeyError:
            raise ServingError(f"unknown prepared query {name!r}") from None

    # -- request admission -------------------------------------------------

    def submit(
        self,
        name: str,
        params: Sequence | Mapping | None = None,
        data: Mapping[str, Table] | None = None,
    ) -> Future:
        """Admit one request; resolves to its result :class:`Table`."""
        if self._closed:
            raise ServerClosedError("server has been shut down")
        spec = self._spec(name)
        self._stats.record_submitted()
        events.emit("serving.submitted", query=name)
        try:
            if spec.batch and data and spec.data_name in {
                key.lower() for key in data
            }:
                return self._submit_batched(name, spec, params, data)
            return self._enqueue(
                lambda: spec.prepared.execute(params, data), label=name
            )
        except Exception:
            # Synchronous admission failures (overload, malformed
            # request, shutdown race) count as rejected, keeping
            # submitted == completed + failed + rejected + in-flight.
            self._stats.record_rejected()
            events.emit("serving.rejected", query=name)
            raise

    def query(
        self,
        name: str,
        params: Sequence | Mapping | None = None,
        data: Mapping[str, Table] | None = None,
        timeout: float | None = None,
    ) -> Table:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(name, params, data).result(timeout)

    def submit_sql(
        self,
        sql: str,
        data: Mapping[str, Table] | None = None,
        params: Sequence | Mapping | None = None,
    ) -> Future:
        """Ad-hoc execution through the session pipeline.

        With ``params``, the SQL is compiled as a :class:`PreparedQuery`
        on the worker thread — the session plan cache makes repeats of
        the same statement hit the cached plan, so an ad-hoc
        parameterized query over the wire pays the optimizer once.
        """
        if self._closed:
            raise ServerClosedError("server has been shut down")
        self._stats.record_submitted()
        events.emit("serving.submitted", query="sql")
        if params is not None:
            fn = lambda: PreparedQuery(  # noqa: E731
                self.session, sql, data=data
            ).execute(params, data)
        else:
            fn = lambda: self.session.execute(sql, data).table  # noqa: E731
        try:
            return self._enqueue(fn, label="sql")
        except Exception:
            self._stats.record_rejected()
            events.emit("serving.rejected", query="sql")
            raise

    # -- batched path ------------------------------------------------------

    def _submit_batched(
        self,
        name: str,
        spec: _PreparedSpec,
        params: Sequence | Mapping | None,
        data: Mapping[str, Table],
    ) -> Future:
        request_table = next(
            table
            for key, table in data.items()
            if key.lower() == spec.data_name
        )
        request_table = _conform_to_template(
            request_table, spec.template_table, name
        )
        if spec.cache_results:
            key = spec.prepared.result_key(
                params, {spec.data_name: request_table}
            )
            hit = self.result_cache.get(key)
            if hit is not None:
                future: Future = Future()
                future.set_result(hit)
                self._stats.record_completed(0.0)
                return future
            future = self._batch_submit(name, spec, params, request_table)
            future.add_done_callback(
                lambda f: (
                    self.result_cache.put(
                        key, f.result(), spec.prepared.model_names
                    )
                    if f.exception() is None
                    else None
                )
            )
            return future
        return self._batch_submit(name, spec, params, request_table)

    def _batch_submit(
        self,
        name: str,
        spec: _PreparedSpec,
        params: Sequence | Mapping | None,
        request_table: Table,
    ) -> Future:
        batcher = self._batcher_for(name, spec, params)
        if batcher is None:
            # Too many distinct parameter groups to batch; degrade to the
            # (still asynchronous, still admission-bounded) worker path.
            return self._enqueue(
                lambda: spec.prepared.execute(
                    params,
                    {spec.data_name: request_table},
                    use_result_cache=False,
                ),
                label=name,
            )
        return batcher.submit(request_table)

    def _batcher_for(
        self,
        name: str,
        spec: _PreparedSpec,
        params: Sequence | Mapping | None,
    ) -> MicroBatcher | None:
        """One batcher per (query, bound-params) group — only identical
        parameter bindings may share a vectorized call. Returns ``None``
        when the group budget is exhausted (caller degrades to the
        worker pool)."""
        key = (name, params_key(params))
        with self._lock:
            if self._closed:
                raise ServerClosedError("server has been shut down")
            batcher = self._batchers.get(key)
            if batcher is None:
                if len(self._batchers) >= self.max_batchers:
                    return None
                batcher = MicroBatcher(
                    runner=lambda table: spec.prepared.execute(
                        params,
                        {spec.data_name: table},
                        use_result_cache=False,
                    ),
                    max_batch_rows=self.batch_max_rows,
                    max_wait_seconds=self.batch_max_wait_seconds,
                    # The batch path honors the same admission bound as
                    # the worker queue; overload rejects instead of
                    # queueing unboundedly.
                    max_pending_requests=self.max_queue,
                    stats=self._stats,
                )
                self._batchers[key] = batcher
            return batcher

    def flush_batchers(self) -> None:
        """Dispatch all pending micro-batches immediately."""
        with self._lock:
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.flush()

    # -- worker pool -------------------------------------------------------

    def _enqueue(self, fn, label: str = "request") -> Future:
        future: Future = Future()
        # Admission happens under the lock so it is atomic with
        # shutdown()'s closed-flag flip: a request either lands in the
        # queue before the shutdown sentinels (workers drain it) or is
        # rejected here — its future can never be stranded unresolved.
        with self._lock:
            if self._closed:
                raise ServerClosedError("server has been shut down")
            try:
                self._queue.put_nowait(
                    (fn, future, time.perf_counter(), label)
                )
            except queue.Full:
                # Callers (submit/submit_sql) count the rejection.
                raise ServerOverloadedError(
                    f"admission queue is full ({self._queue.maxsize} requests)"
                ) from None
        return future

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            fn, future, enqueued_at, label = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                if self.trace_requests:
                    with qtrace.trace_query(label) as trace:
                        result = fn()
                    self._traces.append(trace)
                    if trace.spans_dropped:
                        with self._lock:
                            self._spans_dropped += trace.spans_dropped
                    profiler = self._profiler
                    if profiler is not None:
                        profiler.record(trace, query=label)
                else:
                    result = fn()
            except BaseException as exc:  # noqa: BLE001 — report to caller
                latency = time.perf_counter() - enqueued_at
                self._stats.record_failed(latency)
                events.emit(
                    "serving.failed", query=label, latency_seconds=latency
                )
                future.set_exception(exc)
                continue
            latency = time.perf_counter() - enqueued_at
            self._stats.record_completed(latency)
            events.emit(
                "serving.completed", query=label, latency_seconds=latency
            )
            future.set_result(result)

    # -- observability -----------------------------------------------------

    def enable_metrics(self, registry=None):
        """Opt in to the event-fed metrics registry (idempotent).

        Attaches a :class:`~repro.observability.metrics.ServingMetrics`
        subscriber to the process-wide event bus and returns its
        registry; ``stats_snapshot()`` (and ``server.stats()``) include
        its snapshot from then on. Off by default so the serving hot
        path stays at unsubscribed (zero) cost.
        """
        from repro.observability.metrics import ServingMetrics

        with self._lock:
            if self._metrics is None:
                self._metrics = ServingMetrics(registry).attach(events.BUS)
            return self._metrics.registry

    def disable_metrics(self) -> None:
        with self._lock:
            metrics, self._metrics = self._metrics, None
        if metrics is not None:
            metrics.detach()

    def enable_watchdog(self, auto_analyze: bool = True, **config):
        """Opt in to the workload watchdog (idempotent).

        Attaches a
        :class:`~repro.observability.watchdog.WorkloadWatchdog` to the
        process-wide event bus: serving traffic's measured q-error
        drift auto-triggers ``ANALYZE`` (unless ``auto_analyze=False``,
        the observe-only mode), and its decision log appears under
        ``server.stats()["watchdog"]``.
        """
        from repro.observability.watchdog import WorkloadWatchdog

        with self._lock:
            if self._watchdog is None:
                self._watchdog = WorkloadWatchdog(
                    self.session.database,
                    auto_analyze=auto_analyze,
                    **config,
                ).attach(events.BUS)
            return self._watchdog

    def disable_watchdog(self) -> None:
        with self._lock:
            watchdog, self._watchdog = self._watchdog, None
        if watchdog is not None:
            watchdog.detach()

    def enable_profiler(self, **config):
        """Opt in to the query-log profiler (idempotent).

        Completed request traces fold into fingerprint-keyed aggregates
        (per-operator self time, top-K slow queries, per-stage and
        per-backend breakdowns); the report appears under
        ``server.stats()["profiler"]`` and in full via
        ``server.profiler_report()``. Forces ``trace_requests`` on —
        the profiler is a consumer of traces.
        """
        from repro.observability.profiler import QueryLogProfiler

        with self._lock:
            if self._profiler is None:
                self._profiler = QueryLogProfiler(**config).attach(events.BUS)
                self.trace_requests = True
            return self._profiler

    def disable_profiler(self) -> None:
        with self._lock:
            profiler, self._profiler = self._profiler, None
        if profiler is not None:
            profiler.detach()

    def profiler_report(self, top_k: int | None = None) -> dict | None:
        """The full workload profile (with exemplar traces), or ``None``
        when the profiler is off."""
        profiler = self._profiler
        if profiler is None:
            return None
        return profiler.report(top_k=top_k)

    def _on_database_close(self) -> None:
        # The database this server fronts is gone: release every
        # process-wide BUS subscription so nothing keeps firing into
        # (or leaking from) a dead serving stack.
        self.disable_metrics()
        self.disable_watchdog()
        self.disable_profiler()

    def traces(self) -> list[dict]:
        """The retained request traces (oldest first), as JSON dicts."""
        return [trace.to_dict() for trace in list(self._traces)]

    def last_trace(self) -> dict | None:
        traces = list(self._traces)
        return traces[-1].to_dict() if traces else None

    def _on_model_event(self, event: str, name: str) -> None:
        self.result_cache.invalidate_model(name)

    def _on_shard_query(
        self,
        scanned: int,
        pruned: int,
        fragment_seconds: list[float],
        stage_seconds: list[float] | None = None,
    ) -> None:
        self._stats.record_shard_query(
            scanned, pruned, fragment_seconds, stage_seconds
        )

    def stats_snapshot(self) -> dict:
        """One dict with request, latency, and cache metrics."""
        snapshot = self._stats.snapshot()
        runtime = getattr(self.session.database, "distributed", None)
        if runtime is not None:
            snapshot["distributed_runtime"] = runtime.stats()
        plan_cache = getattr(self.session, "plan_cache", None)
        if plan_cache is not None:
            snapshot["plan_cache"] = plan_cache.stats()
        snapshot["result_cache"] = self.result_cache.stats()
        session_cache = self.session.database.session_cache
        if session_cache is not None:
            snapshot["session_cache"] = {
                "hits": session_cache.hits,
                "misses": session_cache.misses,
            }
        metrics = self._metrics
        if metrics is not None:
            snapshot["metrics"] = metrics.registry.snapshot()
        watchdog = self._watchdog
        if watchdog is not None:
            snapshot["watchdog"] = watchdog.stats()
        profiler = self._profiler
        if profiler is not None:
            # Exemplar span trees stay out of the stats surface; the
            # full report is server.profiler_report().
            snapshot["profiler"] = profiler.report(include_traces=False)
        snapshot["events"] = events.BUS.stats()
        with self._lock:
            spans_dropped = self._spans_dropped
            snapshot["prepared"] = {
                name: spec.prepared.fingerprint
                for name, spec in self._prepared.items()
            }
        snapshot["traces"] = {
            "retained": len(self._traces),
            "capacity": self._traces.maxlen,
            "span_cap": qtrace.MAX_SPANS,
            "spans_dropped": spans_dropped,
        }
        return snapshot


def _conform_to_template(
    table: Table, template: Table | None, name: str
) -> Table:
    """Reorder a request table's columns to the prepare-time template.

    Requests are concatenated into shared micro-batches, so one
    client's malformed table must be rejected at admission — before it
    can fail the whole batch for everyone coalesced with it.
    """
    if template is None or table.schema.names == template.schema.names:
        return table
    try:
        return table.select(template.schema.names)
    except Exception:
        raise ServingError(
            f"request table for {name!r} does not match the prepared "
            f"schema {list(template.schema.names)}; "
            f"got {list(table.schema.names)}"
        ) from None
