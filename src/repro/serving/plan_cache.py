"""The normalized-plan LRU cache (prepared inference queries).

Raven's advantage over standalone runtimes on small inputs comes from
amortizing per-query work — parsing, static analysis, cross-optimization —
across many requests (paper Fig. 3). :class:`PlanCache` holds optimized IR
templates keyed by the query's normalized SQL fingerprint; each entry
records which stored models (at which versions) the plan embeds, so a
``store_model`` of a new version invalidates exactly the plans it staled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.ir.graph import IRGraph
from repro.observability import events


@dataclass
class CachedPlan:
    """One optimized, parameterized plan template.

    ``model_refs`` records, per referenced model, the qualified ``name:vN``
    the plan was compiled against and whether that was the catalog's
    latest version at prepare time (``tracked``). A tracked plan goes
    stale when a newer version is stored; a plan that pinned an older
    version only goes stale if that version disappears (rollback).
    """

    fingerprint: str
    graph: IRGraph  # optimized template; copied before each binding
    report: object  # OptimizationReport
    generated_sql: str | None
    param_names: tuple[str, ...]  # e.g. ("?1", "@cutoff")
    data_names: tuple[str, ...]  # application-data tables the plan re-binds
    model_refs: tuple[tuple[str, str, bool], ...]  # (name, qualified, tracked)
    #: Per scanned base table, the catalog stats epoch the plan was
    #: optimized against. ``ANALYZE`` (or a large write) bumps the
    #: epoch, which stales this plan so the next execution replans with
    #: fresh cardinalities.
    stats_epochs: tuple[tuple[str, int], ...] = ()
    #: Per (table, column) the plan actually references, the column's
    #: stats epoch at prepare time. Staleness checks prefer these over
    #: the table-level epochs: a write that only drifts columns the
    #: plan never reads keeps the plan hot. Tables with no attributable
    #: column references fall back to their ``stats_epochs`` entry.
    column_epochs: tuple[tuple[str, str, int], ...] = ()
    #: Which memo rules fired while optimizing this plan (the memo
    #: search's exploration log) — serving introspection/debugging.
    rules_fired: tuple[str, ...] = ()
    #: Per distributed exchange the plan performs, the routing
    #: decision: ``(table, shards_scanned, shards_total, pruned_by,
    #: strategy)`` where ``strategy`` is ``scan`` (single-table
    #: gather), ``colocated`` (co-located shard join) or ``shuffle``
    #: (hash-shuffle join side). Recorded so serving introspection can
    #: see the fan-out — and the join strategy — a cached plan commits
    #: to without re-deriving it.
    shard_routing: tuple[tuple[str, int, int, str, str], ...] = ()
    #: Per sharded table the plan touches, the catalog shard epoch at
    #: prepare time. A reshard — or any write that moves rows between
    #: shards — bumps the epoch, staling this plan so the next
    #: execution re-routes against the new layout.
    shard_epochs: tuple[tuple[str, int], ...] = ()
    #: Per Predict the plan executes, the memo-chosen scoring backend:
    #: ``(model_ref, backend)`` where ``backend`` is ``numpy`` when the
    #: optimizer kept the per-node interpreter. Recorded so serving
    #: introspection can see which compiled backends a cached plan
    #: commits to without re-deriving the cost comparison.
    backend_choices: tuple[tuple[str, str], ...] = ()
    prepare_seconds: float = 0.0
    executions: int = field(default=0)

    @property
    def model_names(self) -> tuple[str, ...]:
        return tuple(name for name, _qualified, _tracked in self.model_refs)


class PlanCache:
    """A thread-safe LRU of :class:`CachedPlan` entries."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: OrderedDict[str, CachedPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Why plans were invalidated (``stale`` = epoch drift, ``model``
        #: = model version change) — the watchdog/observatory reads this
        #: to tell statistics churn from model churn.
        self.invalidations_by_reason: dict[str, int] = {}

    def get(self, fingerprint: str) -> CachedPlan | None:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                events.emit("plan_cache.miss", fingerprint=fingerprint)
                return None
            self.hits += 1
            self._entries.move_to_end(fingerprint)
            events.emit("plan_cache.hit", fingerprint=fingerprint)
            return entry

    def put(self, entry: CachedPlan) -> None:
        with self._lock:
            self._entries[entry.fingerprint] = entry
            self._entries.move_to_end(entry.fingerprint)
            events.emit("plan_cache.put", fingerprint=entry.fingerprint)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions += 1
                events.emit("plan_cache.evict", fingerprint=evicted)

    def invalidate(self, fingerprint: str, reason: str = "stale") -> None:
        with self._lock:
            if self._entries.pop(fingerprint, None) is not None:
                self.invalidations += 1
                self.invalidations_by_reason[reason] = (
                    self.invalidations_by_reason.get(reason, 0) + 1
                )
                events.emit(
                    "plan_cache.invalidate", fingerprint=fingerprint, reason=reason
                )

    def invalidate_model(self, name: str) -> int:
        """Drop every cached plan that embeds model ``name``; returns count."""
        key = name.lower()
        with self._lock:
            stale = [
                fp
                for fp, entry in self._entries.items()
                if any(model.lower() == key for model in entry.model_names)
            ]
            for fp in stale:
                del self._entries[fp]
                events.emit("plan_cache.invalidate", fingerprint=fp, reason="model")
            self.invalidations += len(stale)
            if stale:
                self.invalidations_by_reason["model"] = (
                    self.invalidations_by_reason.get("model", 0) + len(stale)
                )
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "invalidations_by_reason": dict(self.invalidations_by_reason),
            }
