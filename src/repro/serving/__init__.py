"""The serving layer: prepared queries, plan/result caches, micro-batching.

Raven's production claim (paper §1, Fig. 3) is that in-RDBMS inference
wins by amortizing optimization and session state across requests. This
subpackage makes that amortization explicit for concurrent traffic:

* :class:`PreparedQuery` — analyze/optimize a parameterized inference
  query once; execute many times with bound ``?``/``@name`` parameters
  and fresh request data (``RavenSession.prepare``).
* :class:`PlanCache` — normalized-plan LRU keyed by SQL fingerprint,
  invalidated per model version.
* :class:`MicroBatcher` — size-or-deadline coalescing of small PREDICT
  requests into one vectorized scoring call.
* :class:`ResultCache` — LRU + TTL prediction cache with model-based
  invalidation (mirrors the ``SessionCache`` contract).
* :class:`RavenServer` — N worker threads behind a bounded admission
  queue, with :class:`ServingStats` metrics (throughput, p50/p95 latency,
  cache hit rates, batch-size histogram).
* :class:`HttpFrontDoor` (:mod:`repro.serving.net`) — the asyncio
  HTTP/1.1 network front end over the admission queue: idempotency-key
  replay, per-client token-bucket backpressure, request timeouts with
  cooperative cancellation, and circuit-breaker load shedding.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.fingerprint import sql_fingerprint, table_fingerprint
from repro.serving.net import HttpFrontDoor
from repro.serving.plan_cache import CachedPlan, PlanCache
from repro.serving.prepared import PreparedQuery
from repro.serving.result_cache import ResultCache
from repro.serving.server import RavenServer
from repro.serving.stats import ServingStats

__all__ = [
    "CachedPlan",
    "HttpFrontDoor",
    "MicroBatcher",
    "PlanCache",
    "PreparedQuery",
    "RavenServer",
    "ResultCache",
    "ServingStats",
    "sql_fingerprint",
    "table_fingerprint",
]
