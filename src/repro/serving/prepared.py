"""Prepared inference queries: analyze/optimize once, execute many times.

A :class:`PreparedQuery` runs the expensive front half of Raven's pipeline
(parse -> static analysis -> cross-optimization) a single time, caches the
optimized IR template in the session's :class:`~repro.serving.plan_cache.PlanCache`,
and then executes with per-request bindings:

* scalar parameters — ``?`` positional or ``@name`` placeholders left
  unbound in the SQL are substituted with literals into a copy of the
  template (the plan itself is never mutated, so executions can run
  concurrently from many threads);
* request data — tables passed as ``data={...}`` at prepare time act as
  schema templates; each execution re-binds fresh rows into the plan's
  ``ra.inline_table`` leaves by ``source_name``.

Plans are version-addressed: the template records the qualified
``name:vN`` of every model it embeds, and execution transparently
re-prepares when the catalog has moved on (``store_model`` of a new
version, or a transaction rollback).
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Mapping, Sequence

from repro.errors import ParameterBindError
from repro.core.ir.graph import IRGraph
from repro.observability import events
from repro.observability import trace as qtrace
from repro.relational.expressions import Expression, Literal, Parameter
from repro.relational.table import Table
from repro.serving.fingerprint import (
    _plain,
    data_key,
    params_key,
    schema_key,
    sql_fingerprint,
)
from repro.serving.plan_cache import CachedPlan, PlanCache
from repro.serving.result_cache import ResultCache

# IR attrs that hold expressions (scalars or (expr, ...) tuples).
_SCALAR_EXPR_ATTRS = ("predicate", "condition")
_PAIR_EXPR_ATTRS = ("items", "keys", "group_by")  # [(expr, name-or-flag), ...]


class PreparedQuery:
    """A parameterized inference query compiled to a reusable plan."""

    def __init__(
        self,
        session,
        sql: str,
        data: Mapping[str, Table] | None = None,
        plan_cache: PlanCache | None = None,
        result_cache: ResultCache | None = None,
    ):
        self._session = session
        self.sql = sql
        self._template_data = {
            name.lower(): table for name, table in (data or {}).items()
        }
        # The plan-cache key covers the SQL *and* the request-table
        # schemas: the same SQL prepared over differently-shaped data
        # templates compiles to different plans.
        self.fingerprint = sql_fingerprint(sql)
        if self._template_data:
            self.fingerprint += f":{schema_key(self._template_data)}"
        self._plan_cache = (
            plan_cache
            if plan_cache is not None
            else getattr(session, "plan_cache", None)
        )
        self._result_cache = result_cache
        self._lock = threading.Lock()
        self.replans = 0
        self._entry = self._prepare()

    # -- compilation -------------------------------------------------------

    def _prepare(self) -> CachedPlan:
        if self._plan_cache is not None:
            cached = self._plan_cache.get(self.fingerprint)
            if cached is not None and self._is_current(cached):
                return cached
        start = time.perf_counter()
        graph = self._session.analyze(self.sql, dict(self._template_data))
        model_refs = _collect_model_refs(graph, self._session.database)
        stats_epochs = _collect_stats_epochs(graph, self._session.database)
        column_epochs = _collect_column_epochs(graph, self._session.database)
        shard_epochs = _collect_shard_epochs(graph, self._session.database)
        optimized, report = self._session.optimize(graph)
        generated = self._session.generate_sql(optimized)
        entry = CachedPlan(
            fingerprint=self.fingerprint,
            graph=optimized,
            report=report,
            generated_sql=generated,
            param_names=_collect_parameters(optimized),
            data_names=_collect_data_names(optimized),
            model_refs=model_refs,
            stats_epochs=stats_epochs,
            column_epochs=column_epochs,
            rules_fired=tuple(getattr(report, "applied", ()) or ()),
            shard_routing=_collect_shard_routing(optimized),
            shard_epochs=shard_epochs,
            backend_choices=_collect_backend_choices(optimized),
            prepare_seconds=time.perf_counter() - start,
        )
        if self._plan_cache is not None:
            self._plan_cache.put(entry)
        return entry

    def _is_current(self, entry: CachedPlan) -> bool:
        database = self._session.database
        # Statistics moved (ANALYZE or a large write): the plan was
        # priced on stale cardinalities, so replan before reuse. The
        # check is column-granular where possible — only the columns
        # the plan references are compared, so a write drifting other
        # columns of the same table keeps this plan hot. Tables with no
        # attributable column references (e.g. bare COUNT(*)) fall back
        # to the conservative table-level epoch.
        column_covered = {table for table, _col, _e in entry.column_epochs}
        for table_name, column, epoch in entry.column_epochs:
            try:
                if database.catalog.column_stats_epoch(
                    table_name, column
                ) != epoch:
                    return False
            except Exception:
                return False
        for table_name, epoch in entry.stats_epochs:
            if table_name in column_covered:
                continue
            try:
                if database.catalog.stats_epoch(table_name) != epoch:
                    return False
            except Exception:
                return False
        # Shard layout moved (reshard, or a write that re-splits the
        # table): the plan's recorded routing may name shards that no
        # longer hold the matching rows, so re-route before reuse.
        for table_name, epoch in entry.shard_epochs:
            try:
                if database.catalog.shard_epoch(table_name) != epoch:
                    return False
            except Exception:
                return False
        for name, qualified, tracked in entry.model_refs:
            try:
                if tracked:
                    # Plan followed the latest version; stale once the
                    # catalog moves on.
                    if database.get_model(name).qualified_name != qualified:
                        return False
                else:
                    # Plan pinned an older version; stale only if that
                    # version no longer exists (e.g. rollback).
                    database.get_model(qualified)
            except Exception:
                return False
        return True

    def _ensure_current(self) -> CachedPlan:
        entry = self._entry
        if self._is_current(entry):
            return entry
        with self._lock:
            if not self._is_current(self._entry):
                if self._plan_cache is not None:
                    self._plan_cache.invalidate(self.fingerprint)
                self._entry = self._prepare()
                self.replans += 1
                events.emit(
                    "serving.replan",
                    fingerprint=self.fingerprint,
                    replans=self.replans,
                )
            return self._entry

    # -- introspection -----------------------------------------------------

    @property
    def param_names(self) -> tuple[str, ...]:
        return self._entry.param_names

    @property
    def data_names(self) -> tuple[str, ...]:
        return self._entry.data_names

    @property
    def model_names(self) -> tuple[str, ...]:
        return self._entry.model_names

    @property
    def plan(self) -> IRGraph:
        return self._entry.graph

    @property
    def report(self):
        return self._entry.report

    @property
    def generated_sql(self) -> str | None:
        return self._entry.generated_sql

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        params: Sequence | Mapping | None = None,
        data: Mapping[str, Table] | None = None,
        use_result_cache: bool = True,
    ) -> Table:
        """Bind parameters + request data and run the cached plan."""
        entry = self._ensure_current()
        cache_key = None
        if self._result_cache is not None and use_result_cache:
            cache_key = _result_key(entry, params, data)
            hit = self._result_cache.get(cache_key)
            if hit is not None:
                entry.executions += 1
                return hit
        with qtrace.span("bind_params", fingerprint=entry.fingerprint):
            mapping = self._build_mapping(params, entry)
            request_data = _normalize_data(data)
            self._check_data_bindings(request_data, entry)
            bound = _bind_template(entry.graph, mapping, request_data)
        with qtrace.span("execute") as sp:
            table = self._session.executor.execute(bound)
            sp.set("rows", table.num_rows)
        entry.executions += 1
        if cache_key is not None:
            self._result_cache.put(cache_key, table, entry.model_names)
        return table

    def result_key(
        self,
        params: Sequence | Mapping | None = None,
        data: Mapping[str, Table] | None = None,
    ) -> tuple:
        """The prediction-cache key for one request against this query."""
        return _result_key(self._ensure_current(), params, data)

    def execute_many(
        self,
        param_sets: Sequence[Sequence | Mapping],
        data: Mapping[str, Table] | None = None,
    ) -> list[Table]:
        """Execute once per parameter set against the same cached plan."""
        return [self.execute(params, data) for params in param_sets]

    def _build_mapping(
        self, params: Sequence | Mapping | None, entry: CachedPlan
    ) -> dict[str, Expression]:
        required = set(entry.param_names)
        mapping: dict[str, Expression] = {}
        if params is None:
            pass
        elif isinstance(params, Mapping):
            for raw_name, value in params.items():
                name = str(raw_name)
                if not name.startswith(("@", "?")):
                    name = f"@{name}"
                mapping[name] = Literal(_plain(value))
        else:
            positional = sorted(
                (name for name in required if name.startswith("?")),
                key=lambda name: int(name[1:]),
            )
            if len(params) != len(positional):
                raise ParameterBindError(
                    f"query has {len(positional)} positional parameters, "
                    f"got {len(params)} values"
                )
            for name, value in zip(positional, params):
                mapping[name] = Literal(_plain(value))
        missing = required - set(mapping)
        if missing:
            raise ParameterBindError(
                f"missing values for parameters: {', '.join(sorted(missing))}"
            )
        extra = set(mapping) - required
        if extra:
            raise ParameterBindError(
                f"unknown parameters: {', '.join(sorted(extra))}"
            )
        return mapping

    @staticmethod
    def _check_data_bindings(
        request_data: Mapping[str, Table], entry: CachedPlan
    ) -> None:
        """Data bindings are validated as strictly as scalar parameters.

        Silently scoring the prepare-time schema-template rows (data
        forgotten) or ignoring a misnamed table (typo) would return
        plausible-looking garbage predictions.
        """
        required = set(entry.data_names)
        provided = set(request_data)
        missing = required - provided
        if missing:
            raise ParameterBindError(
                f"missing data tables: {', '.join(sorted(missing))}"
            )
        extra = provided - required
        if extra:
            raise ParameterBindError(
                f"unknown data tables: {', '.join(sorted(extra))}"
            )

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(fingerprint={self.fingerprint}, "
            f"params={list(self.param_names)}, data={list(self.data_names)})"
        )


def _result_key(
    entry: CachedPlan,
    params: Sequence | Mapping | None,
    data: Mapping[str, Table] | None,
) -> tuple:
    """Prediction-cache key: plan + *model versions* + bindings.

    Embedding the qualified ``name:vN`` versions means a model update
    naturally misses the cache even when no invalidation listener is
    wired up (standalone :class:`PreparedQuery` use); stale entries age
    out via TTL/LRU.
    """
    versions = tuple(
        qualified for _name, qualified, _tracked in entry.model_refs
    )
    return (entry.fingerprint, versions, params_key(params), data_key(data))


# -- template binding --------------------------------------------------------


def _bind_template(
    template: IRGraph,
    mapping: Mapping[str, Expression],
    data: Mapping[str, Table],
) -> IRGraph:
    """A copy of ``template`` with parameters and request data bound in."""
    graph = template.copy()
    for node in graph.nodes():
        attrs = node.attrs
        if mapping:
            for key in _SCALAR_EXPR_ATTRS:
                expr = attrs.get(key)
                if expr is not None:
                    attrs[key] = expr.substitute(mapping)
            for key in _PAIR_EXPR_ATTRS:
                pairs = attrs.get(key)
                if pairs:
                    attrs[key] = [
                        (expr.substitute(mapping), tag) for expr, tag in pairs
                    ]
            aggregates = attrs.get("aggregates")
            if aggregates:
                attrs["aggregates"] = [
                    (
                        func,
                        arg.substitute(mapping) if arg is not None else None,
                        alias,
                    )
                    for func, arg, alias in aggregates
                ]
        if node.op == "ra.gather" and mapping:
            # The per-shard fragment is a logical subtree attribute;
            # its filter/projection expressions carry parameters too.
            from repro.distributed.operators import substitute_fragment

            attrs["fragment"] = substitute_fragment(
                attrs["fragment"], mapping
            )
        if node.op == "ra.shuffle_join" and mapping:
            # Both side fragments, the join condition, and any post-join
            # worker stages re-bind; the rebuilt op re-routes each side
            # at execution time.
            from repro.distributed.operators import substitute_shuffle_join

            bound = substitute_shuffle_join(
                _shuffle_join_of(attrs), mapping
            )
            attrs["left"] = bound.left
            attrs["right"] = bound.right
            attrs["condition"] = bound.condition
            attrs["stages"] = bound.stages
        if node.op == "ra.inline_table" and data:
            source = attrs.get("source_name")
            if source and source.lower() in data:
                attrs["table_value"] = data[source.lower()]
    return graph


def _walk_expressions(graph: IRGraph) -> Iterator[Expression]:
    for node in graph.nodes():
        attrs = node.attrs
        for key in _SCALAR_EXPR_ATTRS:
            expr = attrs.get(key)
            if expr is not None:
                yield expr
        for key in _PAIR_EXPR_ATTRS:
            for expr, _tag in attrs.get(key) or ():
                yield expr
        for _func, arg, _alias in attrs.get("aggregates") or ():
            if arg is not None:
                yield arg
        if node.op == "ra.gather":
            from repro.distributed.operators import fragment_expressions

            yield from fragment_expressions(attrs["fragment"])
        if node.op == "ra.shuffle_join":
            from repro.distributed.operators import shuffle_join_expressions

            yield from shuffle_join_expressions(_shuffle_join_of(attrs))


def _collect_parameters(graph: IRGraph) -> tuple[str, ...]:
    names: dict[str, None] = {}
    for expr in _walk_expressions(graph):
        for node in expr.walk():
            if isinstance(node, Parameter):
                names[node.name] = None
    return tuple(names)


def _collect_data_names(graph: IRGraph) -> tuple[str, ...]:
    names: dict[str, None] = {}
    for node in graph.nodes():
        if node.op == "ra.inline_table":
            source = node.attrs.get("source_name")
            if source:
                names[source.lower()] = None
    return tuple(names)


def _collect_model_refs(
    graph: IRGraph, database
) -> tuple[tuple[str, str, bool], ...]:
    """(name, qualified ``name:vN``, tracked-latest?) per embedded model.

    Collected from the *analysis* graph, before optimization rewrites
    (inlining, NN translation) can fold model nodes away. ``tracked`` is
    whether the bound version was the catalog's latest at prepare time —
    if so, a newer store invalidates the plan; if the query pinned an
    older version, only that version's disappearance does.
    """
    refs: dict[tuple[str, str, bool], None] = {}
    for node in graph.nodes():
        qualified = node.attrs.get("model_ref")
        if not qualified:
            continue
        qualified = str(qualified)
        name = qualified.rpartition(":v")[0] or qualified
        try:
            tracked = database.get_model(name).qualified_name == qualified
        except Exception:
            tracked = True
        refs[(name, qualified, tracked)] = None
    return tuple(refs)


def _collect_stats_epochs(
    graph: IRGraph, database
) -> tuple[tuple[str, int], ...]:
    """``(table, stats_epoch)`` for every base table the plan scans.

    Collected from the analysis graph so optimization rewrites cannot
    hide a dependency; inline (request-data) tables have no epoch.
    """
    epochs: dict[str, int] = {}
    for node in graph.nodes():
        if node.op != "ra.scan":
            continue
        name = str(node.attrs.get("table", "")).lower()
        if not name or name in epochs:
            continue
        try:
            epochs[name] = database.catalog.stats_epoch(name)
        except Exception:
            continue
    return tuple(sorted(epochs.items()))


def _collect_column_epochs(
    graph: IRGraph, database
) -> tuple[tuple[str, str, int], ...]:
    """``(table, column, epoch)`` for every column the plan references.

    A column reference is attributed to every scanned table whose
    schema exposes its unqualified name — over-attribution only makes
    invalidation more conservative, never stale. Model feature columns
    (``feature_names`` on scoring nodes) count as references: a drift
    in a feature column must replan even if no SQL expression names it.
    """
    referenced: set[str] = set()
    for expr in _walk_expressions(graph):
        for ref in expr.columns():
            referenced.add(ref.split(".")[-1].lower())
    for node in graph.nodes():
        for feature in node.attrs.get("feature_names") or ():
            referenced.add(str(feature).split(".")[-1].lower())
    entries: dict[tuple[str, str], int] = {}
    for node in graph.nodes():
        if node.op != "ra.scan":
            continue
        table = str(node.attrs.get("table", "")).lower()
        schema = node.attrs.get("schema")
        if not table or schema is None:
            continue
        for column in schema:
            suffix = column.name.split(".")[-1].lower()
            if suffix not in referenced or (table, suffix) in entries:
                continue
            try:
                entries[(table, suffix)] = database.catalog.column_stats_epoch(
                    table, suffix
                )
            except Exception:
                continue
    return tuple(
        (table, column, epoch)
        for (table, column), epoch in sorted(entries.items())
    )


def _shuffle_join_of(attrs: dict):
    """The logical ShuffleJoin an ``ra.shuffle_join`` node's attrs hold."""
    from repro.distributed.operators import ShuffleJoin

    return ShuffleJoin(
        attrs["left"],
        attrs["right"],
        attrs.get("kind", "INNER"),
        attrs["condition"],
        attrs["num_buckets"],
        tuple(attrs.get("stages") or ()),
    )


def _collect_shard_routing(
    graph: IRGraph,
) -> tuple[tuple[str, int, int, str, str], ...]:
    """``(table, scanned, total, pruned_by, strategy)`` per exchange.

    ``strategy`` is the join strategy the plan committed to — ``scan``
    for single-table gathers, ``colocated`` for co-located shard
    joins, ``shuffle`` (one entry per sharded side) for shuffle joins.
    Collected from the *optimized* graph — routing is an optimizer
    decision, it does not exist before the memo search.
    """
    routing = []
    for node in graph.nodes():
        if node.op == "ra.gather":
            join = str(node.attrs.get("join", "none"))
            routing.append(
                (
                    str(node.attrs.get("table", "")).lower(),
                    len(node.attrs.get("shard_ids", ())),
                    int(node.attrs.get("total_shards", 0)),
                    str(node.attrs.get("pruned_by", "none")),
                    "colocated" if join == "colocated" else "scan",
                )
            )
        elif node.op == "ra.shuffle_join":
            for side in (node.attrs["left"], node.attrs["right"]):
                if not side.is_sharded:
                    continue
                routing.append(
                    (
                        side.table_name.lower(),
                        len(side.shard_ids),
                        side.total_shards,
                        side.pruned_by,
                        "shuffle",
                    )
                )
    return tuple(routing)


def _collect_backend_choices(
    graph: IRGraph,
) -> tuple[tuple[str, str], ...]:
    """``(model_ref, backend)`` per Predict in the optimized plan.

    The scoring backend is a memo decision (a physical property of the
    Predict operator), so like shard routing it only exists on the
    *optimized* graph. ``numpy`` means the optimizer kept the per-node
    interpreter for that model's batch size.
    """
    choices = []
    for node in graph.nodes():
        if node.op not in ("mld.pipeline", "la.tensor_graph", "udf.python"):
            continue
        choices.append(
            (
                str(node.attrs.get("model_ref", "")),
                str(node.attrs.get("backend") or "numpy"),
            )
        )
    return tuple(choices)


def _collect_shard_epochs(
    graph: IRGraph, database
) -> tuple[tuple[str, int], ...]:
    """``(table, shard_epoch)`` for every *sharded* table the plan scans.

    Collected from the analysis graph (like the stats epochs) so the
    dependency survives whatever shape the optimizer rewrites the scan
    into — including not distributing at all: if the layout changes, a
    replan may now choose (or re-route) a scatter-gather plan.
    """
    epochs: dict[str, int] = {}
    for node in graph.nodes():
        if node.op not in ("ra.scan", "ra.gather"):
            continue
        name = str(node.attrs.get("table", "")).lower()
        if not name or name in epochs:
            continue
        try:
            if database.catalog.is_sharded(name):
                epochs[name] = database.catalog.shard_epoch(name)
        except Exception:
            continue
    return tuple(sorted(epochs.items()))


def _normalize_data(
    data: Mapping[str, Table] | None,
) -> dict[str, Table]:
    return {name.lower(): table for name, table in (data or {}).items()}
