"""LRU + TTL cache for whole prediction results.

Serving traffic is repetitive: the same scoring request (same prepared
query, same bound parameters, same feature row) recurs within short
windows. Entries expire after ``ttl_seconds`` and are invalidated when a
new version of any model they depend on is stored — the same contract
:class:`~repro.relational.database.SessionCache` follows for scorers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable


@dataclass
class _Entry:
    value: object
    expires_at: float
    model_names: tuple[str, ...]


class ResultCache:
    """A thread-safe LRU with per-entry TTL and model-based invalidation.

    ``clock`` is injectable (defaults to :func:`time.monotonic`) so tests
    can step time deterministically.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> object | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if self._clock() >= entry.expires_at:
                del self._entries[key]
                self.expired += 1
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry.value

    def put(
        self,
        key: Hashable,
        value: object,
        model_names: tuple[str, ...] = (),
        ttl_seconds: float | None = None,
    ) -> None:
        ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
        with self._lock:
            self._entries[key] = _Entry(
                value, self._clock() + ttl, tuple(model_names)
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_model(self, name: str) -> int:
        """Drop every result that depended on model ``name``; returns count."""
        key = name.lower()
        with self._lock:
            stale = [
                k
                for k, entry in self._entries.items()
                if any(model.lower() == key for model in entry.model_names)
            ]
            for k in stale:
                del self._entries[k]
            self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "expired": self.expired,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
