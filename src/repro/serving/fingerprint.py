"""Normalized fingerprints for plan- and result-cache keys.

The plan cache must treat two textually different spellings of the same
inference query as one entry ("prepared once, executed many times"), so
SQL is fingerprinted over its *token stream* — whitespace, comments, and
keyword/identifier case disappear, while literals and structure remain.
Request data for the prediction cache is fingerprinted over raw column
bytes, which is cheap at serving sizes (single rows / micro-batches).
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence

from repro.relational.sql.lexer import TokenType, tokenize
from repro.relational.table import Table


def sql_fingerprint(sql: str) -> str:
    """A stable hex digest of the query's normalized token stream."""
    parts: list[str] = []
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            break
        value = token.value
        if token.type is TokenType.KEYWORD:
            value = value.upper()
        elif token.type is TokenType.IDENTIFIER:
            # Identifiers resolve case-insensitively in the catalog.
            value = value.lower()
        parts.append(f"{token.type.value}\x1e{value}")
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def schema_key(data: Mapping[str, Table] | None) -> str:
    """A digest of data-table *schemas* (names + column types).

    Part of the plan-cache key: the same SQL prepared against request
    tables with different shapes compiles to different plans.
    """
    if not data:
        return ""
    parts = []
    for name, table in sorted(data.items(), key=lambda kv: kv[0].lower()):
        columns = ",".join(
            f"{column.name.lower()}:{column.dtype.name}"
            for column in table.schema
        )
        parts.append(f"{name.lower()}({columns})")
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:8]


def table_fingerprint(table: Table) -> str:
    """A content digest of a (small) table: schema + column bytes."""
    digest = hashlib.sha256()
    for column in table.schema:
        digest.update(column.name.lower().encode("utf-8"))
        values = table.column(column.name)
        digest.update(str(values.dtype).encode("utf-8"))
        digest.update(values.tobytes() if values.dtype != object else
                      repr(values.tolist()).encode("utf-8"))
    return digest.hexdigest()[:16]


def params_key(params: Sequence | Mapping | None) -> tuple:
    """A hashable canonical form of bound parameter values."""
    if params is None:
        return ()
    if isinstance(params, Mapping):
        return tuple(
            (str(name).lstrip("@"), _plain(value))
            for name, value in sorted(params.items(), key=lambda kv: str(kv[0]))
        )
    return tuple(_plain(value) for value in params)


def data_key(data: Mapping[str, Table] | None) -> tuple:
    """A hashable canonical form of per-request data tables."""
    if not data:
        return ()
    return tuple(
        (name.lower(), table_fingerprint(table))
        for name, table in sorted(data.items(), key=lambda kv: kv[0].lower())
    )


def _plain(value: object) -> object:
    # Unwrap numpy scalars so keys compare by value, not wrapper type.
    return value.item() if hasattr(value, "item") else value
