"""Serving metrics: throughput, latency percentiles, batch-size histogram.

The reproducibility bar for a serving claim is a first-class measurement
harness, so the server keeps its own counters rather than leaning on the
benchmark scripts: every request is counted at admission, completion is
timed end-to-end (queue wait + execution), and the micro-batcher reports
the coalesced batch sizes it actually achieved.
"""

from __future__ import annotations

import threading
import time
from collections import Counter


class ServingStats:
    """Thread-safe counters + a bounded latency reservoir."""

    def __init__(self, max_latency_samples: int = 10_000):
        self._lock = threading.Lock()
        self._max_samples = max_latency_samples
        self._latencies: list[float] = []
        self._sample_cursor = 0  # ring-buffer index once the reservoir fills
        self._batch_sizes: Counter[int] = Counter()
        self._started_at = time.perf_counter()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batched_requests = 0
        self.batches = 0
        # Distributed fan-out: per query routed through a Gather, how
        # many shards ran vs. were pruned, plus a latency reservoir of
        # individual fragment executions (dispatch -> result).
        self.shard_queries = 0
        self.shards_scanned = 0
        self.shards_pruned = 0
        self._fragment_latencies: list[float] = []
        self._fragment_cursor = 0

    # -- recording ---------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._record_latency(latency_seconds)

    def record_failed(self, latency_seconds: float) -> None:
        with self._lock:
            self.failed += 1
            self._record_latency(latency_seconds)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self._batch_sizes[size] += 1

    def record_shard_query(
        self,
        shards_scanned: int,
        shards_pruned: int,
        fragment_seconds: list[float] | None = None,
    ) -> None:
        """One query's shard fan-out (the distributed runtime calls this)."""
        with self._lock:
            self.shard_queries += 1
            self.shards_scanned += shards_scanned
            self.shards_pruned += shards_pruned
            for latency in fragment_seconds or ():
                if len(self._fragment_latencies) < self._max_samples:
                    self._fragment_latencies.append(latency)
                else:
                    self._fragment_latencies[self._fragment_cursor] = latency
                    self._fragment_cursor = (
                        self._fragment_cursor + 1
                    ) % self._max_samples

    def fragment_latency_percentile(self, fraction: float) -> float:
        with self._lock:
            samples = sorted(self._fragment_latencies)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def _record_latency(self, latency_seconds: float) -> None:
        if len(self._latencies) < self._max_samples:
            self._latencies.append(latency_seconds)
        else:
            self._latencies[self._sample_cursor] = latency_seconds
            self._sample_cursor = (self._sample_cursor + 1) % self._max_samples

    # -- reporting ---------------------------------------------------------

    def latency_percentile(self, fraction: float) -> float:
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def batch_size_histogram(self) -> dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def snapshot(self) -> dict:
        elapsed = max(time.perf_counter() - self._started_at, 1e-9)
        with self._lock:
            completed = self.completed
            snapshot = {
                "submitted": self.submitted,
                "completed": completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "throughput_rps": completed / elapsed,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch_size": (
                    self.batched_requests / self.batches if self.batches else 0.0
                ),
            }
        with self._lock:
            shard_queries = self.shard_queries
            snapshot["distributed"] = {
                "shard_queries": shard_queries,
                "shards_scanned": self.shards_scanned,
                "shards_pruned": self.shards_pruned,
                "mean_fanout": (
                    self.shards_scanned / shard_queries
                    if shard_queries
                    else 0.0
                ),
            }
        snapshot["distributed"]["fragment_p50_ms"] = (
            self.fragment_latency_percentile(0.50) * 1e3
        )
        snapshot["distributed"]["fragment_p95_ms"] = (
            self.fragment_latency_percentile(0.95) * 1e3
        )
        snapshot["latency_p50_ms"] = self.latency_percentile(0.50) * 1e3
        snapshot["latency_p95_ms"] = self.latency_percentile(0.95) * 1e3
        snapshot["batch_size_histogram"] = self.batch_size_histogram()
        return snapshot
