"""Serving metrics: throughput, latency percentiles, batch-size histogram.

The reproducibility bar for a serving claim is a first-class measurement
harness, so the server keeps its own counters rather than leaning on the
benchmark scripts: every request is counted at admission, completion is
timed end-to-end (queue wait + execution), and the micro-batcher reports
the coalesced batch sizes it actually achieved.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter


class ServingStats:
    """Thread-safe counters + a bounded latency reservoir.

    The reservoirs use Algorithm R: once full, the *n*-th observation
    replaces a uniformly random slot with probability ``k/n``, so the
    sample stays uniform over the whole stream. (The previous
    ring-buffer overwrite skewed ``p50/p95`` toward whichever mix of
    old and new samples the cursor happened to leave behind after
    wraparound.) The RNG is seeded so percentile reports are
    reproducible run-to-run.
    """

    def __init__(self, max_latency_samples: int = 10_000, seed: int = 0x5EED):
        self._lock = threading.Lock()
        self._max_samples = max_latency_samples
        self._rng = random.Random(seed)
        self._latencies: list[float] = []
        self._latencies_seen = 0
        self._batch_sizes: Counter[int] = Counter()
        self._started_at = time.perf_counter()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batched_requests = 0
        self.batches = 0
        # Distributed fan-out: per query routed through a Gather, how
        # many shards ran vs. were pruned, plus a latency reservoir of
        # individual fragment executions (dispatch -> result).
        self.shard_queries = 0
        self.shards_scanned = 0
        self.shards_pruned = 0
        self._fragment_latencies: list[float] = []
        self._fragments_seen = 0
        # Multi-stage fragments: per post-join worker stage (filter /
        # PREDICT / partial aggregate above a bucket join), one latency
        # observation — so p50/p95 of stage time is visible separately
        # from whole-fragment time.
        self._stage_latencies: list[float] = []
        self._stages_seen = 0

    # -- recording ---------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._record_latency(latency_seconds)

    def record_failed(self, latency_seconds: float) -> None:
        with self._lock:
            self.failed += 1
            self._record_latency(latency_seconds)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self._batch_sizes[size] += 1

    def record_shard_query(
        self,
        shards_scanned: int,
        shards_pruned: int,
        fragment_seconds: list[float] | None = None,
        stage_seconds: list[float] | None = None,
    ) -> None:
        """One query's shard fan-out (the distributed runtime calls this)."""
        with self._lock:
            self.shard_queries += 1
            self.shards_scanned += shards_scanned
            self.shards_pruned += shards_pruned
            for latency in fragment_seconds or ():
                self._fragments_seen += 1
                self._reservoir_add(
                    self._fragment_latencies, self._fragments_seen, latency
                )
            for latency in stage_seconds or ():
                self._stages_seen += 1
                self._reservoir_add(
                    self._stage_latencies, self._stages_seen, latency
                )

    def fragment_latency_percentile(self, fraction: float) -> float:
        with self._lock:
            samples = sorted(self._fragment_latencies)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def stage_latency_percentile(self, fraction: float) -> float:
        with self._lock:
            samples = sorted(self._stage_latencies)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def _record_latency(self, latency_seconds: float) -> None:
        self._latencies_seen += 1
        self._reservoir_add(
            self._latencies, self._latencies_seen, latency_seconds
        )

    def _reservoir_add(
        self, reservoir: list[float], seen: int, value: float
    ) -> None:
        """Algorithm R (caller holds the lock and has bumped ``seen``)."""
        if len(reservoir) < self._max_samples:
            reservoir.append(value)
            return
        slot = self._rng.randint(0, seen - 1)
        if slot < self._max_samples:
            reservoir[slot] = value

    # -- reporting ---------------------------------------------------------

    def latency_percentile(self, fraction: float) -> float:
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def batch_size_histogram(self) -> dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def snapshot(self) -> dict:
        elapsed = max(time.perf_counter() - self._started_at, 1e-9)
        with self._lock:
            completed = self.completed
            snapshot = {
                "submitted": self.submitted,
                "completed": completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "throughput_rps": completed / elapsed,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch_size": (
                    self.batched_requests / self.batches if self.batches else 0.0
                ),
            }
        with self._lock:
            shard_queries = self.shard_queries
            snapshot["distributed"] = {
                "shard_queries": shard_queries,
                "shards_scanned": self.shards_scanned,
                "shards_pruned": self.shards_pruned,
                "mean_fanout": (
                    self.shards_scanned / shard_queries
                    if shard_queries
                    else 0.0
                ),
            }
        snapshot["distributed"]["fragment_p50_ms"] = (
            self.fragment_latency_percentile(0.50) * 1e3
        )
        snapshot["distributed"]["fragment_p95_ms"] = (
            self.fragment_latency_percentile(0.95) * 1e3
        )
        with self._lock:
            snapshot["distributed"]["stages_run"] = self._stages_seen
        snapshot["distributed"]["stage_p50_ms"] = (
            self.stage_latency_percentile(0.50) * 1e3
        )
        snapshot["distributed"]["stage_p95_ms"] = (
            self.stage_latency_percentile(0.95) * 1e3
        )
        snapshot["latency_p50_ms"] = self.latency_percentile(0.50) * 1e3
        snapshot["latency_p95_ms"] = self.latency_percentile(0.95) * 1e3
        snapshot["batch_size_histogram"] = self.batch_size_histogram()
        return snapshot
