"""Shared thread-pool sizing for every parallel component.

The executor's chunked PREDICT path, the morsel-parallel scan pipeline,
and the serving micro-batcher all dispatch work onto thread pools. One
helper decides how wide those pools are so a deployment tunes a single
knob (or just inherits the machine size) instead of chasing hard-coded
constants through the stack.
"""

from __future__ import annotations

import os

#: Upper bound on auto-detected pool width. NumPy kernels and in-process
#: scorers release the GIL only partially, so very wide pools past this
#: point add contention, not throughput.
MAX_AUTO_WORKERS = 16


def default_max_workers(cap: int = MAX_AUTO_WORKERS) -> int:
    """Pool width derived from the machine: ``cpu_count`` capped at ``cap``.

    Falls back to 4 when the CPU count is undetectable (containers with
    restricted procfs).
    """
    detected = os.cpu_count() or 4
    return max(1, min(detected, cap))
