"""Shared thread-pool sizing for every parallel component.

The executor's chunked PREDICT path, the morsel-parallel scan pipeline,
and the serving micro-batcher all dispatch work onto thread pools. One
helper decides how wide those pools are so a deployment tunes a single
knob (or just inherits the machine size) instead of chasing hard-coded
constants through the stack.
"""

from __future__ import annotations

import os

#: Upper bound on auto-detected pool width. NumPy kernels and in-process
#: scorers release the GIL only partially, so very wide pools past this
#: point add contention, not throughput.
MAX_AUTO_WORKERS = 16


def default_max_workers(cap: int = MAX_AUTO_WORKERS) -> int:
    """Pool width derived from the machine, capped at ``cap``.

    Prefers the *scheduling affinity* (``os.sched_getaffinity``) over
    the raw CPU count: containerized deployments routinely pin a
    process to a subset of the host's cores (cgroup cpusets), and
    sizing pools from ``os.cpu_count()`` there over-subscribes the
    actual allowance. Falls back to ``cpu_count``, then to 4 when
    neither is detectable (restricted procfs).
    """
    detected: int | None = None
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            detected = len(getaffinity(0)) or None
        except OSError:
            detected = None
    if detected is None:
        detected = os.cpu_count() or 4
    return max(1, min(detected, cap))
