"""Synthetic flight-delay workload (the paper's second dataset).

Follows the Kaggle US-DOT flight-delays shape the paper uses: categorical
carrier / origin / destination airports (one-hot encoded) plus numeric
distance and departure-time features, with a binary "delayed" label. The
categorical width is what makes L1-regularized logistic regression sparse
(Fig. 2(a)) and what model clustering compiles away (Fig. 2(b)).
Deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.linear import LogisticRegression
from repro.ml.pipeline import ColumnTransformer, Pipeline
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.relational.database import Database
from repro.relational.table import Table

FEATURE_NAMES = [
    "carrier",
    "origin",
    "dest",
    "distance",
    "dep_hour",
    "day_of_week",
]

NUM_CARRIERS = 12
NUM_AIRPORTS = 25


@dataclass
class FlightsDataset:
    flights: Table
    features: np.ndarray
    delayed: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.delayed)


def generate(num_rows: int, seed: int = 0) -> FlightsDataset:
    """Generate a seeded flights dataset."""
    rng = np.random.default_rng(seed)
    carrier = rng.integers(0, NUM_CARRIERS, num_rows).astype(np.float64)
    origin = rng.integers(0, NUM_AIRPORTS, num_rows).astype(np.float64)
    dest = rng.integers(0, NUM_AIRPORTS, num_rows).astype(np.float64)
    distance = rng.uniform(100.0, 3000.0, num_rows)
    dep_hour = rng.integers(0, 24, num_rows).astype(np.float64)
    day_of_week = rng.integers(0, 7, num_rows).astype(np.float64)

    # Delay risk: a few bad carriers/airports, evening departures, and
    # long-haul flights. Only some categories matter, so L1 finds zeros.
    carrier_effect = np.where(carrier < 3, 0.8, np.where(carrier < 6, 0.2, -0.4))
    origin_effect = np.where(origin < 5, 0.7, -0.2)
    dest_effect = np.where(dest < 4, 0.6, np.where(dest < 10, 0.0, -0.3))
    score = (
        carrier_effect
        + origin_effect
        + dest_effect
        + 0.6 * (dep_hour > 17)
        + 0.3 * (distance > 1500.0)
        - 0.8
        + rng.normal(0.0, 0.6, num_rows)
    )
    delayed = (score > 0.0).astype(np.float64)

    flights = Table.from_dict(
        {
            "flight_id": np.arange(num_rows, dtype=np.int64),
            "carrier": carrier.astype(np.int64),
            "origin": origin.astype(np.int64),
            "dest": dest.astype(np.int64),
            "distance": distance,
            "dep_hour": dep_hour.astype(np.int64),
            "day_of_week": day_of_week.astype(np.int64),
            "delayed": delayed.astype(np.int64),
        }
    )
    features = np.column_stack(
        [carrier, origin, dest, distance, dep_hour, day_of_week]
    )
    return FlightsDataset(flights, features, delayed)


def train_logistic_pipeline(
    dataset: FlightsDataset,
    penalty: str = "l1",
    C: float = 0.05,
    max_iter: int = 400,
) -> Pipeline:
    """One-hot categoricals + scaled numerics -> logistic regression.

    Smaller ``C`` = stronger L1 = sparser weights; the paper picks two
    operating points (41.75% and 80.96% sparsity) for Fig. 2(a).
    """
    transformer = ColumnTransformer(
        [
            ("onehot", OneHotEncoder(), [0, 1, 2]),  # carrier/origin/dest
            ("scale", StandardScaler(), [3, 4, 5]),  # numeric features
        ]
    )
    pipeline = Pipeline(
        [
            ("featurize", transformer),
            (
                "clf",
                LogisticRegression(penalty=penalty, C=C, max_iter=max_iter),
            ),
        ]
    )
    pipeline.fit(dataset.features, dataset.delayed)
    return pipeline


def pipeline_sparsity(pipeline: Pipeline) -> float:
    """Fraction of zero weights in the final logistic layer."""
    return float(pipeline.final_estimator.sparsity_)


def train_at_sparsity(
    dataset: FlightsDataset,
    target_sparsity: float,
    tolerance: float = 0.08,
    max_iter: int = 400,
) -> Pipeline:
    """Search C until the model's sparsity is near the paper's target."""
    low, high = 1e-4, 10.0
    best = None
    for _ in range(18):
        c = float(np.sqrt(low * high))
        pipeline = train_logistic_pipeline(dataset, C=c, max_iter=max_iter)
        sparsity = pipeline_sparsity(pipeline)
        if best is None or abs(sparsity - target_sparsity) < abs(
            best[1] - target_sparsity
        ):
            best = (pipeline, sparsity)
        if abs(sparsity - target_sparsity) <= tolerance:
            return pipeline
        if sparsity > target_sparsity:
            low = c  # too sparse: weaken regularization
        else:
            high = c
    assert best is not None
    return best[0]


def load_into(database: Database, dataset: FlightsDataset) -> None:
    database.register_table("flights", dataset.flights)


def setup_database(num_rows: int, seed: int = 0, C: float = 0.05):
    """Database + stored flight-delay model; returns (db, dataset, pipe)."""
    dataset = generate(num_rows, seed)
    database = Database()
    load_into(database, dataset)
    pipeline = train_logistic_pipeline(dataset, C=C)
    database.store_model(
        "flight_delay", pipeline, metadata={"feature_names": FEATURE_NAMES}
    )
    return database, dataset, pipeline
