"""Seeded synthetic workloads: hospital length-of-stay and flight delays."""

from repro.data import flights, hospital

__all__ = ["flights", "hospital"]
