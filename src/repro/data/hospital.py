"""Synthetic hospital length-of-stay workload (the paper's running example).

Mirrors the schema of Fig. 1: ``patient_info`` joined with ``blood_tests``
and ``prenatal_tests``, and a model that predicts length of stay from
age/pregnancy/gender/blood-pressure — with the ground truth designed so the
paper's optimizations have something to bite on (the ``pregnant`` branch of
a tree is prunable, ``gender`` becomes dead after pruning).
Deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.pipeline import Pipeline
from repro.ml.preprocessing import StandardScaler
from repro.ml.tree import DecisionTreeClassifier
from repro.relational.database import Database
from repro.relational.table import Table

FEATURE_NAMES = ["age", "pregnant", "gender", "bp", "heart_rate", "glucose"]


@dataclass
class HospitalDataset:
    """Tables plus the raw feature matrix/labels used for training."""

    patient_info: Table
    blood_tests: Table
    prenatal_tests: Table
    features: np.ndarray  # (n, len(FEATURE_NAMES))
    length_of_stay: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.length_of_stay)

    def joined_features(self) -> np.ndarray:
        return self.features


def generate(num_rows: int, seed: int = 0) -> HospitalDataset:
    """Generate a seeded hospital dataset with ``num_rows`` patients."""
    rng = np.random.default_rng(seed)
    ids = np.arange(num_rows, dtype=np.int64)
    age = rng.uniform(16.0, 95.0, num_rows)
    gender = rng.integers(0, 2, num_rows).astype(np.float64)  # 0=F, 1=M
    pregnant = np.where(
        (gender == 0) & (age < 50),
        rng.random(num_rows) < 0.4,
        False,
    ).astype(np.float64)
    bp = rng.normal(125.0, 20.0, num_rows).clip(80.0, 220.0)
    heart_rate = rng.normal(75.0, 12.0, num_rows).clip(40.0, 180.0)
    glucose = rng.normal(100.0, 25.0, num_rows).clip(50.0, 400.0)

    # Length of stay: pregnant patients are driven by blood pressure and
    # age; non-pregnant patients additionally by heart rate. The structure
    # matters for the reproduction: a tree fit on this data only tests
    # heart_rate under the pregnant=0 branch, so pruning with pregnant=1
    # makes the prenatal_tests join eliminable — the Fig. 1 cascade.
    pregnant_branch = np.where(
        bp > 140.0, 9.0, np.where(age > 35.0, 8.0, 3.0)
    )
    non_pregnant_branch = np.where(heart_rate > 95.0, 6.0, 2.0)
    base = np.where(pregnant == 1.0, pregnant_branch, non_pregnant_branch)
    noise = rng.normal(0.0, 0.05, num_rows)
    length_of_stay = np.round(np.clip(base + noise, 1.0, 30.0))

    patient_info = Table.from_dict(
        {
            "id": ids,
            "age": age,
            "pregnant": pregnant.astype(np.int64),
            "gender": gender.astype(np.int64),
        }
    )
    blood_tests = Table.from_dict(
        {"id": ids, "bp": bp, "glucose": glucose}
    )
    prenatal_tests = Table.from_dict(
        {"id": ids, "heart_rate": heart_rate, "marker": rng.normal(size=num_rows)}
    )
    features = np.column_stack([age, pregnant, gender, bp, heart_rate, glucose])
    return HospitalDataset(
        patient_info, blood_tests, prenatal_tests, features, length_of_stay
    )


def train_tree_pipeline(
    dataset: HospitalDataset, max_depth: int = 8, seed: int = 0
) -> Pipeline:
    """The running example's model M: scaler + decision tree."""
    pipeline = Pipeline(
        [
            ("scaler", StandardScaler()),
            (
                "clf",
                DecisionTreeClassifier(max_depth=max_depth, random_state=seed),
            ),
        ]
    )
    pipeline.fit(dataset.features, dataset.length_of_stay)
    return pipeline


def load_into(database: Database, dataset: HospitalDataset) -> None:
    """Register the three tables under their Fig. 1 names."""
    database.register_table("patient_info", dataset.patient_info)
    database.register_table("blood_tests", dataset.blood_tests)
    database.register_table("prenatal_tests", dataset.prenatal_tests)


INFERENCE_QUERY = """
DECLARE @model varbinary(max) = (
    SELECT model FROM scoring_models WHERE model_name = 'duration_of_stay');
WITH data AS (
    SELECT pi.id AS id, pi.age AS age, pi.pregnant AS pregnant,
           pi.gender AS gender, bt.bp AS bp,
           pt.heart_rate AS heart_rate, bt.glucose AS glucose
    FROM patient_info AS pi
    JOIN blood_tests AS bt ON pi.id = bt.id
    JOIN prenatal_tests AS pt ON pi.id = pt.id
)
SELECT d.id, p.length_of_stay
FROM PREDICT(MODEL = @model, DATA = data AS d)
WITH (length_of_stay float) AS p
WHERE d.pregnant = 1 AND p.length_of_stay > 7
"""

QUERY_FEATURE_NAMES = [
    "age",
    "pregnant",
    "gender",
    "bp",
    "heart_rate",
    "glucose",
]


def setup_database(num_rows: int, seed: int = 0, max_depth: int = 8):
    """One-call setup: database + stored model + the Fig. 1 query.

    Returns ``(database, dataset, pipeline)``.
    """
    dataset = generate(num_rows, seed)
    database = Database()
    load_into(database, dataset)
    pipeline = train_tree_pipeline(dataset, max_depth=max_depth, seed=seed)
    database.store_model(
        "duration_of_stay",
        pipeline,
        metadata={"feature_names": QUERY_FEATURE_NAMES},
    )
    return database, dataset, pipeline
