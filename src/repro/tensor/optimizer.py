"""Graph-level optimizations for the tensor runtime.

The compiler-style passes the paper cites (§2, "compiler optimizations
such as constant-folding within ONNX Runtime"):

* **constant folding** — evaluate nodes whose inputs are all initializers
  and replace them by constants; this is also how predicate-derived
  constants get propagated through an NN after the cross-optimizer feeds
  them in,
* **identity elimination** — drop ``Identity`` and arithmetic no-ops
  (``Add 0``, ``Mul 1``),
* **dead code elimination** — remove nodes whose outputs reach no graph
  output,
* **Gemm fusion** — fuse ``MatMul + Add`` into a single ``Gemm``.

Passes are pure: they return a new graph.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.graph import Graph, Node
from repro.tensor.ops import kernel_for


def constant_fold(graph: Graph) -> Graph:
    """Evaluate every node whose inputs are all constants."""
    graph = graph.copy()
    constants = dict(graph.initializers)
    remaining: list[Node] = []
    for node in graph.topological_order():
        if node.inputs and all(name in constants for name in node.inputs):
            values = [constants[name] for name in node.inputs]
            outputs = kernel_for(node.op_type)(values, node.attrs)
            for name, value in zip(node.outputs, outputs):
                constants[name] = np.asarray(value)
        else:
            remaining.append(node)
    graph.nodes = remaining
    graph.initializers = constants
    return prune_unused_initializers(graph)


def eliminate_identities(graph: Graph) -> Graph:
    """Remove Identity nodes and x+0 / x*1 arithmetic no-ops."""
    graph = graph.copy()
    rename: dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in rename:
            name = rename[name]
        return name

    kept: list[Node] = []
    for node in graph.nodes:
        node.inputs = [resolve(i) for i in node.inputs]
        passthrough = None
        if node.op_type == "Identity":
            passthrough = node.inputs[0]
        elif node.op_type in ("Add", "Sub") and len(node.inputs) == 2:
            other = graph.initializers.get(node.inputs[1])
            if other is not None and np.all(other == 0.0):
                passthrough = node.inputs[0]
        elif node.op_type in ("Mul", "Div") and len(node.inputs) == 2:
            other = graph.initializers.get(node.inputs[1])
            if other is not None and np.all(other == 1.0):
                passthrough = node.inputs[0]
        if passthrough is not None and len(node.outputs) == 1:
            rename[node.outputs[0]] = passthrough
        else:
            kept.append(node)
    graph.nodes = kept
    graph.outputs = [resolve(o) for o in graph.outputs]
    # A graph output may now alias an initializer/input directly; keep as is.
    return graph


def eliminate_dead_code(graph: Graph) -> Graph:
    """Drop nodes that no graph output (transitively) depends on."""
    graph = graph.copy()
    needed: set[str] = set(graph.outputs)
    kept_reversed: list[Node] = []
    for node in reversed(graph.topological_order()):
        if any(out in needed for out in node.outputs):
            kept_reversed.append(node)
            needed.update(node.inputs)
    graph.nodes = list(reversed(kept_reversed))
    return prune_unused_initializers(graph)


def prune_unused_initializers(graph: Graph) -> Graph:
    """Drop constants nothing references (outputs keep theirs)."""
    used: set[str] = set(graph.outputs)
    for node in graph.nodes:
        used.update(node.inputs)
    graph.initializers = {
        name: value for name, value in graph.initializers.items() if name in used
    }
    return graph


def fuse_matmul_add(graph: Graph) -> Graph:
    """Fuse ``MatMul(a, w) -> Add(., b)`` chains into ``Gemm``."""
    graph = graph.copy()
    producers = graph.producers()
    consumers = graph.consumers()
    fused: set[int] = set()
    new_nodes: list[Node] = []
    for node in graph.nodes:
        if id(node) in fused:
            continue
        if node.op_type == "MatMul" and len(node.outputs) == 1:
            out = node.outputs[0]
            users = consumers.get(out, [])
            if (
                len(users) == 1
                and users[0].op_type == "Add"
                and users[0].inputs[0] == out
                and out not in graph.outputs
            ):
                add_node = users[0]
                gemm = Node(
                    "Gemm",
                    [node.inputs[0], node.inputs[1], add_node.inputs[1]],
                    list(add_node.outputs),
                    {"alpha": 1.0, "beta": 1.0},
                )
                fused.add(id(add_node))
                new_nodes.append(gemm)
                continue
        new_nodes.append(node)
    graph.nodes = [n for n in new_nodes if id(n) not in fused]
    return graph


DEFAULT_PASSES = (
    eliminate_identities,
    constant_fold,
    fuse_matmul_add,
    eliminate_dead_code,
)


def optimize(graph: Graph, passes=DEFAULT_PASSES, max_rounds: int = 3) -> Graph:
    """Run passes to fixpoint (bounded), like an ORT optimization level."""
    for _ in range(max_rounds):
        before = len(graph.nodes)
        for pass_fn in passes:
            graph = pass_fn(graph)
        if len(graph.nodes) == before:
            break
    graph.validate()
    return graph
