"""Execution devices: real CPU, and an analytically simulated GPU.

The paper's Fig. 2(d) and Fig. 3 compare CPU vs GPU scoring of
NN-translated models on an NVIDIA K80. No GPU exists in this environment,
so the :class:`SimulatedGPU` runs the same NumPy kernels for *correctness*
while accounting *time* with a calibrated analytical model:

    time(run)   = pcie_transfer(inputs + outputs) + sum over ops of
                  max(launch_overhead, flops/throughput, bytes/bandwidth)

This preserves the published shape — launch+transfer bound (slower than
CPU) at small batch sizes, throughput bound (up to ~15x faster) at large
batch sizes — which is the claim under reproduction; absolute numbers are
explicitly out of scope (see DESIGN.md substitution table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.tensor.ops import estimate_cost, kernel_for


@dataclass
class RunStats:
    """Accumulated execution statistics for one session run."""

    wall_seconds: float = 0.0
    simulated_seconds: float = 0.0
    ops_executed: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0
    per_op_seconds: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """The device's authoritative time (simulated if modelled)."""
        return self.simulated_seconds if self.simulated_seconds > 0 else self.wall_seconds


class Device:
    """Base device: executes kernels and accounts their cost."""

    name = "device"
    is_simulated = False

    def run_node(self, op_type: str, inputs: Sequence[np.ndarray], attrs: dict, stats: RunStats):
        raise NotImplementedError

    def account_transfer(self, arrays: Sequence[np.ndarray], stats: RunStats) -> None:
        """Host<->device transfer cost at run boundaries (no-op on CPU)."""


class CPUDevice(Device):
    """Runs kernels directly; time is measured wall clock."""

    name = "cpu"

    def run_node(self, op_type, inputs, attrs, stats: RunStats):
        start = time.perf_counter()
        outputs = kernel_for(op_type)(inputs, attrs)
        elapsed = time.perf_counter() - start
        stats.wall_seconds += elapsed
        stats.ops_executed += 1
        cost = estimate_cost(op_type, inputs)
        stats.flops += cost.flops
        stats.bytes_moved += cost.bytes_moved
        stats.per_op_seconds[op_type] = (
            stats.per_op_seconds.get(op_type, 0.0) + elapsed
        )
        return outputs


class SimulatedGPU(Device):
    """Analytical GPU model over real NumPy kernels.

    Default constants approximate a K80-class accelerator doing fp32-ish
    dense work: ~4 Tflop/s effective matmul throughput, ~200 GB/s memory
    bandwidth, 10 us kernel launch, 6 GB/s effective PCIe.
    """

    name = "gpu(simulated)"
    is_simulated = True

    def __init__(
        self,
        matmul_throughput_flops: float = 4.0e12,
        memory_bandwidth_bytes: float = 200.0e9,
        kernel_launch_seconds: float = 10.0e-6,
        pcie_bandwidth_bytes: float = 6.0e9,
        pcie_latency_seconds: float = 30.0e-6,
    ):
        self.matmul_throughput_flops = matmul_throughput_flops
        self.memory_bandwidth_bytes = memory_bandwidth_bytes
        self.kernel_launch_seconds = kernel_launch_seconds
        self.pcie_bandwidth_bytes = pcie_bandwidth_bytes
        self.pcie_latency_seconds = pcie_latency_seconds

    def run_node(self, op_type, inputs, attrs, stats: RunStats):
        outputs = kernel_for(op_type)(inputs, attrs)
        cost = estimate_cost(op_type, inputs)
        compute = cost.flops / self.matmul_throughput_flops
        memory = cost.bytes_moved / self.memory_bandwidth_bytes
        kernel_time = max(self.kernel_launch_seconds, compute, memory)
        stats.simulated_seconds += kernel_time
        stats.ops_executed += 1
        stats.flops += cost.flops
        stats.bytes_moved += cost.bytes_moved
        stats.per_op_seconds[op_type] = (
            stats.per_op_seconds.get(op_type, 0.0) + kernel_time
        )
        return outputs

    def account_transfer(self, arrays, stats: RunStats) -> None:
        nbytes = float(sum(a.nbytes for a in arrays))
        stats.simulated_seconds += (
            self.pcie_latency_seconds + nbytes / self.pcie_bandwidth_bytes
        )
        stats.bytes_moved += nbytes


def get_device(name: str | Device) -> Device:
    """Resolve a device by name (``'cpu'`` or ``'gpu'``)."""
    if isinstance(name, Device):
        return name
    lowered = name.lower()
    if lowered == "cpu":
        return CPUDevice()
    if lowered in ("gpu", "cuda", "gpu-simulated"):
        return SimulatedGPU()
    from repro.errors import DeviceError

    raise DeviceError(f"unknown device {name!r}")
