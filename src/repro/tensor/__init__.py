"""The tensor substrate: a mini ONNX Runtime.

Graphs of LA operators (:mod:`~repro.tensor.graph`), NumPy kernels
(:mod:`~repro.tensor.ops`), graph optimization passes including constant
folding (:mod:`~repro.tensor.optimizer`), executable sessions
(:mod:`~repro.tensor.session`), CPU + simulated-GPU devices
(:mod:`~repro.tensor.device`), and NN translation of classical ML models
(:mod:`~repro.tensor.converters`).
"""

from repro.tensor.converters import convert
from repro.tensor.device import CPUDevice, SimulatedGPU, get_device
from repro.tensor.graph import Graph, Node
from repro.tensor.optimizer import optimize
from repro.tensor.session import InferenceSession

__all__ = [
    "convert",
    "CPUDevice",
    "Graph",
    "InferenceSession",
    "Node",
    "optimize",
    "SimulatedGPU",
    "get_device",
]
