"""NN translation: compile ML models and featurizers to tensor graphs.

This is the paper's §4.2 "NN translation" — classical ML operators (trees,
linear models) and featurizers (scalers, one-hot encoders) become linear
algebra so they run on the NN runtime, including the (simulated) GPU.

Trees use the GEMM encoding (the same construction this paper's authors
later published as Hummingbird): with A the feature-test matrix, B the
thresholds, C the leaf/ancestor incidence matrix, D the left-turn counts
and V the leaf payload matrix,

    S = cast(X @ A <= B)        # which internal tests pass
    T = S @ C                   # per-leaf path agreement score
    R = cast(T == D)            # exactly one 1 per row: the reached leaf
    Y = R @ V                   # leaf payloads

Every converter returns the name of the tensor holding its output inside
the graph being built; :func:`convert` assembles the full model graph with
a ``prediction`` output (and ``probability`` where applicable).
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnsupportedOpError
from repro.ml.cluster import KMeans
from repro.ml.ensemble import (
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.ml.neural import MLPClassifier, MLPRegressor
from repro.ml.pipeline import ColumnTransformer, FeatureUnion, Pipeline
from repro.ml.preprocessing import (
    Binarizer,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure
from repro.tensor.graph import Graph


def convert(model, n_features: int | None = None, input_name: str = "X") -> Graph:
    """Compile a fitted model/pipeline into a tensor graph.

    The graph takes one 2-D float input named ``input_name`` and produces
    ``prediction`` with shape ``(n, 1)``; classifiers additionally produce
    ``probability`` (class scores, one column per class).
    """
    graph = Graph(inputs=[input_name], outputs=[], name=type(model).__name__)
    final = _convert_any(graph, model, input_name)
    graph.outputs = [final.prediction]
    if final.probability is not None:
        graph.outputs.append(final.probability)
    graph.validate()
    return graph


_PREDICTORS = (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    GradientBoostingRegressor,
    LogisticRegression,
    LinearRegression,
    Ridge,
    Lasso,
    MLPClassifier,
    MLPRegressor,
    KMeans,
)

_TRANSFORMERS = (
    StandardScaler,
    MinMaxScaler,
    Binarizer,
    OneHotEncoder,
    FeatureUnion,
    ColumnTransformer,
)


def supports(model) -> bool:
    """Whether :func:`convert` can translate ``model`` (without trying).

    The optimizer's backend-choice rule uses this to decide if a stored
    ``ml.pipeline`` model is eligible for a compiled scoring backend —
    it must be cheap and must not raise on fitted-attribute access.
    """
    if isinstance(model, Pipeline):
        return all(
            _supports_transformer(step) for _, step in model.steps[:-1]
        ) and supports(model.final_estimator)
    return isinstance(model, _PREDICTORS)


def _supports_transformer(transformer) -> bool:
    if isinstance(transformer, FeatureUnion):
        return all(
            _supports_transformer(sub)
            for _, sub in transformer.transformer_list
        )
    if isinstance(transformer, ColumnTransformer):
        return all(
            _supports_transformer(sub)
            for _name, sub, _columns in transformer.transformers
        )
    return isinstance(transformer, _TRANSFORMERS)


class _Converted:
    """Result of converting a predictor: output tensor names."""

    def __init__(self, prediction: str, probability: str | None = None):
        self.prediction = prediction
        self.probability = probability


# -- dispatcher ----------------------------------------------------------------


def _convert_any(graph: Graph, model, data: str) -> _Converted:
    if isinstance(model, Pipeline):
        for _, step in model.steps[:-1]:
            data = _convert_transformer(graph, step, data)
        return _convert_any(graph, model.final_estimator, data)
    if isinstance(model, (DecisionTreeClassifier,)):
        return _convert_tree_classifier(graph, model, data)
    if isinstance(model, (DecisionTreeRegressor,)):
        return _convert_tree_regressor(graph, model, data)
    if isinstance(model, RandomForestClassifier):
        return _convert_forest_classifier(graph, model, data)
    if isinstance(model, RandomForestRegressor):
        return _convert_forest_regressor(graph, model, data)
    if isinstance(model, GradientBoostingRegressor):
        return _convert_gbr(graph, model, data)
    if isinstance(model, LogisticRegression):
        return _convert_logistic(graph, model, data)
    if isinstance(model, (LinearRegression, Ridge, Lasso)):
        return _convert_linear(graph, model, data)
    if isinstance(model, MLPClassifier):
        return _convert_mlp_classifier(graph, model, data)
    if isinstance(model, MLPRegressor):
        return _convert_mlp_regressor(graph, model, data)
    if isinstance(model, KMeans):
        return _convert_kmeans(graph, model, data)
    raise UnsupportedOpError(
        f"no NN translation for {type(model).__name__}"
    )


def _convert_transformer(graph: Graph, transformer, data: str) -> str:
    if isinstance(transformer, StandardScaler):
        mean = graph.add_initializer(
            graph.fresh_name("mean"), transformer.mean_.reshape(1, -1)
        )
        scale = graph.add_initializer(
            graph.fresh_name("scale"), transformer.scale_.reshape(1, -1)
        )
        centered = graph.add_node("Sub", [data, mean])[0]
        return graph.add_node("Div", [centered, scale])[0]
    if isinstance(transformer, MinMaxScaler):
        low = graph.add_initializer(
            graph.fresh_name("min"), transformer.min_.reshape(1, -1)
        )
        span = graph.add_initializer(
            graph.fresh_name("range"), transformer.range_.reshape(1, -1)
        )
        shifted = graph.add_node("Sub", [data, low])[0]
        return graph.add_node("Div", [shifted, span])[0]
    if isinstance(transformer, Binarizer):
        threshold = graph.add_initializer(
            graph.fresh_name("threshold"),
            np.asarray(float(transformer.threshold)),
        )
        mask = graph.add_node("Greater", [data, threshold])[0]
        return graph.add_node("Cast", [mask], to="float64")[0]
    if isinstance(transformer, OneHotEncoder):
        blocks = []
        for j, categories in enumerate(transformer.categories_):
            column = graph.add_node("Slice", [data], axis=1, start=j, stop=j + 1)[0]
            cats = graph.add_initializer(
                graph.fresh_name("categories"), categories.reshape(1, -1)
            )
            equal = graph.add_node("Equal", [column, cats])[0]
            blocks.append(graph.add_node("Cast", [equal], to="float64")[0])
        if len(blocks) == 1:
            return blocks[0]
        return graph.add_node("Concat", blocks, axis=1)[0]
    if isinstance(transformer, FeatureUnion):
        outputs = [
            _convert_transformer(graph, sub, data)
            for _, sub in transformer.transformer_list
        ]
        if len(outputs) == 1:
            return outputs[0]
        return graph.add_node("Concat", outputs, axis=1)[0]
    if isinstance(transformer, ColumnTransformer):
        blocks = []
        for name, sub, columns in transformer.transformers:
            idx = graph.add_initializer(
                graph.fresh_name("cols"), np.asarray(columns, dtype=np.int64)
            )
            sliced = graph.add_node("Gather", [data, idx], axis=1)[0]
            blocks.append(_convert_transformer(graph, sub, sliced))
        if transformer.remainder == "passthrough":
            rest = transformer._remainder_columns()
            if rest:
                idx = graph.add_initializer(
                    graph.fresh_name("cols"), np.asarray(rest, dtype=np.int64)
                )
                blocks.append(graph.add_node("Gather", [data, idx], axis=1)[0])
        if len(blocks) == 1:
            return blocks[0]
        return graph.add_node("Concat", blocks, axis=1)[0]
    raise UnsupportedOpError(
        f"no NN translation for transformer {type(transformer).__name__}"
    )


# -- trees ---------------------------------------------------------------------


def tree_gemm_matrices(
    tree: TreeStructure, n_features: int, value_matrix: np.ndarray
):
    """The (A, B, C, D, V) matrices of the GEMM tree encoding."""
    internal = np.nonzero(tree.feature != -1)[0]
    internal_pos = {int(node): i for i, node in enumerate(internal)}
    leaves = tree.leaves_dfs()
    leaf_pos = {int(node): i for i, node in enumerate(leaves)}
    n_internal, n_leaves = len(internal), len(leaves)
    A = np.zeros((n_features, max(n_internal, 1)))
    B = np.zeros((1, max(n_internal, 1)))
    for node, i in internal_pos.items():
        A[tree.feature[node], i] = 1.0
        B[0, i] = tree.threshold[node]
    C = np.zeros((max(n_internal, 1), n_leaves))
    D = np.zeros((1, n_leaves))
    paths = tree.paths()
    # paths() and leaves_dfs() enumerate leaves in the same DFS order.
    for leaf_node, conditions in zip(leaves, paths):
        leaf = leaf_pos[leaf_node]
        # Recover internal node ids along the path by replaying it.
        node = 0
        for feature, threshold, goes_left in conditions:
            i = internal_pos[node]
            if goes_left:
                C[i, leaf] = 1.0
                D[0, leaf] += 1.0
                node = int(tree.children_left[node])
            else:
                C[i, leaf] = -1.0
                node = int(tree.children_right[node])
    V = np.vstack([value_matrix[node] for node in leaves])
    return A, B, C, D, V


def _emit_tree(graph: Graph, data: str, tree: TreeStructure, value_matrix, n_features: int) -> str:
    """Emit GEMM-tree nodes; returns the (n, n_out) leaf-payload tensor."""
    A, B, C, D, V = tree_gemm_matrices(tree, n_features, value_matrix)
    if (tree.feature != -1).sum() == 0:
        # Degenerate single-leaf tree: broadcast the constant payload.
        zeros = graph.add_initializer(
            graph.fresh_name("zeros"), np.zeros((n_features, V.shape[1]))
        )
        payload = graph.add_initializer(graph.fresh_name("leaf"), V[:1])
        return graph.add_node("Gemm", [data, zeros, payload])[0]
    a = graph.add_initializer(graph.fresh_name("A"), A)
    b = graph.add_initializer(graph.fresh_name("B"), B)
    c = graph.add_initializer(graph.fresh_name("C"), C)
    d = graph.add_initializer(graph.fresh_name("D"), D)
    v = graph.add_initializer(graph.fresh_name("V"), V)
    scores = graph.add_node("MatMul", [data, a])[0]
    passed = graph.add_node("LessOrEqual", [scores, b])[0]
    s_float = graph.add_node("Cast", [passed], to="float64")[0]
    agreement = graph.add_node("MatMul", [s_float, c])[0]
    reached = graph.add_node("Equal", [agreement, d])[0]
    r_float = graph.add_node("Cast", [reached], to="float64")[0]
    return graph.add_node("MatMul", [r_float, v])[0]


def _classes_prediction(graph: Graph, scores: str, classes: np.ndarray) -> str:
    """ArgMax over class scores, mapped through the class label array."""
    codes = graph.add_node("ArgMax", [scores], axis=-1)[0]
    labels = graph.add_initializer(
        graph.fresh_name("classes"), classes.astype(np.float64)
    )
    picked = graph.add_node("Gather", [labels, codes], axis=0)[0]
    return graph.add_node("Reshape", [picked], shape=[-1, 1])[0]


def _convert_tree_classifier(graph, model: DecisionTreeClassifier, data) -> _Converted:
    proba = _emit_tree(
        graph, data, model.tree_, model.tree_.value, model.n_features_in_
    )
    prediction = _classes_prediction(graph, proba, model.classes_)
    return _Converted(prediction, proba)


def _convert_tree_regressor(graph, model: DecisionTreeRegressor, data) -> _Converted:
    out = _emit_tree(
        graph, data, model.tree_, model.tree_.value, model.n_features_in_
    )
    return _Converted(out)


def _convert_forest_classifier(graph, model: RandomForestClassifier, data) -> _Converted:
    per_tree = []
    for tree in model.estimators_:
        # Expand each tree's class-local payload to forest class space.
        local = tree.tree_.value
        expanded = np.zeros((local.shape[0], len(model.classes_)))
        cols = np.searchsorted(model.classes_, tree.classes_)
        expanded[:, cols] = local
        per_tree.append(
            _emit_tree(graph, data, tree.tree_, expanded, model.n_features_in_)
        )
    total = per_tree[0]
    for other in per_tree[1:]:
        total = graph.add_node("Add", [total, other])[0]
    count = graph.add_initializer(
        graph.fresh_name("n_trees"), np.asarray(float(len(per_tree)))
    )
    proba = graph.add_node("Div", [total, count])[0]
    prediction = _classes_prediction(graph, proba, model.classes_)
    return _Converted(prediction, proba)


def _convert_forest_regressor(graph, model: RandomForestRegressor, data) -> _Converted:
    per_tree = [
        _emit_tree(graph, data, t.tree_, t.tree_.value, model.n_features_in_)
        for t in model.estimators_
    ]
    total = per_tree[0]
    for other in per_tree[1:]:
        total = graph.add_node("Add", [total, other])[0]
    count = graph.add_initializer(
        graph.fresh_name("n_trees"), np.asarray(float(len(per_tree)))
    )
    return _Converted(graph.add_node("Div", [total, count])[0])


def _convert_gbr(graph, model: GradientBoostingRegressor, data) -> _Converted:
    n_features = model.estimators_[0].n_features_in_
    per_tree = [
        _emit_tree(graph, data, t.tree_, t.tree_.value, n_features)
        for t in model.estimators_
    ]
    total = per_tree[0]
    for other in per_tree[1:]:
        total = graph.add_node("Add", [total, other])[0]
    rate = graph.add_initializer(
        graph.fresh_name("lr"), np.asarray(float(model.learning_rate))
    )
    scaled = graph.add_node("Mul", [total, rate])[0]
    base = graph.add_initializer(
        graph.fresh_name("init"), np.asarray(float(model.init_))
    )
    return _Converted(graph.add_node("Add", [scaled, base])[0])


# -- linear and neural -------------------------------------------------------


def _convert_linear(graph, model, data) -> _Converted:
    weights = graph.add_initializer(
        graph.fresh_name("coef"), model.coef_.reshape(-1, 1)
    )
    bias = graph.add_initializer(
        graph.fresh_name("intercept"), np.asarray([[float(model.intercept_)]])
    )
    return _Converted(graph.add_node("Gemm", [data, weights, bias])[0])


def _convert_logistic(graph, model: LogisticRegression, data) -> _Converted:
    weights = graph.add_initializer(
        graph.fresh_name("coef"), model.coef_.reshape(-1, 1)
    )
    bias = graph.add_initializer(
        graph.fresh_name("intercept"), np.asarray([[float(model.intercept_)]])
    )
    logits = graph.add_node("Gemm", [data, weights, bias])[0]
    p1 = graph.add_node("Sigmoid", [logits])[0]
    half = graph.add_initializer(graph.fresh_name("half"), np.asarray(0.5))
    hit = graph.add_node("Greater", [p1, half])[0]
    codes = graph.add_node("Cast", [hit], to="int64")[0]
    flat = graph.add_node("Reshape", [codes], shape=[-1])[0]
    labels = graph.add_initializer(
        graph.fresh_name("classes"), model.classes_.astype(np.float64)
    )
    picked = graph.add_node("Gather", [labels, flat], axis=0)[0]
    prediction = graph.add_node("Reshape", [picked], shape=[-1, 1])[0]
    return _Converted(prediction, p1)


def _emit_mlp_hidden(graph, model, data) -> str:
    activation = "Tanh" if model.activation == "tanh" else "Relu"
    current = data
    for layer in range(len(model.coefs_) - 1):
        w = graph.add_initializer(
            graph.fresh_name("W"), model.coefs_[layer]
        )
        b = graph.add_initializer(
            graph.fresh_name("b"), model.intercepts_[layer].reshape(1, -1)
        )
        z = graph.add_node("Gemm", [current, w, b])[0]
        current = graph.add_node(activation, [z])[0]
    w = graph.add_initializer(graph.fresh_name("W"), model.coefs_[-1])
    b = graph.add_initializer(
        graph.fresh_name("b"), model.intercepts_[-1].reshape(1, -1)
    )
    return graph.add_node("Gemm", [current, w, b])[0]


def _convert_mlp_classifier(graph, model: MLPClassifier, data) -> _Converted:
    logits = _emit_mlp_hidden(graph, model, data)
    proba = graph.add_node("Softmax", [logits], axis=-1)[0]
    prediction = _classes_prediction(graph, proba, model.classes_)
    return _Converted(prediction, proba)


def _convert_mlp_regressor(graph, model: MLPRegressor, data) -> _Converted:
    return _Converted(_emit_mlp_hidden(graph, model, data))


def _convert_kmeans(graph, model: KMeans, data) -> _Converted:
    """Nearest-center assignment as LA: argmin ||x - c||^2 over centers."""
    centers = model.cluster_centers_
    # ||x||^2 is constant across centers, so argmin needs only the
    # cross and center terms: -2 x @ C^T + ||c||^2.
    ct = graph.add_initializer(graph.fresh_name("centersT"), -2.0 * centers.T)
    norms = graph.add_initializer(
        graph.fresh_name("center_norms"),
        (centers**2).sum(axis=1).reshape(1, -1),
    )
    cross = graph.add_node("Gemm", [data, ct, norms])[0]
    negated = graph.add_node("Neg", [cross])[0]
    codes = graph.add_node("ArgMax", [negated], axis=-1)[0]
    cast = graph.add_node("Cast", [codes], to="float64")[0]
    return _Converted(graph.add_node("Reshape", [cast], shape=[-1, 1])[0])
