"""Tensor dataflow graphs (the mini-ONNX model format).

A :class:`Graph` is a DAG of named tensors: graph inputs, constant
initializers, and node outputs. Nodes reference tensors by name, exactly
like ONNX ``GraphProto``. Graphs are the unit stored in the model catalog
under the ``tensor.graph`` flavor and executed by
:class:`repro.tensor.session.InferenceSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphValidationError


@dataclass
class Node:
    """One operator application.

    ``attrs`` holds op-specific attributes (axis, transposition flags...).
    """

    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict = field(default_factory=dict)
    name: str = ""

    def __repr__(self) -> str:
        return (
            f"{self.op_type}({', '.join(self.inputs)}) -> "
            f"{', '.join(self.outputs)}"
        )


class Graph:
    """A tensor computation graph.

    Parameters
    ----------
    inputs:
        Names of runtime-fed tensors.
    outputs:
        Names of tensors returned by a run.
    nodes:
        Operator applications in any order (the session topo-sorts).
    initializers:
        Constant tensors baked into the model (weights, thresholds...).
    """

    def __init__(
        self,
        inputs: list[str],
        outputs: list[str],
        nodes: list[Node] | None = None,
        initializers: dict[str, np.ndarray] | None = None,
        name: str = "graph",
    ):
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.nodes = list(nodes or [])
        self.initializers = dict(initializers or {})
        self.name = name
        self._counter = 0

    # -- construction helpers --------------------------------------------------

    def fresh_name(self, prefix: str = "t") -> str:
        """A tensor name not used anywhere in the graph yet."""
        existing = self.tensor_names()
        while True:
            self._counter += 1
            candidate = f"{prefix}_{self._counter}"
            if candidate not in existing:
                return candidate

    def add_initializer(self, name: str, value: np.ndarray) -> str:
        self.initializers[name] = np.asarray(value)
        return name

    def add_node(
        self,
        op_type: str,
        inputs: list[str],
        outputs: list[str] | None = None,
        **attrs,
    ) -> list[str]:
        """Append a node; generates output names when not given."""
        if outputs is None:
            outputs = [self.fresh_name(op_type.lower())]
        self.nodes.append(Node(op_type, list(inputs), list(outputs), attrs))
        return outputs

    # -- introspection ------------------------------------------------------

    def tensor_names(self) -> set[str]:
        names = set(self.inputs) | set(self.initializers)
        for node in self.nodes:
            names.update(node.outputs)
        return names

    def producers(self) -> dict[str, Node]:
        """Map tensor name -> the node that produces it."""
        result: dict[str, Node] = {}
        for node in self.nodes:
            for out in node.outputs:
                if out in result:
                    raise GraphValidationError(
                        f"tensor {out!r} produced by two nodes"
                    )
                result[out] = node
        return result

    def consumers(self) -> dict[str, list[Node]]:
        """Map tensor name -> nodes that consume it."""
        result: dict[str, list[Node]] = {}
        for node in self.nodes:
            for inp in node.inputs:
                result.setdefault(inp, []).append(node)
        return result

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return counts

    # -- validation and ordering ----------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises on violation."""
        producers = self.producers()
        available = set(self.inputs) | set(self.initializers)
        overlap = set(self.inputs) & set(self.initializers)
        if overlap:
            raise GraphValidationError(
                f"names are both inputs and initializers: {sorted(overlap)}"
            )
        for name in producers:
            if name in available:
                raise GraphValidationError(
                    f"tensor {name!r} is both produced and fed/constant"
                )
        for node in self.nodes:
            for inp in node.inputs:
                if inp not in available and inp not in producers:
                    raise GraphValidationError(
                        f"{node!r} reads undefined tensor {inp!r}"
                    )
        self.topological_order()  # raises on cycles
        all_names = self.tensor_names()
        for out in self.outputs:
            if out not in all_names:
                raise GraphValidationError(f"graph output {out!r} undefined")

    def topological_order(self) -> list[Node]:
        """Nodes in dependency order; raises on cycles."""
        available = set(self.inputs) | set(self.initializers)
        remaining = list(self.nodes)
        ordered: list[Node] = []
        while remaining:
            progressed = False
            still_blocked = []
            for node in remaining:
                if all(inp in available for inp in node.inputs):
                    ordered.append(node)
                    available.update(node.outputs)
                    progressed = True
                else:
                    still_blocked.append(node)
            remaining = still_blocked
            if not progressed:
                blocked = ", ".join(repr(n) for n in remaining[:3])
                raise GraphValidationError(
                    f"cycle or undefined input involving: {blocked}"
                )
        return ordered

    def content_hash(self) -> str:
        """A stable digest of the graph's structure *and* weights.

        Two graphs with equal hashes compute the same function, so the
        hash keys caches that amortize per-graph work (optimization
        memoization, compiled scoring plans) across sessions built from
        identical model bundles.
        """
        import hashlib

        digest = hashlib.sha1()

        def feed(text: str) -> None:
            digest.update(text.encode())
            digest.update(b"\x00")

        feed("|".join(self.inputs))
        feed("|".join(self.outputs))
        for node in self.nodes:
            feed(node.op_type)
            feed("|".join(node.inputs))
            feed("|".join(node.outputs))
            for key in sorted(node.attrs):
                value = node.attrs[key]
                if isinstance(value, np.ndarray):
                    feed(f"{key}=ndarray{value.shape}{value.dtype}")
                    digest.update(np.ascontiguousarray(value).tobytes())
                else:
                    feed(f"{key}={value!r}")
        for name in sorted(self.initializers):
            value = self.initializers[name]
            feed(f"{name}:{value.dtype}:{value.shape}")
            digest.update(np.ascontiguousarray(value).tobytes())
        return digest.hexdigest()

    def copy(self) -> "Graph":
        return Graph(
            list(self.inputs),
            list(self.outputs),
            [
                Node(
                    n.op_type,
                    list(n.inputs),
                    list(n.outputs),
                    dict(n.attrs),
                    n.name,
                )
                for n in self.nodes
            ],
            {k: v.copy() for k, v in self.initializers.items()},
            self.name,
        )

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}, nodes={len(self.nodes)}, "
            f"inputs={self.inputs}, outputs={self.outputs})"
        )

    def pretty(self) -> str:
        lines = [f"graph {self.name}"]
        lines.append(f"  inputs: {', '.join(self.inputs)}")
        for name, value in self.initializers.items():
            lines.append(f"  init {name}: shape {value.shape}")
        for node in self.topological_order():
            lines.append(f"  {node!r}")
        lines.append(f"  outputs: {', '.join(self.outputs)}")
        return "\n".join(lines)
