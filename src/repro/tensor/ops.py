"""Operator kernels for the tensor runtime.

Each kernel is a pure function ``(inputs, attrs) -> outputs`` over NumPy
arrays, registered in :data:`KERNELS` by ONNX-style op name. Kernels also
report a rough cost descriptor (flops + bytes moved) so the simulated GPU
device can price them (see :mod:`repro.tensor.device`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import UnsupportedOpError


@dataclass(frozen=True)
class OpCost:
    """Approximate cost of one kernel invocation."""

    flops: float
    bytes_moved: float


KernelFn = Callable[[Sequence[np.ndarray], dict], list[np.ndarray]]

KERNELS: dict[str, KernelFn] = {}


def register(op_type: str) -> Callable[[KernelFn], KernelFn]:
    """Decorator registering a kernel under an op name."""

    def wrap(fn: KernelFn) -> KernelFn:
        KERNELS[op_type] = fn
        return fn

    return wrap


def kernel_for(op_type: str) -> KernelFn:
    try:
        return KERNELS[op_type]
    except KeyError:
        raise UnsupportedOpError(f"no kernel for op {op_type!r}") from None


def estimate_cost(op_type: str, inputs: Sequence[np.ndarray]) -> OpCost:
    """Flops/bytes estimate used by the simulated GPU cost model."""
    total_bytes = float(sum(x.nbytes for x in inputs))
    if op_type in ("MatMul", "Gemm"):
        a = inputs[0]
        b = inputs[1]
        m = float(np.prod(a.shape[:-1]))
        k = float(a.shape[-1])
        n = float(b.shape[-1] if b.ndim > 1 else 1)
        return OpCost(flops=2.0 * m * k * n, bytes_moved=total_bytes + m * n * 8)
    size = float(max((np.prod(x.shape) for x in inputs), default=0.0))
    if op_type in ("Softmax", "Exp", "Sigmoid", "Tanh"):
        return OpCost(flops=8.0 * size, bytes_moved=2 * total_bytes)
    return OpCost(flops=size, bytes_moved=2 * total_bytes)


# -- elementwise -------------------------------------------------------------


@register("Add")
def _add(inputs, attrs):
    return [inputs[0] + inputs[1]]


@register("Sub")
def _sub(inputs, attrs):
    return [inputs[0] - inputs[1]]


@register("Mul")
def _mul(inputs, attrs):
    return [inputs[0] * inputs[1]]


@register("Div")
def _div(inputs, attrs):
    return [inputs[0] / inputs[1]]


@register("Neg")
def _neg(inputs, attrs):
    return [-inputs[0]]


@register("Exp")
def _exp(inputs, attrs):
    return [np.exp(inputs[0])]


@register("Sqrt")
def _sqrt(inputs, attrs):
    return [np.sqrt(inputs[0])]


@register("Relu")
def _relu(inputs, attrs):
    return [np.maximum(inputs[0], 0.0)]


@register("Tanh")
def _tanh(inputs, attrs):
    return [np.tanh(inputs[0])]


@register("Sigmoid")
def _sigmoid(inputs, attrs):
    x = inputs[0]
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return [out]


@register("Clip")
def _clip(inputs, attrs):
    low = attrs.get("min", -np.inf)
    high = attrs.get("max", np.inf)
    return [np.clip(inputs[0], low, high)]


@register("Identity")
def _identity(inputs, attrs):
    return [inputs[0]]


# -- comparison --------------------------------------------------------------


@register("Greater")
def _greater(inputs, attrs):
    return [inputs[0] > inputs[1]]


@register("GreaterOrEqual")
def _greater_equal(inputs, attrs):
    return [inputs[0] >= inputs[1]]


@register("Less")
def _less(inputs, attrs):
    return [inputs[0] < inputs[1]]


@register("LessOrEqual")
def _less_equal(inputs, attrs):
    return [inputs[0] <= inputs[1]]


@register("Equal")
def _equal(inputs, attrs):
    return [inputs[0] == inputs[1]]


@register("Where")
def _where(inputs, attrs):
    return [np.where(inputs[0].astype(bool), inputs[1], inputs[2])]


@register("Not")
def _not(inputs, attrs):
    return [~inputs[0].astype(bool)]


@register("And")
def _and(inputs, attrs):
    return [inputs[0].astype(bool) & inputs[1].astype(bool)]


@register("Or")
def _or(inputs, attrs):
    return [inputs[0].astype(bool) | inputs[1].astype(bool)]


# -- casts and shapes --------------------------------------------------------


@register("Cast")
def _cast(inputs, attrs):
    dtype = np.dtype(attrs.get("to", "float64"))
    return [inputs[0].astype(dtype)]


@register("Reshape")
def _reshape(inputs, attrs):
    shape = attrs.get("shape")
    if shape is None:
        shape = inputs[1].astype(np.int64).tolist()
    return [inputs[0].reshape(shape)]


@register("Transpose")
def _transpose(inputs, attrs):
    perm = attrs.get("perm")
    return [np.transpose(inputs[0], axes=perm)]


@register("Concat")
def _concat(inputs, attrs):
    axis = attrs.get("axis", -1)
    return [np.concatenate(list(inputs), axis=axis)]


@register("Slice")
def _slice(inputs, attrs):
    """Slice along one axis: attrs start/stop/axis."""
    axis = attrs.get("axis", -1)
    start = attrs.get("start", 0)
    stop = attrs.get("stop")
    index = [slice(None)] * inputs[0].ndim
    index[axis] = slice(start, stop)
    return [inputs[0][tuple(index)]]


@register("Gather")
def _gather(inputs, attrs):
    axis = attrs.get("axis", 0)
    indices = inputs[1].astype(np.int64)
    return [np.take(inputs[0], indices, axis=axis)]


# -- linear algebra ---------------------------------------------------------


@register("MatMul")
def _matmul(inputs, attrs):
    return [inputs[0] @ inputs[1]]


@register("Gemm")
def _gemm(inputs, attrs):
    """``alpha * A' @ B' + beta * C`` with optional transposes."""
    a, b = inputs[0], inputs[1]
    if attrs.get("transA"):
        a = a.T
    if attrs.get("transB"):
        b = b.T
    alpha = attrs.get("alpha", 1.0)
    beta = attrs.get("beta", 1.0)
    out = alpha * (a @ b)
    if len(inputs) > 2:
        out = out + beta * inputs[2]
    return [out]


# -- reductions ---------------------------------------------------------------


@register("ReduceSum")
def _reduce_sum(inputs, attrs):
    axis = attrs.get("axis", None)
    keepdims = bool(attrs.get("keepdims", False))
    return [inputs[0].sum(axis=axis, keepdims=keepdims)]


@register("ReduceMean")
def _reduce_mean(inputs, attrs):
    axis = attrs.get("axis", None)
    keepdims = bool(attrs.get("keepdims", False))
    return [inputs[0].mean(axis=axis, keepdims=keepdims)]


@register("ReduceMax")
def _reduce_max(inputs, attrs):
    axis = attrs.get("axis", None)
    keepdims = bool(attrs.get("keepdims", False))
    return [inputs[0].max(axis=axis, keepdims=keepdims)]


@register("ArgMax")
def _argmax(inputs, attrs):
    axis = attrs.get("axis", -1)
    return [np.argmax(inputs[0], axis=axis)]


@register("Softmax")
def _softmax(inputs, attrs):
    axis = attrs.get("axis", -1)
    shifted = inputs[0] - inputs[0].max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return [exp / exp.sum(axis=axis, keepdims=True)]
