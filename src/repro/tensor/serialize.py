"""JSON serialization of tensor graphs (the on-disk "ONNX file")."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TensorError
from repro.tensor.graph import Graph, Node

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> dict:
    """Encode a graph as JSON-ready primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "initializers": {
            name: {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": value.ravel().tolist(),
            }
            for name, value in graph.initializers.items()
        },
        "nodes": [
            {
                "op_type": node.op_type,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _encode_attrs(node.attrs),
                "name": node.name,
            }
            for node in graph.nodes
        ],
    }


def graph_from_dict(payload: dict) -> Graph:
    """Decode :func:`graph_to_dict` output, validating the result."""
    if payload.get("format_version") != FORMAT_VERSION:
        raise TensorError(
            f"unsupported graph format_version {payload.get('format_version')!r}"
        )
    initializers = {
        name: np.asarray(spec["data"], dtype=spec["dtype"]).reshape(spec["shape"])
        for name, spec in payload["initializers"].items()
    }
    nodes = [
        Node(
            spec["op_type"],
            list(spec["inputs"]),
            list(spec["outputs"]),
            dict(spec.get("attrs", {})),
            spec.get("name", ""),
        )
        for spec in payload["nodes"]
    ]
    graph = Graph(
        payload["inputs"],
        payload["outputs"],
        nodes,
        initializers,
        payload.get("name", "graph"),
    )
    graph.validate()
    return graph


def _encode_attrs(attrs: dict) -> dict:
    encoded = {}
    for key, value in attrs.items():
        if isinstance(value, np.ndarray):
            encoded[key] = value.tolist()
        elif isinstance(value, (np.integer, np.floating)):
            encoded[key] = value.item()
        else:
            encoded[key] = value
    return encoded


def dumps(graph: Graph) -> str:
    return json.dumps(graph_to_dict(graph))


def loads(text: str) -> Graph:
    try:
        return graph_from_dict(json.loads(text))
    except json.JSONDecodeError as exc:
        raise TensorError(f"graph payload is not valid JSON: {exc}") from exc


def save_graph(graph: Graph, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(dumps(graph))
    return path


def load_graph(path: str | Path) -> Graph:
    return loads(Path(path).read_text())
