"""Inference sessions (the mini-ONNX-Runtime API).

An :class:`InferenceSession` owns an optimized copy of a graph, a device,
a scoring backend, and the cached topological order, mirroring ORT's
session object. Creating a session is the expensive step (graph
optimization, fusion pattern matching); running it is cheap — which is
why the database's session cache (Fig. 3, observation ii) matters.

Graph optimization is memoized process-wide by the graph's *content
hash* and pass profile: two sessions built from identical model bundles
(the common case — every worker, every cache-miss rebuild) share one
``optimize()`` run and one optimized graph. The memoized graph is
executed read-only, never mutated.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.errors import TensorError
from repro.observability import events
from repro.tensor.backends import resolve_backend
from repro.tensor.backends.fused import FUSED_PASSES
from repro.tensor.device import Device, RunStats, get_device
from repro.tensor.graph import Graph, Node
from repro.tensor.optimizer import DEFAULT_PASSES, optimize

#: ``(content_hash, pass_profile) -> (optimized graph, topo order)``.
#: Compiled backends optimize under :data:`FUSED_PASSES` (see
#: :mod:`repro.tensor.backends.fused`), so the profile is part of the key.
_OPT_MEMO: OrderedDict[tuple[str, str], tuple[Graph, list[Node]]] = OrderedDict()
_OPT_MEMO_LOCK = threading.Lock()
_OPT_MEMO_CAPACITY = 128


def _optimized_graph(graph: Graph, profile: str) -> tuple[Graph, list[Node]]:
    key = (graph.content_hash(), profile)
    with _OPT_MEMO_LOCK:
        cached = _OPT_MEMO.get(key)
        if cached is not None:
            _OPT_MEMO.move_to_end(key)
    if cached is not None:
        events.emit(
            "session_cache.graph_opt_hit", graph=graph.name, profile=profile
        )
        return cached
    events.emit(
        "session_cache.graph_opt_miss", graph=graph.name, profile=profile
    )
    passes = FUSED_PASSES if profile == "fused" else DEFAULT_PASSES
    optimized = optimize(graph.copy(), passes=passes)
    order = optimized.topological_order()
    with _OPT_MEMO_LOCK:
        _OPT_MEMO[key] = (optimized, order)
        while len(_OPT_MEMO) > _OPT_MEMO_CAPACITY:
            _OPT_MEMO.popitem(last=False)
    return optimized, order


def clear_optimization_memo() -> None:
    """Drop memoized optimized graphs (tests, memory pressure)."""
    with _OPT_MEMO_LOCK:
        _OPT_MEMO.clear()


class InferenceSession:
    """Executable form of a tensor graph."""

    def __init__(
        self,
        graph: Graph,
        device: str | Device = "cpu",
        optimize_graph: bool = True,
        backend: str = "numpy",
    ):
        graph.validate()
        self.device: Device = get_device(device) if not isinstance(device, Device) else device
        self.backend = (backend or "numpy").lower()
        profile = "fused" if self.backend in ("fused", "numba") else "default"
        if optimize_graph:
            self.graph, self._order = _optimized_graph(graph, profile)
        else:
            self.graph = graph.copy()
            self._order = self.graph.topological_order()
        self._executor, self.effective_backend = resolve_backend(
            self.backend, self.graph, self._order, self.device
        )
        self.last_run_stats: RunStats | None = None

    @property
    def input_names(self) -> list[str]:
        return list(self.graph.inputs)

    @property
    def output_names(self) -> list[str]:
        return list(self.graph.outputs)

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Sequence[str] | None = None,
    ) -> list[np.ndarray]:
        """Execute the graph; returns requested outputs in order."""
        wanted = list(outputs) if outputs is not None else self.output_names
        stats = RunStats()
        tensors: dict[str, np.ndarray] = dict(self.graph.initializers)
        rows = 0
        for name in self.graph.inputs:
            if name not in feeds:
                raise TensorError(f"missing feed for graph input {name!r}")
            fed = np.asarray(feeds[name])
            tensors[name] = fed
            if fed.ndim >= 1:
                rows = max(rows, int(fed.shape[0]))
        self.device.account_transfer(
            [tensors[name] for name in self.graph.inputs], stats
        )
        self._executor.execute(tensors, stats)
        produced = []
        for name in wanted:
            if name not in tensors:
                raise TensorError(f"unknown output {name!r}")
            produced.append(tensors[name])
        self.device.account_transfer(produced, stats)
        self.last_run_stats = stats
        if events.BUS.active:
            events.emit(
                "backend.run",
                backend=self.effective_backend,
                requested=self.backend,
                device=self.device.name,
                rows=rows,
                seconds=stats.seconds,
            )
        return produced

    def run_single(self, feed: np.ndarray) -> np.ndarray:
        """Feed the sole input, return the sole output (convenience)."""
        if len(self.graph.inputs) != 1:
            raise TensorError(
                f"run_single needs exactly one input, graph has "
                f"{len(self.graph.inputs)}"
            )
        return self.run({self.graph.inputs[0]: feed})[0]

    def benchmark(self, feeds: Mapping[str, np.ndarray], repeats: int = 3) -> float:
        """Median authoritative run time over ``repeats`` runs (seconds)."""
        times = []
        for _ in range(repeats):
            self.run(feeds)
            assert self.last_run_stats is not None
            times.append(self.last_run_stats.seconds)
        return float(np.median(times))
