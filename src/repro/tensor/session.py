"""Inference sessions (the mini-ONNX-Runtime API).

An :class:`InferenceSession` owns an optimized copy of a graph, a device,
and the cached topological order, mirroring ORT's session object. Creating
a session is the expensive step (graph optimization); running it is cheap —
which is why the database's session cache (Fig. 3, observation ii) matters.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import TensorError
from repro.tensor.device import Device, RunStats, get_device
from repro.tensor.graph import Graph
from repro.tensor.optimizer import optimize


class InferenceSession:
    """Executable form of a tensor graph."""

    def __init__(
        self,
        graph: Graph,
        device: str | Device = "cpu",
        optimize_graph: bool = True,
    ):
        graph.validate()
        self.device: Device = get_device(device) if not isinstance(device, Device) else device
        self.graph = optimize(graph.copy()) if optimize_graph else graph.copy()
        self._order = self.graph.topological_order()
        self.last_run_stats: RunStats | None = None

    @property
    def input_names(self) -> list[str]:
        return list(self.graph.inputs)

    @property
    def output_names(self) -> list[str]:
        return list(self.graph.outputs)

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Sequence[str] | None = None,
    ) -> list[np.ndarray]:
        """Execute the graph; returns requested outputs in order."""
        wanted = list(outputs) if outputs is not None else self.output_names
        stats = RunStats()
        tensors: dict[str, np.ndarray] = dict(self.graph.initializers)
        for name in self.graph.inputs:
            if name not in feeds:
                raise TensorError(f"missing feed for graph input {name!r}")
            tensors[name] = np.asarray(feeds[name])
        self.device.account_transfer(
            [tensors[name] for name in self.graph.inputs], stats
        )
        for node in self._order:
            values = [tensors[name] for name in node.inputs]
            results = self.device.run_node(node.op_type, values, node.attrs, stats)
            for name, value in zip(node.outputs, results):
                tensors[name] = np.asarray(value)
        produced = []
        for name in wanted:
            if name not in tensors:
                raise TensorError(f"unknown output {name!r}")
            produced.append(tensors[name])
        self.device.account_transfer(produced, stats)
        self.last_run_stats = stats
        return produced

    def run_single(self, feed: np.ndarray) -> np.ndarray:
        """Feed the sole input, return the sole output (convenience)."""
        if len(self.graph.inputs) != 1:
            raise TensorError(
                f"run_single needs exactly one input, graph has "
                f"{len(self.graph.inputs)}"
            )
        return self.run({self.graph.inputs[0]: feed})[0]

    def benchmark(self, feeds: Mapping[str, np.ndarray], repeats: int = 3) -> float:
        """Median authoritative run time over ``repeats`` runs (seconds)."""
        times = []
        for _ in range(repeats):
            self.run(feeds)
            assert self.last_run_stats is not None
            times.append(self.last_run_stats.seconds)
        return float(np.median(times))
