"""The numba backend: JIT tree-walking kernels over the fused plan.

Reuses the fused backend's ensemble matcher and stacked matrices, but
replaces stages 2-3 (the batched path-count matmuls) with a parallel
JIT kernel that walks each tree's padded leaf table with an early
break on the first match — O(leaves visited) instead of the dense
O(nodes x leaves) GEMM, and no intermediate (trees, rows, leaves)
tensors at all.

numba is strictly optional: the import is guarded, the kernel compiles
lazily on first use, and any failure (missing numba, unsupported
platform, compile error) permanently downgrades the executor to the
fused numpy stages — same results, no exception escapes. The memo only
*offers* this backend when :func:`numba_available` is true, so the
fallback path normally exists only for explicit ``backend="numba"``
requests on hosts without numba.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.tensor.device import Device, RunStats
from repro.tensor.graph import Graph, Node
from repro.tensor.backends.fused import FusedExecutor, TreeEnsembleStep

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None


def numba_available() -> bool:
    return _numba is not None


_kernel = None
_kernel_failed = False
_kernel_lock = threading.Lock()


def _get_kernel():
    """Compile the ensemble kernel once per process; ``None`` on failure."""
    global _kernel, _kernel_failed
    if _kernel is not None or _kernel_failed or _numba is None:
        return _kernel
    with _kernel_lock:
        if _kernel is not None or _kernel_failed:
            return _kernel
        try:
            @_numba.njit(parallel=True, fastmath=False, cache=False)
            def kernel(s, c, d, v, out):  # pragma: no cover - jitted
                rows = s.shape[0]
                trees = c.shape[0]
                m = c.shape[1]
                leaves = c.shape[2]
                width = v.shape[2]
                for i in _numba.prange(rows):
                    for t in range(trees):
                        base = t * m
                        for j in range(leaves):
                            acc = 0.0
                            for q in range(m):
                                acc += s[i, base + q] * c[t, q, j]
                            if acc == d[t, j]:
                                for o in range(width):
                                    out[i, o] += v[t, j, o]
                                break

            # Force compilation now so failure is caught here, not
            # mid-query.
            kernel(
                np.zeros((1, 1)), np.zeros((1, 1, 1)),
                np.full((1, 1), np.inf), np.zeros((1, 1, 1)),
                np.zeros((1, 1)),
            )
            _kernel = kernel
        except Exception:
            _kernel_failed = True
    return _kernel


class NumbaTreeStep:
    """JIT replacement for one fused ensemble step (combined sums only)."""

    def __init__(self, inner: TreeEnsembleStep):
        self.inner = inner
        self.skip_nodes = inner.skip_nodes
        self.d_flat = np.ascontiguousarray(inner.d_pad.reshape(inner.trees, inner.l_max))

    def run(self, tensors: dict, stats: RunStats, local: threading.local) -> None:
        kernel = _get_kernel()
        inner = self.inner
        if kernel is None or inner.combined_output is None:
            inner.run(tensors, stats, local)
            return
        start = time.perf_counter()
        x = np.asarray(tensors[inner.data], dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        rows = x.shape[0]
        s, _buffers = inner.leaf_indicators(x, local)
        out = np.zeros((rows, inner.n_out))
        try:
            kernel(s, inner.c_pad, self.d_flat, inner.v_pad, out)
        except Exception:
            inner.run(tensors, stats, local)
            return
        tensors[inner.combined_output] = out
        elapsed = time.perf_counter() - start
        stats.wall_seconds += elapsed
        stats.ops_executed += 1
        stats.flops += 2.0 * rows * (
            inner.a_stack.shape[0] * inner.a_stack.shape[1]
            + inner.trees * inner.m_max * inner.l_max
        )
        stats.bytes_moved += float(x.nbytes + s.nbytes + out.nbytes)
        stats.per_op_seconds["NumbaTreeEnsemble"] = (
            stats.per_op_seconds.get("NumbaTreeEnsemble", 0.0) + elapsed
        )


class NumbaExecutor(FusedExecutor):
    """Fused plan with JIT ensemble steps where the kernel applies."""

    name = "numba"

    def __init__(self, graph: Graph, order: list[Node], device: Device):
        super().__init__(graph, order, device)
        self.plan = [
            ("tree", NumbaTreeStep(step))
            if kind == "tree" and step.combined_output is not None
            else (kind, step)
            for kind, step in self.plan
        ]
