"""The fused backend: graph-level fusion + tree-ensemble tensorization.

Two fusions run at session-build time, both found by pattern-matching
the optimized graph:

1. **Tree-ensemble -> GEMM** (Hummingbird's strategy). The converter
   emits every decision tree as the same 7-op chain::

       MatMul(X, A) -> LessOrEqual(., B) -> Cast -> MatMul(., C)
         -> Equal(., D) -> Cast -> MatMul(., V)

   Per tree that is 3 small matmuls plus elementwise glue — 7 kernel
   dispatches and 6 intermediate allocations *per tree*, which is why
   a 100-tree forest is dispatch-bound under the interpreter. The
   fused backend stacks every tree over the same input into block
   matrices at build time (padded to the widest tree) and scores the
   whole ensemble with **three** batched matmuls, summing the trees in
   one reduction when the graph combines them with an Add chain.

2. **Elementwise chains.** Maximal runs of single-stream elementwise
   ops (scaler arithmetic, activations, casts) execute as one step:
   the intermediate tensors stay in registers-of-the-loop (local
   variables), skipping the per-node device dispatch and the tensor
   dictionary traffic.

Exactness: the one-hot rows of ``A`` make stage 1 an exact gather; the
path-sum ``S @ C`` is a small integer count in float64, so the ``== D``
match is exact. Only the final tree summation differs in order from
the interpreted graph (pairwise vs. single reduction) — within normal
fp tolerance.

Everything the matcher does not recognize falls back to per-node
device execution, so the fused backend accepts *any* valid graph.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.tensor.device import Device, RunStats
from repro.tensor.graph import Graph, Node
from repro.tensor.ops import KERNELS, estimate_cost
from repro.tensor.optimizer import DEFAULT_PASSES

#: Pass profile compiled backends optimize under: everything except
#: ``fuse_matmul_add`` — that pass rewrites the first tree's final
#: MatMul + combining Add into a Gemm, destroying the 7-op chain the
#: ensemble matcher keys on (the backend's own fusion strictly
#: supersedes it).
FUSED_PASSES = tuple(
    p for p in DEFAULT_PASSES if p.__name__ != "fuse_matmul_add"
)

_FLOAT_CASTS = ("float64", "float32", "double", "float")

#: Elementwise ops fusable into a single-stream chain. Multi-input ops
#: qualify only when every other operand is a constant initializer.
_ELEMENTWISE = {
    "Add", "Sub", "Mul", "Div", "Neg", "Exp", "Sqrt", "Relu",
    "Tanh", "Sigmoid", "Cast", "Clip", "Identity",
}


class _TreeChain:
    """One matched 7-op tree chain and its GEMM matrices."""

    __slots__ = ("data", "a", "b", "c", "d", "v", "nodes", "output")

    def __init__(self, data, a, b, c, d, v, nodes, output):
        self.data = data
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.v = v
        self.nodes = nodes
        self.output = output


class TreeEnsembleStep:
    """All trees of one ensemble, stacked into padded block matrices.

    Stage 1 runs on a ``(features, trees*nodes)`` block; stages 2-3 run
    batched over the tree axis. Padding is inert by construction: zero
    columns of ``A`` compare against ``-1`` thresholds (never true),
    phantom leaves carry ``+inf`` path counts (never matched) and zero
    values.

    Rows are processed in :data:`CHUNK`-sized slices: the indicator
    block and the per-tree intermediates for a wide forest over a large
    scan run tens of MB each, so one-shot buffers evict between stages
    and every stage becomes a DRAM round-trip. Chunk-sized scratch stays
    cache-resident across all four stages.
    """

    #: Rows per kernel pass over stages 1-4.
    CHUNK = 512

    def __init__(self, chains: list[_TreeChain], combined_output: str | None,
                 skip_nodes: list[Node]):
        self.chains = chains
        self.data = chains[0].data
        self.combined_output = combined_output
        self.skip_nodes = skip_nodes
        trees = len(chains)
        n_features = chains[0].a.shape[0]
        n_out = chains[0].v.shape[1]
        m_max = max(c.a.shape[1] for c in chains)
        l_max = max(c.v.shape[0] for c in chains)
        self.trees = trees
        self.m_max = m_max
        self.l_max = l_max
        self.n_out = n_out
        self.a_stack = np.zeros((n_features, trees * m_max))
        self.b_stack = np.full(trees * m_max, -1.0)
        self.c_pad = np.zeros((trees, m_max, l_max))
        self.d_pad = np.full((trees, 1, l_max), np.inf)
        self.v_pad = np.zeros((trees, l_max, n_out))
        for t, chain in enumerate(chains):
            m = chain.a.shape[1]
            leaves = chain.v.shape[0]
            self.a_stack[:, t * m_max:t * m_max + m] = chain.a
            self.b_stack[t * m_max:t * m_max + m] = np.ravel(chain.b)
            self.c_pad[t, :m, :leaves] = chain.c
            self.d_pad[t, 0, :leaves] = np.ravel(chain.d)
            self.v_pad[t, :leaves, :] = chain.v

    def _cache(self, local: threading.local) -> dict:
        cache = getattr(local, "buffers", None)
        if cache is None:
            cache = local.buffers = {}
        return cache.setdefault(id(self), {})

    def _buffers(self, local: threading.local, rows: int):
        chunk = min(rows, self.CHUNK)
        shapes = {
            "s": (chunk, self.trees * self.m_max),
            "t": (self.trees, chunk, self.l_max),
            "r": (self.trees, chunk, self.l_max),
            "p": (self.trees, chunk, self.n_out),
        }
        mine = self._cache(local)
        for key, shape in shapes.items():
            buf = mine.get(key)
            if buf is None or buf.shape != shape:
                mine[key] = np.empty(shape)
        return mine

    def leaf_indicators(self, x: np.ndarray, local: threading.local):
        """Stage 1 for all rows: the ``(rows, trees*nodes)`` 0/1 block.

        Unchunked — callers that fuse the remaining stages into a single
        kernel (the numba backend) consume the whole block at once.
        """
        mine = self._cache(local)
        shape = (x.shape[0], self.trees * self.m_max)
        s = mine.get("s_full")
        if s is None or s.shape != shape:
            s = mine["s_full"] = np.empty(shape)
        np.matmul(x, self.a_stack, out=s)
        np.less_equal(s, self.b_stack, out=s, casting="unsafe")
        return s, mine

    def run(self, tensors: dict, stats: RunStats, local: threading.local) -> None:
        start = time.perf_counter()
        x = np.asarray(tensors[self.data], dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        rows = x.shape[0]
        buffers = self._buffers(local, rows)
        s, t3, r, p = buffers["s"], buffers["t"], buffers["r"], buffers["p"]
        # Outputs are fresh arrays, never views of the reusable scratch:
        # a downstream view (Reshape/Slice) may escape as a graph output
        # and must not alias buffers the next run clobbers.
        combined = None
        per_tree = None
        if self.combined_output is not None:
            combined = np.empty((rows, self.n_out))
        else:
            per_tree = [np.empty((rows, self.n_out)) for _ in self.chains]
        for lo in range(0, rows, self.CHUNK):
            hi = min(lo + self.CHUNK, rows)
            n = hi - lo
            sv, tv, rv, pv = s[:n], t3[:, :n], r[:, :n], p[:, :n]
            np.matmul(x[lo:hi], self.a_stack, out=sv)
            np.less_equal(sv, self.b_stack, out=sv, casting="unsafe")
            s3 = sv.reshape(n, self.trees, self.m_max).transpose(1, 0, 2)
            np.matmul(s3, self.c_pad, out=tv)
            np.equal(tv, self.d_pad, out=rv, casting="unsafe")
            np.matmul(rv, self.v_pad, out=pv)
            if combined is not None:
                pv.sum(axis=0, out=combined[lo:hi])
            else:
                for t in range(self.trees):
                    per_tree[t][lo:hi] = pv[t]
        if combined is not None:
            tensors[self.combined_output] = combined
        else:
            for t, chain in enumerate(self.chains):
                tensors[chain.output] = per_tree[t]
        self._account(stats, rows, time.perf_counter() - start, x)

    def _account(self, stats: RunStats, rows: int, elapsed: float,
                 x: np.ndarray) -> None:
        stats.wall_seconds += elapsed
        stats.ops_executed += 1
        flops = 2.0 * rows * (
            self.a_stack.shape[0] * self.a_stack.shape[1]
            + self.trees * self.m_max * self.l_max
            + self.trees * self.l_max * self.n_out
        )
        stats.flops += flops
        stats.bytes_moved += float(
            x.nbytes + rows * self.trees * (self.m_max + 2 * self.l_max + self.n_out) * 8
        )
        stats.per_op_seconds["FusedTreeEnsemble"] = (
            stats.per_op_seconds.get("FusedTreeEnsemble", 0.0) + elapsed
        )


class ElementwiseChainStep:
    """A run of single-stream elementwise nodes executed as one step."""

    def __init__(self, nodes: list[Node], constants: dict):
        self.nodes = nodes
        self.constants = constants
        self.output = nodes[-1].outputs[0]

    def run(self, tensors: dict, stats: RunStats, local: threading.local) -> None:
        start = time.perf_counter()
        produced = {}
        value = None
        for node in self.nodes:
            values = []
            for name in node.inputs:
                if name in produced:
                    values.append(produced[name])
                elif name in self.constants:
                    values.append(self.constants[name])
                else:
                    values.append(tensors[name])
            value = np.asarray(KERNELS[node.op_type](values, node.attrs)[0])
            produced[node.outputs[0]] = value
            cost = estimate_cost(node.op_type, values)
            stats.flops += cost.flops
            stats.bytes_moved += cost.bytes_moved
        tensors[self.output] = value
        elapsed = time.perf_counter() - start
        stats.wall_seconds += elapsed
        stats.ops_executed += 1
        stats.per_op_seconds["FusedElementwise"] = (
            stats.per_op_seconds.get("FusedElementwise", 0.0) + elapsed
        )


class FusedExecutor:
    """Pattern-matched fused execution with per-node fallback."""

    name = "fused"

    def __init__(self, graph: Graph, order: list[Node], device: Device):
        self.graph = graph
        self.device = device
        self.plan = _build_plan(graph, order)
        self._local = threading.local()
        self.fused_tree_steps = sum(
            1 for kind, _ in self.plan if kind == "tree"
        )
        self.fused_chain_steps = sum(
            1 for kind, _ in self.plan if kind == "chain"
        )

    def execute(self, tensors: dict, stats: RunStats) -> None:
        device = self.device
        local = self._local
        for kind, step in self.plan:
            if kind == "node":
                values = [tensors[name] for name in step.inputs]
                results = device.run_node(
                    step.op_type, values, step.attrs, stats
                )
                for name, value in zip(step.outputs, results):
                    tensors[name] = np.asarray(value)
            else:
                step.run(tensors, stats, local)


# -- plan construction -------------------------------------------------------


def _build_plan(graph: Graph, order: list[Node]):
    consumers = graph.consumers()
    outputs = set(graph.outputs)
    inits = graph.initializers

    chains: list[_TreeChain] = []
    claimed: set[int] = set()
    for node in order:
        chain = _match_tree_chain(node, graph, consumers, outputs, claimed)
        if chain is not None:
            chains.append(chain)
            claimed.update(id(n) for n in chain.nodes)

    steps: dict[int, tuple[str, object]] = {}
    skip: set[int] = set()
    groups: dict[tuple, list[_TreeChain]] = {}
    for chain in chains:
        key = (chain.data, chain.a.shape[0], chain.v.shape[1])
        groups.setdefault(key, []).append(chain)
    for group in groups.values():
        combined, add_nodes = _match_combiner(group, consumers, outputs)
        step = TreeEnsembleStep(
            group,
            combined,
            [n for c in group for n in c.nodes] + add_nodes,
        )
        members = {id(n) for n in step.skip_nodes}
        first = next(n for n in order if id(n) in members)
        steps[id(first)] = ("tree", step)
        skip.update(members)

    for run in _elementwise_runs(order, graph, consumers, outputs, skip):
        step = ElementwiseChainStep(run, inits)
        steps[id(run[0])] = ("chain", step)
        skip.update(id(n) for n in run)

    plan: list[tuple[str, object]] = []
    for node in order:
        fused = steps.get(id(node))
        if fused is not None:
            plan.append(fused)
        elif id(node) not in skip:
            plan.append(("node", node))
    return plan


def _sole_consumer(name: str, consumers: dict, outputs: set) -> Node | None:
    if name in outputs:
        return None
    found = consumers.get(name, [])
    return found[0] if len(found) == 1 else None


def _match_tree_chain(start: Node, graph: Graph, consumers: dict,
                      outputs: set, claimed: set) -> _TreeChain | None:
    if id(start) in claimed or start.op_type != "MatMul":
        return None
    if len(start.inputs) != 2:
        return None
    data, a_name = start.inputs
    inits = graph.initializers
    if data in inits or a_name not in inits:
        return None
    a = inits[a_name]
    if a.ndim != 2:
        return None

    nodes = [start]

    def follow(node: Node, op_type: str) -> Node | None:
        nxt = _sole_consumer(node.outputs[0], consumers, outputs)
        if nxt is None or nxt.op_type != op_type or id(nxt) in claimed:
            return None
        if nxt.inputs[0] != node.outputs[0]:
            return None
        return nxt

    le = follow(start, "LessOrEqual")
    if le is None or len(le.inputs) != 2 or le.inputs[1] not in inits:
        return None
    b = inits[le.inputs[1]]
    cast1 = follow(le, "Cast")
    if cast1 is None or cast1.attrs.get("to", "float64") not in _FLOAT_CASTS:
        return None
    mm2 = follow(cast1, "MatMul")
    if mm2 is None or len(mm2.inputs) != 2 or mm2.inputs[1] not in inits:
        return None
    c = inits[mm2.inputs[1]]
    eq = follow(mm2, "Equal")
    if eq is None or len(eq.inputs) != 2 or eq.inputs[1] not in inits:
        return None
    d = inits[eq.inputs[1]]
    cast2 = follow(eq, "Cast")
    if cast2 is None or cast2.attrs.get("to", "float64") not in _FLOAT_CASTS:
        return None
    mm3 = follow(cast2, "MatMul")
    if mm3 is None or len(mm3.inputs) != 2 or mm3.inputs[1] not in inits:
        return None
    v = inits[mm3.inputs[1]]

    m = a.shape[1]
    leaves = v.shape[0] if v.ndim == 2 else 0
    if (
        v.ndim != 2
        or np.ravel(b).size != m
        or c.shape != (m, leaves)
        or np.ravel(d).size != leaves
    ):
        return None
    nodes.extend([le, cast1, mm2, eq, cast2, mm3])
    return _TreeChain(data, a, np.ravel(b).astype(np.float64), c,
                      np.ravel(d).astype(np.float64), v, nodes,
                      mm3.outputs[0])


def _match_combiner(group: list[_TreeChain], consumers: dict,
                    outputs: set) -> tuple[str | None, list[Node]]:
    """Absorb the Add tree summing every chain output, if one exists.

    Returns ``(combined_output_name, add_nodes)``; ``(None, [])`` when
    the trees' outputs are consumed some other way (or there is only
    one tree, where a combiner cannot exist).
    """
    if len(group) < 2:
        return None, []
    produced = {c.output for c in group}
    add_nodes: list[Node] = []
    while len(produced) > 1:
        candidate = None
        for name in produced:
            node = _sole_consumer(name, consumers, outputs)
            if node is None or node.op_type != "Add" or node.attrs:
                continue
            if len(node.inputs) != 2 or len(node.outputs) != 1:
                continue
            left, right = node.inputs
            if left not in produced or right not in produced:
                continue
            if (
                _sole_consumer(left, consumers, outputs) is node
                and _sole_consumer(right, consumers, outputs) is node
            ):
                candidate = node
                break
        if candidate is None:
            return None, []
        add_nodes.append(candidate)
        produced.discard(candidate.inputs[0])
        produced.discard(candidate.inputs[1])
        produced.add(candidate.outputs[0])
    return next(iter(produced)), add_nodes


def _elementwise_runs(order: list[Node], graph: Graph, consumers: dict,
                      outputs: set, skip: set) -> list[list[Node]]:
    inits = graph.initializers

    def eligible(node: Node) -> bool:
        if id(node) in skip or node.op_type not in _ELEMENTWISE:
            return False
        if len(node.outputs) != 1:
            return False
        streams = [n for n in node.inputs if n not in inits]
        return len(streams) <= 1

    runs = []
    in_run: set[int] = set()
    for node in order:
        if id(node) in in_run or not eligible(node):
            continue
        run = [node]
        current = node
        while True:
            nxt = _sole_consumer(current.outputs[0], consumers, outputs)
            if nxt is None or id(nxt) in in_run or not eligible(nxt):
                break
            if current.outputs[0] not in [
                n for n in nxt.inputs if n not in inits
            ]:
                break
            run.append(nxt)
            current = nxt
        if len(run) >= 2:
            runs.append(run)
            in_run.update(id(n) for n in run)
    return runs
