"""The interpreted numpy backend (the default).

One :func:`~repro.tensor.ops.kernel_for` dispatch per node, routed
through the session's device so wall-clock (CPU) or analytical
(simulated GPU) accounting stays exactly as it always was. Zero
setup cost, best per-row cost at small batch sizes — the serving
sweet spot the cost model keeps it for.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.device import Device, RunStats
from repro.tensor.graph import Graph, Node


class NumpyExecutor:
    """Per-node kernel interpreter over a topo-sorted node list."""

    name = "numpy"

    def __init__(self, graph: Graph, order: list[Node], device: Device):
        self.graph = graph
        self.order = order
        self.device = device

    def execute(self, tensors: dict, stats: RunStats) -> None:
        device = self.device
        for node in self.order:
            values = [tensors[name] for name in node.inputs]
            results = device.run_node(node.op_type, values, node.attrs, stats)
            for name, value in zip(node.outputs, results):
                tensors[name] = np.asarray(value)
