"""Calibrated per-backend row costs for the optimizer.

The coster prices a Predict alternative on backend ``b`` as::

    engine_switch + setup_cost(b) + input_rows * row_cost * row_scale(b)

``setup_cost`` models session compilation (fusion pattern matching,
JIT warm-up) and ``row_scale`` the per-row advantage over the
interpreter. Hard-coding those would rot with numpy versions and
hardware, so a micro-benchmark measures ``row_scale`` on first use —
lazily, once per process — and persists the result in the catalog
next to the table statistics, exactly like ANALYZE output: later
processes sharing the catalog read the calibration instead of
re-measuring.

Measured scales are clamped to a plausible band per backend. The
clamps keep the *crossover geometry* stable — with the default row
costs, every value in band puts the interpreter/compiled crossover
between ~100 and ~4000 rows, so a noisy measurement can shift where
the flip happens but never invert the small-batch/large-batch
decision the tests pin down (interpreter at <=64 rows, compiled at
>=8k).
"""

from __future__ import annotations

import threading
import time

import numpy as np

#: ``backend -> (setup_cost, row_scale)`` fallbacks, in optimizer cost
#: units (the interpreter's per-row model cost is scale 1.0).
DEFAULT_PROFILES: dict[str, tuple[float, float]] = {
    "numpy": (0.0, 1.0),
    "fused": (25_000.0, 0.15),
    "numba": (40_000.0, 0.10),
}

#: Allowed ``row_scale`` band per compiled backend.
_CLAMPS: dict[str, tuple[float, float]] = {
    "fused": (0.05, 0.5),
    "numba": (0.02, 0.6),
}

_lock = threading.Lock()
_cached: dict[str, tuple[float, float]] | None = None


def profiles(catalog=None) -> dict[str, tuple[float, float]]:
    """``backend -> (setup_cost, row_scale)``, calibrated and cached.

    Resolution order: process cache, then the catalog's persisted
    calibration, then a fresh micro-benchmark (persisted back when the
    catalog supports it). Every failure path degrades to
    :data:`DEFAULT_PROFILES` — calibration must never fail a query.
    """
    global _cached
    if _cached is not None:
        return _cached
    with _lock:
        if _cached is not None:
            return _cached
        resolved = None
        if catalog is not None:
            try:
                stored = catalog.backend_costs()
            except Exception:
                stored = None
            if stored:
                resolved = {
                    str(name): (float(pair[0]), float(pair[1]))
                    for name, pair in stored.items()
                }
        if resolved is None:
            try:
                resolved = _calibrate()
            except Exception:
                resolved = dict(DEFAULT_PROFILES)
            if catalog is not None:
                try:
                    catalog.record_backend_costs(
                        {name: list(pair) for name, pair in resolved.items()}
                    )
                except Exception:
                    pass
        for name, pair in DEFAULT_PROFILES.items():
            resolved.setdefault(name, pair)
        _cached = resolved
    return _cached


def invalidate_cache() -> None:
    """Forget the process-level calibration (tests, recalibration)."""
    global _cached
    with _lock:
        _cached = None


def _calibrate() -> dict[str, tuple[float, float]]:
    """Measure compiled row scales on a small synthetic forest (<100ms)."""
    from repro.ml.ensemble import RandomForestRegressor
    from repro.tensor.backends import available_compiled_backends
    from repro.tensor.converters import convert
    from repro.tensor.session import InferenceSession

    rng = np.random.default_rng(7)
    X = rng.normal(size=(192, 8))
    y = X[:, 0] + rng.normal(scale=0.1, size=192)
    model = RandomForestRegressor(
        n_estimators=12, max_depth=4, random_state=7
    ).fit(X, y)
    graph = convert(model, n_features=8)
    batch = rng.normal(size=(2048, 8))

    def best_of(backend: str) -> float:
        session = InferenceSession(graph, backend=backend)
        feeds = {session.graph.inputs[0]: batch}
        session.run(feeds)  # warm-up (buffer allocation, JIT compile)
        times = []
        for _ in range(3):
            start = time.perf_counter()
            session.run(feeds)
            times.append(time.perf_counter() - start)
        return min(times)

    baseline = best_of("numpy")
    resolved = dict(DEFAULT_PROFILES)
    if baseline <= 0:
        return resolved
    for backend in available_compiled_backends():
        low, high = _CLAMPS[backend]
        scale = float(np.clip(best_of(backend) / baseline, low, high))
        setup = DEFAULT_PROFILES[backend][0]
        resolved[backend] = (setup, scale)
    return resolved
