"""Pluggable compiled scoring backends (paper Fig. 2(d)/Fig. 3).

How a model is *executed* dominates PREDICT latency, so execution
strategy is a physical property the optimizer chooses — not a global
switch. Three backends implement one protocol:

- ``numpy``   — the per-node kernel interpreter (default; zero setup).
- ``fused``   — graph-level operator fusion + tree-ensemble->GEMM
  tensorization with preallocated buffers (:mod:`.fused`).
- ``numba``   — JIT tree kernels behind an optional import, falling
  back to the fused numpy stages when numba is absent (:mod:`.numba_backend`).

The memo offers each *available* compiled backend as an alternative
Predict implementation and prices it with calibrated per-row costs
(:mod:`.calibrate`), so small batches keep the interpreter and large
scans get compiled execution.

A backend executor is any object with ``execute(tensors, stats)``
mutating ``tensors`` in place to add every node output — the
:class:`~repro.tensor.session.InferenceSession` owns feeds, transfer
accounting and output selection around that call.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.tensor.device import Device, RunStats
from repro.tensor.graph import Graph, Node

#: Every backend name the engine knows, in preference order.
BACKENDS = ("numpy", "fused", "numba")


class ScoringBackend(Protocol):
    """The executor protocol every backend implements."""

    name: str

    def execute(self, tensors: dict, stats: RunStats) -> None:
        """Populate ``tensors`` with every node output of the graph."""
        ...


def resolve_backend(
    name: str, graph: Graph, order: list[Node], device: Device
) -> tuple["ScoringBackend", str]:
    """Build the executor for ``name``; returns ``(executor, effective)``.

    ``effective`` may differ from the request: ``numba`` without numba
    installed transparently degrades to ``numpy``, and compiled
    backends on a *simulated* device degrade to the interpreter (the
    simulated GPU's analytical cost model is per-op — fusing ops under
    it would silently change the modelled time, not the real one).
    """
    from repro.tensor.backends.numpy_backend import NumpyExecutor

    requested = (name or "numpy").lower()
    if requested not in BACKENDS:
        from repro.errors import TensorError

        raise TensorError(
            f"unknown scoring backend {requested!r}; expected one of {BACKENDS}"
        )
    if requested == "numba":
        from repro.tensor.backends.numba_backend import numba_available

        if not numba_available():
            requested = "numpy"
    if requested != "numpy" and device.is_simulated:
        requested = "numpy"
    if requested == "fused":
        from repro.tensor.backends.fused import FusedExecutor

        return FusedExecutor(graph, order, device), "fused"
    if requested == "numba":
        from repro.tensor.backends.numba_backend import NumbaExecutor

        return NumbaExecutor(graph, order, device), "numba"
    return NumpyExecutor(graph, order, device), "numpy"


def available_compiled_backends() -> tuple[str, ...]:
    """Compiled backends usable in this process (for the memo rule)."""
    from repro.tensor.backends.numba_backend import numba_available

    return ("fused", "numba") if numba_available() else ("fused",)


def compiled_pipeline_scorer(pipeline, n_features: int, backend: str,
                             device: str = "cpu"):
    """A ``matrix -> predictions`` callable scoring ``pipeline`` through
    a compiled tensor session, or ``None`` when translation fails.

    This is the bridge the relational layer, the runtime executor and
    the distributed workers all use to honor a memo-chosen compiled
    backend on an ``ml.pipeline`` model: NN-translate the pipeline,
    build one session, score batches through it. Any conversion failure
    returns ``None`` so callers keep the interpreted ``predict`` path.
    """
    from repro.tensor.converters import convert, supports
    from repro.tensor.session import InferenceSession

    try:
        if not supports(pipeline):
            return None
        graph = convert(pipeline, n_features=n_features)
        session = InferenceSession(graph, device=device, backend=backend)
    except Exception:
        return None
    input_name = session.graph.inputs[0]

    # Bare tree predictors consume columns strictly by split index
    # (< ``n_features_in_``), so the interpreter silently ignores any
    # extra trailing columns in a wider matrix (the plan passes the
    # whole table when the feature list is undeclared). The GEMM
    # encoding is shape-exact, so reproduce that tolerance by slicing;
    # every other model family raises on a width mismatch in *both*
    # paths, which the session reproduces naturally.
    trained_width = None
    from repro.ml.pipeline import Pipeline

    if not isinstance(pipeline, Pipeline):
        trained_width = getattr(pipeline, "n_features_in_", None)

    def score(matrix) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if trained_width is not None and matrix.shape[1] > trained_width:
            matrix = np.ascontiguousarray(matrix[:, :trained_width])
        out = session.run({input_name: matrix})[0]
        return np.asarray(out).reshape(len(matrix), -1)[:, 0]

    score.session = session
    score.backend = session.effective_backend
    return score
