"""Estimator protocol for the ML substrate.

The API deliberately mirrors scikit-learn (``fit`` / ``predict`` /
``transform`` / ``get_params``) because Raven's static analyzer recognizes
pipelines by these call patterns, and the knowledge base maps both
``sklearn.*`` and ``repro.ml.*`` qualified names onto the same IR operators.
"""

from __future__ import annotations

import inspect

import numpy as np

from repro.errors import MLError, NotFittedError


def as_matrix(X) -> np.ndarray:
    """Coerce input data to a 2-D float64 matrix.

    Accepts NumPy arrays, nested lists, or a
    :class:`repro.relational.table.Table` (all numeric columns, in schema
    order).
    """
    if hasattr(X, "to_matrix"):  # Table duck-type
        return X.to_matrix()
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise MLError(f"expected 2-D input, got shape {arr.shape}")
    return arr


def as_vector(y) -> np.ndarray:
    """Coerce labels/targets to a 1-D float64 vector."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    return arr


class BaseEstimator:
    """Parameter handling shared by every estimator.

    Constructor arguments are hyperparameters; learned state uses the
    sklearn trailing-underscore convention (``coef_``, ``tree_`` ...).
    """

    def get_params(self) -> dict:
        """Hyperparameters as a dict (from the constructor signature)."""
        signature = inspect.signature(type(self).__init__)
        names = [
            p.name
            for p in signature.parameters.values()
            if p.name != "self" and p.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params) -> "BaseEstimator":
        valid = set(self.get_params())
        for key, value in params.items():
            if key not in valid:
                raise MLError(f"invalid parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def clone(self) -> "BaseEstimator":
        """A fresh, unfitted copy with the same hyperparameters."""
        params = {}
        for key, value in self.get_params().items():
            if isinstance(value, BaseEstimator):
                params[key] = value.clone()
            elif isinstance(value, list) and all(
                isinstance(v, tuple) and len(v) >= 2 for v in value
            ):
                params[key] = [
                    tuple(
                        item.clone() if isinstance(item, BaseEstimator) else item
                        for item in entry
                    )
                    for entry in value
                ]
            else:
                params[key] = value
        return type(self)(**params)

    def check_fitted(self, *attributes: str) -> None:
        """Raise :class:`NotFittedError` unless learned state exists."""
        for attr in attributes:
            if getattr(self, attr, None) is None:
                raise NotFittedError(
                    f"{type(self).__name__} is not fitted (missing {attr!r}); "
                    "call fit() first"
                )

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}"
            for k, v in self.get_params().items()
            if not isinstance(v, (list, BaseEstimator))
        )
        return f"{type(self).__name__}({params})"


class TransformerMixin:
    """Adds ``fit_transform`` to transformers."""

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class ClassifierMixin:
    """Adds ``score`` (accuracy) to classifiers."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(as_vector(y), self.predict(X))


class RegressorMixin:
    """Adds ``score`` (R^2) to regressors."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import r2_score

        return r2_score(as_vector(y), self.predict(X))
