"""Data featurizers: scaling, one-hot encoding, binning.

These are the paper's "MLD" featurizer operators (§3.1). Each transformer
exposes its learned parameters as plain arrays so that the cross-optimizer
can reason about them (e.g. one-hot category lists drive predicate-based
pruning of categorical features) and so that NN translation
(:mod:`repro.tensor.converters`) can compile them to tensor ops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import BaseEstimator, TransformerMixin, as_matrix


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features to zero mean and unit variance.

    Compiles to ``(x - mean) / scale`` — a Sub/Div pair in the tensor IR.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X, y=None) -> "StandardScaler":
        X = as_matrix(X)
        self.mean_ = (
            X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        )
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted("mean_", "scale_")
        return (as_matrix(X) - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        self.check_fitted("mean_", "scale_")
        return as_matrix(X) * self.scale_ + self.mean_

    @property
    def n_features_out_(self) -> int:
        self.check_fitted("mean_")
        return len(self.mean_)


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Rescale features to ``[0, 1]`` (``(x - min) / (max - min)``)."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = as_matrix(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted("min_", "range_")
        return (as_matrix(X) - self.min_) / self.range_

    @property
    def n_features_out_(self) -> int:
        self.check_fitted("min_")
        return len(self.min_)


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode integer-coded categorical columns.

    ``categories_[j]`` holds the sorted distinct values of input column
    ``j``; output columns are laid out column-major
    (all categories of column 0, then column 1, ...). The layout is part of
    the public contract: predicate-based pruning computes which output
    positions survive a ``col = value`` filter from it.
    """

    def __init__(self, handle_unknown: str = "ignore"):
        if handle_unknown not in ("ignore", "error"):
            raise MLError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown
        self.categories_: list[np.ndarray] | None = None

    def fit(self, X, y=None) -> "OneHotEncoder":
        X = as_matrix(X)
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted("categories_")
        X = as_matrix(X)
        if X.shape[1] != len(self.categories_):
            raise MLError(
                f"expected {len(self.categories_)} columns, got {X.shape[1]}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            block = (X[:, j : j + 1] == categories.reshape(1, -1)).astype(
                np.float64
            )
            if self.handle_unknown == "error":
                known = np.isin(X[:, j], categories)
                if not known.all():
                    bad = X[~known, j][0]
                    raise MLError(f"unknown category {bad!r} in column {j}")
            blocks.append(block)
        return np.hstack(blocks)

    @property
    def n_features_out_(self) -> int:
        self.check_fitted("categories_")
        return int(sum(len(c) for c in self.categories_))

    def output_slices(self) -> list[slice]:
        """The output column range produced by each input column."""
        self.check_fitted("categories_")
        slices = []
        start = 0
        for categories in self.categories_:
            stop = start + len(categories)
            slices.append(slice(start, stop))
            start = stop
        return slices


class Binarizer(BaseEstimator, TransformerMixin):
    """Threshold features to {0, 1} (``x > threshold``)."""

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold
        self.n_features_: int | None = None

    def fit(self, X, y=None) -> "Binarizer":
        self.n_features_ = as_matrix(X).shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        return (as_matrix(X) > self.threshold).astype(np.float64)

    @property
    def n_features_out_(self) -> int:
        self.check_fitted("n_features_")
        return int(self.n_features_)


class SimpleImputer(BaseEstimator, TransformerMixin):
    """Replace NaNs by a per-column statistic (mean/median/constant)."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in ("mean", "median", "constant"):
            raise MLError(f"unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: np.ndarray | None = None

    def fit(self, X, y=None) -> "SimpleImputer":
        X = as_matrix(X)
        if self.strategy == "mean":
            self.statistics_ = np.nanmean(X, axis=0)
        elif self.strategy == "median":
            self.statistics_ = np.nanmedian(X, axis=0)
        else:
            self.statistics_ = np.full(X.shape[1], self.fill_value)
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted("statistics_")
        X = as_matrix(X).copy()
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X

    @property
    def n_features_out_(self) -> int:
        self.check_fitted("statistics_")
        return len(self.statistics_)


class LabelEncoder(BaseEstimator):
    """Map arbitrary labels to contiguous integer codes (and back)."""

    def __init__(self):
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        self.check_fitted("classes_")
        y = np.asarray(y)
        codes = np.searchsorted(self.classes_, y)
        codes = np.clip(codes, 0, len(self.classes_) - 1)
        if not np.array_equal(self.classes_[codes], y):
            raise MLError("transform() saw labels unseen during fit()")
        return codes

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        self.check_fitted("classes_")
        return self.classes_[np.asarray(codes, dtype=np.int64)]
