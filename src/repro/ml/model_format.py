"""MLflow-style portable model bundles.

The paper stores model pipelines "in a generic and portable model format
compatible with MLflow". This module provides that format: a JSON document
(the ``MLmodel`` descriptor plus all learned state) that round-trips every
estimator in :mod:`repro.ml` without pickle. Reconstruction goes through an
explicit class registry, so loading a bundle can never execute arbitrary
code — the property that lets the database treat stored models as data.

Layout of a saved bundle directory::

    <path>/MLmodel        # JSON descriptor: flavor, schema, version
    <path>/model.json     # encoded estimator tree

``dumps``/``loads`` provide the same encoding in-memory (used by the model
catalog).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelFormatError
from repro.ml.base import BaseEstimator
from repro.ml.tree import TreeStructure

FORMAT_VERSION = 1

_CLASS_REGISTRY: dict[str, type] = {}


def register_model_class(cls: type) -> type:
    """Register an estimator class for bundle reconstruction."""
    _CLASS_REGISTRY[f"{cls.__module__}.{cls.__qualname__}"] = cls
    # Also register under the short name for compact bundles.
    _CLASS_REGISTRY[cls.__qualname__] = cls
    return cls


def _register_builtins() -> None:
    from repro.ml import (
        cluster,
        ensemble,
        linear,
        neural,
        pipeline,
        preprocessing,
        tree,
    )

    for module in (pipeline, preprocessing, tree, ensemble, linear, neural, cluster):
        for name in dir(module):
            obj = getattr(module, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, BaseEstimator)
                and obj is not BaseEstimator
            ):
                register_model_class(obj)


# -- encoding ----------------------------------------------------------------


def _encode(value):
    if isinstance(value, np.ndarray):
        return {
            "__kind__": "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    if isinstance(value, TreeStructure):
        return {
            "__kind__": "tree_structure",
            "children_left": _encode(value.children_left),
            "children_right": _encode(value.children_right),
            "feature": _encode(value.feature),
            "threshold": _encode(value.threshold),
            "value": _encode(value.value),
            "n_node_samples": (
                None
                if value.n_node_samples is None
                else _encode(value.n_node_samples)
            ),
        }
    if isinstance(value, BaseEstimator):
        return _encode_estimator(value)
    if isinstance(value, (list, tuple)):
        return {
            "__kind__": "tuple" if isinstance(value, tuple) else "list",
            "items": [_encode(v) for v in value],
        }
    if isinstance(value, dict):
        return {
            "__kind__": "dict",
            "items": [[_encode(k), _encode(v)] for k, v in value.items()],
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ModelFormatError(
        f"cannot serialize value of type {type(value).__name__}"
    )


def _encode_estimator(estimator: BaseEstimator) -> dict:
    class_name = type(estimator).__qualname__
    if class_name not in _CLASS_REGISTRY:
        _register_builtins()
    if class_name not in _CLASS_REGISTRY:
        raise ModelFormatError(
            f"{class_name} is not registered; call register_model_class()"
        )
    params = {k: _encode(v) for k, v in estimator.get_params().items()}
    state = {}
    for attr, value in vars(estimator).items():
        if attr.endswith("_") and not attr.startswith("_"):
            state[attr] = _encode(value)
    return {
        "__kind__": "estimator",
        "class": class_name,
        "params": params,
        "state": state,
    }


# -- decoding ----------------------------------------------------------------


def _decode(value):
    if not isinstance(value, dict) or "__kind__" not in value:
        return value
    kind = value["__kind__"]
    if kind == "ndarray":
        arr = np.asarray(value["data"], dtype=value["dtype"])
        return arr.reshape(value["shape"])
    if kind == "tree_structure":
        return TreeStructure(
            _decode(value["children_left"]),
            _decode(value["children_right"]),
            _decode(value["feature"]),
            _decode(value["threshold"]),
            _decode(value["value"]),
            None
            if value["n_node_samples"] is None
            else _decode(value["n_node_samples"]),
        )
    if kind == "list":
        return [_decode(v) for v in value["items"]]
    if kind == "tuple":
        return tuple(_decode(v) for v in value["items"])
    if kind == "dict":
        return {_decode(k): _decode(v) for k, v in value["items"]}
    if kind == "estimator":
        return _decode_estimator(value)
    raise ModelFormatError(f"unknown encoded kind {kind!r}")


def _decode_estimator(payload: dict) -> BaseEstimator:
    class_name = payload["class"]
    if class_name not in _CLASS_REGISTRY:
        _register_builtins()
    cls = _CLASS_REGISTRY.get(class_name)
    if cls is None:
        raise ModelFormatError(f"unknown estimator class {class_name!r}")
    params = {k: _decode(v) for k, v in payload["params"].items()}
    estimator = cls(**params)
    for attr, encoded in payload["state"].items():
        setattr(estimator, attr, _decode(encoded))
    return estimator


# -- public API ----------------------------------------------------------------


def dumps(model: BaseEstimator, metadata: dict | None = None) -> str:
    """Serialize a fitted estimator (or pipeline) to a JSON string."""
    document = {
        "format_version": FORMAT_VERSION,
        "flavor": "repro.ml",
        "metadata": metadata or {},
        "model": _encode(model),
    }
    return json.dumps(document)


def loads(text: str) -> BaseEstimator:
    """Reconstruct an estimator from :func:`dumps` output."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"bundle is not valid JSON: {exc}") from exc
    if document.get("format_version") != FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported format_version {document.get('format_version')!r}"
        )
    return _decode(document["model"])


def save_model(model: BaseEstimator, path: str | Path, metadata: dict | None = None) -> Path:
    """Write an MLflow-style bundle directory; returns its path."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    descriptor = {
        "format_version": FORMAT_VERSION,
        "flavor": "repro.ml",
        "model_class": type(model).__qualname__,
        "metadata": metadata or {},
    }
    (path / "MLmodel").write_text(json.dumps(descriptor, indent=2))
    (path / "model.json").write_text(dumps(model, metadata))
    return path


def load_model(path: str | Path) -> BaseEstimator:
    """Load a bundle written by :func:`save_model`."""
    path = Path(path)
    model_file = path / "model.json"
    if not model_file.exists():
        raise ModelFormatError(f"no model.json under {path}")
    return loads(model_file.read_text())


def load_metadata(path: str | Path) -> dict:
    """Read the MLmodel descriptor of a saved bundle."""
    descriptor = Path(path) / "MLmodel"
    if not descriptor.exists():
        raise ModelFormatError(f"no MLmodel descriptor under {path}")
    return json.loads(descriptor.read_text())
