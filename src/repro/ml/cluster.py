"""K-means clustering (the model-clustering optimization's workhorse, §4.1).

Lloyd's algorithm with k-means++ initialization and an empty-cluster
re-seeding step. ``fit`` records ``inertia_`` and per-cluster feature
statistics (:meth:`KMeans.cluster_constant_features`) that the
model-clustering rule uses to decide which features are constant within a
cluster and can therefore be folded out of the per-cluster model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import BaseEstimator, as_matrix


class KMeans(BaseEstimator):
    """Standard k-means."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 3,
        random_state: int | None = None,
    ):
        if n_clusters < 1:
            raise MLError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0

    # -- fitting -----------------------------------------------------------

    def fit(self, X, y=None) -> "KMeans":
        X = as_matrix(X)
        if X.shape[0] < self.n_clusters:
            raise MLError(
                f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, iters = self._run_once(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, iters)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def _run_once(self, X: np.ndarray, rng: np.random.Generator):
        centers = self._kmeans_plus_plus(X, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        for iteration in range(self.max_iter):
            distances = self._distances(X, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members) == 0:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = np.argmax(distances.min(axis=1))
                    new_centers[k] = X[farthest]
                else:
                    new_centers[k] = members.mean(axis=0)
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift < self.tol:
                break
        distances = self._distances(X, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(len(labels)), labels].sum())
        return centers, labels, inertia, iteration + 1

    def _kmeans_plus_plus(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = X.shape[0]
        centers = [X[rng.integers(0, n)]]
        for _ in range(1, self.n_clusters):
            distances = self._distances(X, np.vstack(centers)).min(axis=1)
            total = distances.sum()
            if total <= 0.0:
                centers.append(X[rng.integers(0, n)])
                continue
            probabilities = distances / total
            centers.append(X[rng.choice(n, p=probabilities)])
        return np.vstack(centers)

    @staticmethod
    def _distances(X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Squared euclidean distances, ``(n_samples, n_clusters)``.

        Clamped at zero: the expansion can go slightly negative in
        floating point, which would break the k-means++ sampling weights.
        """
        distances = (
            (X**2).sum(axis=1, keepdims=True)
            - 2.0 * X @ centers.T
            + (centers**2).sum(axis=1)
        )
        return np.maximum(distances, 0.0)

    # -- inference -----------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        self.check_fitted("cluster_centers_")
        X = as_matrix(X)
        return np.argmin(self._distances(X, self.cluster_centers_), axis=1)

    def fit_predict(self, X, y=None) -> np.ndarray:
        return self.fit(X).labels_

    # -- support for the model-clustering rule ---------------------------

    def cluster_constant_features(
        self, X, tolerance: float = 1e-9
    ) -> list[dict[int, float]]:
        """Per cluster, the features that are constant within the cluster.

        Returns one dict per cluster mapping feature index -> the constant
        value. The model-clustering rule treats these exactly like
        ``feature = value`` predicates and prunes the per-cluster model
        accordingly (paper §4.1, "model clustering").
        """
        self.check_fitted("cluster_centers_")
        X = as_matrix(X)
        labels = self.predict(X)
        result: list[dict[int, float]] = []
        for k in range(self.n_clusters):
            members = X[labels == k]
            constants: dict[int, float] = {}
            if len(members) > 0:
                spans = members.max(axis=0) - members.min(axis=0)
                for j in np.nonzero(spans <= tolerance)[0]:
                    constants[int(j)] = float(members[0, j])
            result.append(constants)
        return result
