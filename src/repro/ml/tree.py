"""CART decision trees.

The fitted tree is stored in flat arrays (``children_left``,
``children_right``, ``feature``, ``threshold``, ``value``) exactly like
scikit-learn's ``tree_`` attribute. That representation is load-bearing for
the reproduction: predicate-based model pruning (§4.1), model/query
splitting (§2), model inlining to SQL ``CASE`` expressions (§4.2) and NN
translation (§4.2) all walk these arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MLError
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    as_matrix,
    as_vector,
)

LEAF = -1  # sentinel in the `feature` array, same as sklearn's TREE_UNDEFINED


@dataclass
class TreeStructure:
    """The flat-array encoding of a fitted binary decision tree.

    Internal node ``i`` tests ``x[feature[i]] <= threshold[i]``: true goes
    to ``children_left[i]``, false to ``children_right[i]``. Leaves have
    ``feature[i] == LEAF``. ``value[i]`` is the prediction payload: class
    distribution for classifiers, mean target for regressors.
    """

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    value: np.ndarray
    n_node_samples: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int((self.feature == LEAF).sum())

    def is_leaf(self, node: int) -> bool:
        return self.feature[node] == LEAF

    def depths(self) -> np.ndarray:
        """Depth of every node, root = 0 (vectorized level frontier)."""
        depth = np.zeros(self.node_count, dtype=np.int64)
        frontier = np.zeros(1, dtype=np.int64)
        level = 0
        while frontier.size:
            depth[frontier] = level
            internal = frontier[self.feature[frontier] != LEAF]
            frontier = np.concatenate(
                (self.children_left[internal], self.children_right[internal])
            )
            level += 1
        return depth

    def max_depth(self) -> int:
        """Longest root-to-leaf path length."""
        return int(self.depths().max())

    def used_features(self) -> set[int]:
        """Feature indices tested anywhere in the tree."""
        return set(int(f) for f in self.feature[self.feature != LEAF])

    def decision_path_apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each row.

        Fully vectorized: leaves are turned into self-loops (their
        children point back at themselves, their test feature is
        clamped to 0), so every row can be advanced ``max_depth`` times
        with three gathers and one ``where`` per level — no boolean
        masking or shrinking index sets, which keeps the hot arrays
        contiguous for the whole descent.
        """
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        if n == 0:
            return node
        idx = np.arange(self.node_count, dtype=np.int64)
        leaf = self.feature == LEAF
        left = np.where(leaf, idx, self.children_left)
        right = np.where(leaf, idx, self.children_right)
        feat = np.where(leaf, 0, self.feature)
        rows = np.arange(n)
        for _ in range(self.max_depth()):
            go_left = X[rows, feat[node]] <= self.threshold[node]
            node = np.where(go_left, left[node], right[node])
        return node

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """The ``value`` rows for each input row's leaf."""
        return self.value[self.decision_path_apply(X)]

    def paths(self) -> list[list[tuple[int, float, bool]]]:
        """All root-to-leaf paths as ``(feature, threshold, goes_left)``
        condition lists, paired with the leaf node id.

        Returned as a list aligned with leaves in DFS order; each entry is
        the condition list, and the leaf id is appended via
        :meth:`leaves_dfs`. Used by model inlining to emit one CASE branch
        per leaf.
        """
        result = []
        stack: list[tuple[int, list[tuple[int, float, bool]]]] = [(0, [])]
        while stack:
            node, conditions = stack.pop()
            if self.is_leaf(node):
                result.append(conditions)
                continue
            f = int(self.feature[node])
            t = float(self.threshold[node])
            # Right pushed first so left-first DFS order comes out of the stack.
            stack.append(
                (int(self.children_right[node]), conditions + [(f, t, False)])
            )
            stack.append(
                (int(self.children_left[node]), conditions + [(f, t, True)])
            )
        return result

    def leaves_dfs(self) -> list[int]:
        """Leaf node ids in the same DFS order as :meth:`paths`."""
        result = []
        stack = [0]
        while stack:
            node = stack.pop()
            if self.is_leaf(node):
                result.append(node)
                continue
            stack.append(int(self.children_right[node]))
            stack.append(int(self.children_left[node]))
        return result

    def copy(self) -> "TreeStructure":
        return TreeStructure(
            self.children_left.copy(),
            self.children_right.copy(),
            self.feature.copy(),
            self.threshold.copy(),
            self.value.copy(),
            None if self.n_node_samples is None else self.n_node_samples.copy(),
        )


class _TreeBuilder:
    """Grows a CART tree greedily, best split by impurity decrease."""

    def __init__(
        self,
        criterion: str,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
        n_outputs: int,
    ):
        self.criterion = criterion
        self.max_depth = max_depth if max_depth is not None else 2**31
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.n_outputs = n_outputs

    def build(self, X: np.ndarray, y: np.ndarray) -> TreeStructure:
        left: list[int] = []
        right: list[int] = []
        feature: list[int] = []
        threshold: list[float] = []
        value: list[np.ndarray] = []
        samples: list[int] = []

        def node_value(idx: np.ndarray) -> np.ndarray:
            if self.criterion == "mse":
                return np.array([y[idx].mean()])
            counts = np.bincount(
                y[idx].astype(np.int64), minlength=self.n_outputs
            ).astype(np.float64)
            return counts / counts.sum()

        def new_node() -> int:
            left.append(LEAF)
            right.append(LEAF)
            feature.append(LEAF)
            threshold.append(0.0)
            value.append(np.zeros(max(self.n_outputs, 1)))
            samples.append(0)
            return len(left) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [
            (root, np.arange(len(y)), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            value[node] = node_value(idx)
            samples[node] = len(idx)
            if (
                depth >= self.max_depth
                or len(idx) < self.min_samples_split
                or self._is_pure(y[idx])
            ):
                continue
            split = self._best_split(X, y, idx)
            if split is None:
                continue
            f, t = split
            mask = X[idx, f] <= t
            left_idx, right_idx = idx[mask], idx[~mask]
            if (
                len(left_idx) < self.min_samples_leaf
                or len(right_idx) < self.min_samples_leaf
            ):
                continue
            feature[node] = f
            threshold[node] = t
            left_child, right_child = new_node(), new_node()
            left[node] = left_child
            right[node] = right_child
            stack.append((left_child, left_idx, depth + 1))
            stack.append((right_child, right_idx, depth + 1))

        return TreeStructure(
            np.asarray(left, dtype=np.int64),
            np.asarray(right, dtype=np.int64),
            np.asarray(feature, dtype=np.int64),
            np.asarray(threshold, dtype=np.float64),
            np.vstack(value),
            np.asarray(samples, dtype=np.int64),
        )

    def _is_pure(self, y: np.ndarray) -> bool:
        if self.criterion == "mse":
            return bool(y.std() < 1e-12)
        return bool((y == y[0]).all())

    def _impurity(self, y_sorted_cumulative, total_counts, n_left, n_total):
        """Weighted child impurity for every candidate split position.

        ``y_sorted_cumulative`` is the per-class cumulative count matrix
        for classification, or ``(cumsum, cumsum_sq)`` for regression.
        """
        n_right = n_total - n_left
        if self.criterion == "mse":
            csum, csum_sq = y_sorted_cumulative
            left_sum = csum[n_left - 1]
            left_sq = csum_sq[n_left - 1]
            right_sum = csum[-1] - left_sum
            right_sq = csum_sq[-1] - left_sq
            left_var = left_sq / n_left - (left_sum / n_left) ** 2
            right_var = right_sq / np.maximum(n_right, 1) - (
                right_sum / np.maximum(n_right, 1)
            ) ** 2
            return (n_left * left_var + n_right * right_var) / n_total
        counts_left = y_sorted_cumulative[n_left - 1]
        counts_right = total_counts - counts_left
        if self.criterion == "entropy":
            def entropy(counts, n):
                p = counts / np.maximum(n, 1)[..., None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    logs = np.log2(p, out=np.zeros_like(p), where=p > 0)
                return -(p * logs).sum(axis=-1)

            left_imp = entropy(counts_left, n_left)
            right_imp = entropy(counts_right, n_right)
        else:  # gini
            p_left = counts_left / np.maximum(n_left, 1)[..., None]
            p_right = counts_right / np.maximum(n_right, 1)[..., None]
            left_imp = 1.0 - (p_left**2).sum(axis=-1)
            right_imp = 1.0 - (p_right**2).sum(axis=-1)
        return (n_left * left_imp + n_right * right_imp) / n_total

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[int, float] | None:
        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self.rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(n_features)
        best: tuple[float, int, float] | None = None
        y_sub = y[idx]
        n_total = len(idx)
        for f in candidates:
            x = X[idx, f]
            order = np.argsort(x, kind="stable")
            x_sorted = x[order]
            y_sorted = y_sub[order]
            distinct = np.nonzero(np.diff(x_sorted))[0]
            if len(distinct) == 0:
                continue
            if self.criterion == "mse":
                csum = np.cumsum(y_sorted)
                csum_sq = np.cumsum(y_sorted**2)
                cumulative = (csum, csum_sq)
                totals = None
            else:
                onehot = np.zeros((n_total, self.n_outputs))
                onehot[np.arange(n_total), y_sorted.astype(np.int64)] = 1.0
                cumulative = np.cumsum(onehot, axis=0)
                totals = cumulative[-1]
            n_left = distinct + 1
            impurities = self._impurity(cumulative, totals, n_left, n_total)
            pos = int(np.argmin(impurities))
            score = float(impurities[pos])
            split_at = distinct[pos]
            t = float((x_sorted[split_at] + x_sorted[split_at + 1]) / 2.0)
            if best is None or score < best[0]:
                best = (score, int(f), t)
        if best is None:
            return None
        return best[1], best[2]


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """A CART classifier with gini/entropy splitting."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise MLError(f"unknown criterion {criterion!r}")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: TreeStructure | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = as_matrix(X), as_vector(y)
        self.classes_ = np.unique(y)
        codes = np.searchsorted(self.classes_, y)
        self.n_features_in_ = X.shape[1]
        builder = _TreeBuilder(
            self.criterion,
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.random_state),
            n_outputs=len(self.classes_),
        )
        self.tree_ = builder.build(X, codes.astype(np.float64))
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted("tree_")
        return self.tree_.leaf_values(as_matrix(X))

    def predict(self, X) -> np.ndarray:
        self.check_fitted("tree_", "classes_")
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]


class DecisionTreeRegressor(BaseEstimator, RegressorMixin):
    """A CART regressor with variance-reduction splitting."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: TreeStructure | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = as_matrix(X), as_vector(y)
        self.n_features_in_ = X.shape[1]
        builder = _TreeBuilder(
            "mse",
            self.max_depth,
            self.min_samples_split,
            self.min_samples_leaf,
            self.max_features,
            np.random.default_rng(self.random_state),
            n_outputs=1,
        )
        self.tree_ = builder.build(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("tree_")
        return self.tree_.leaf_values(as_matrix(X))[:, 0]
