"""Multi-layer perceptrons (the paper's MLP workload in Fig. 3).

A small but complete implementation: configurable hidden layers, ReLU or
tanh activations, softmax/identity heads, Adam optimization with
mini-batches. The fitted weights (``coefs_``, ``intercepts_``) are exactly
what :mod:`repro.tensor.converters` compiles to a Gemm/Relu tensor graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    as_matrix,
    as_vector,
)


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _tanh_grad(z: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(z) ** 2


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _AdamState:
    """Per-parameter Adam moments."""

    def __init__(self, shapes, learning_rate: float):
        self.learning_rate = learning_rate
        self.m = [np.zeros(s) for s in shapes]
        self.v = [np.zeros(s) for s in shapes]
        self.t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self.t += 1
        for i, (param, grad) in enumerate(zip(params, grads)):
            self.m[i] = beta1 * self.m[i] + (1 - beta1) * grad
            self.v[i] = beta2 * self.v[i] + (1 - beta2) * grad**2
            m_hat = self.m[i] / (1 - beta1**self.t)
            v_hat = self.v[i] / (1 - beta2**self.t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)


class _BaseMLP(BaseEstimator):
    """Shared forward/backward machinery for classifier and regressor."""

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (32,),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        max_iter: int = 200,
        batch_size: int = 128,
        alpha: float = 1e-4,
        tol: float = 1e-5,
        random_state: int | None = None,
    ):
        if activation not in ("relu", "tanh"):
            raise MLError(f"unknown activation {activation!r}")
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.alpha = alpha
        self.tol = tol
        self.random_state = random_state
        self.coefs_: list[np.ndarray] | None = None
        self.intercepts_: list[np.ndarray] | None = None
        self.loss_curve_: list[float] = []
        self.n_iter_: int = 0

    # subclasses define: _output_units(y), _prepare_targets(y),
    # _head(z) -> activation at output, _loss(output, target)

    def _init_weights(self, n_in: int, n_out: int, rng) -> None:
        sizes = [n_in, *self.hidden_layer_sizes, n_out]
        self.coefs_ = []
        self.intercepts_ = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (a + b))
            self.coefs_.append(rng.uniform(-bound, bound, size=(a, b)))
            self.intercepts_.append(np.zeros(b))

    def _forward(self, X: np.ndarray):
        """All pre-activations and activations, input to output."""
        activations = [X]
        pre_activations = []
        hidden_act = np.tanh if self.activation == "tanh" else _relu
        last = len(self.coefs_) - 1
        for i, (W, b) in enumerate(zip(self.coefs_, self.intercepts_)):
            z = activations[-1] @ W + b
            pre_activations.append(z)
            if i < last:
                activations.append(hidden_act(z))
            else:
                activations.append(self._head(z))
        return pre_activations, activations

    def _fit_loop(self, X: np.ndarray, targets: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        self._init_weights(X.shape[1], targets.shape[1], rng)
        params = self.coefs_ + self.intercepts_
        adam = _AdamState([p.shape for p in params], self.learning_rate)
        n = X.shape[0]
        batch = min(self.batch_size, n)
        hidden_grad = _tanh_grad if self.activation == "tanh" else _relu_grad
        previous_loss = np.inf
        for epoch in range(self.max_iter):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, tb = X[idx], targets[idx]
                pre, act = self._forward(xb)
                epoch_loss += self._loss(act[-1], tb) * len(idx)
                # Output delta is (prediction - target) for both softmax
                # cross-entropy and identity MSE heads.
                delta = (act[-1] - tb) / len(idx)
                coef_grads = [None] * len(self.coefs_)
                intercept_grads = [None] * len(self.coefs_)
                for layer in range(len(self.coefs_) - 1, -1, -1):
                    coef_grads[layer] = (
                        act[layer].T @ delta + self.alpha * self.coefs_[layer]
                    )
                    intercept_grads[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.coefs_[layer].T) * hidden_grad(
                            pre[layer - 1]
                        )
                adam.step(params, coef_grads + intercept_grads)
            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            self.n_iter_ = epoch + 1
            if abs(previous_loss - epoch_loss) < self.tol:
                break
            previous_loss = epoch_loss


class MLPClassifier(_BaseMLP, ClassifierMixin):
    """Feed-forward classifier with a softmax head."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.classes_: np.ndarray | None = None

    def _head(self, z: np.ndarray) -> np.ndarray:
        return _softmax(z)

    @staticmethod
    def _loss(output: np.ndarray, target: np.ndarray) -> float:
        eps = 1e-12
        return float(-(target * np.log(output + eps)).sum(axis=1).mean())

    def fit(self, X, y) -> "MLPClassifier":
        X, y = as_matrix(X), as_vector(y)
        self.classes_ = np.unique(y)
        codes = np.searchsorted(self.classes_, y)
        onehot = np.zeros((len(y), len(self.classes_)))
        onehot[np.arange(len(y)), codes] = 1.0
        self._fit_loop(X, onehot)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted("coefs_")
        _, activations = self._forward(as_matrix(X))
        return activations[-1]

    def predict(self, X) -> np.ndarray:
        self.check_fitted("classes_")
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class MLPRegressor(_BaseMLP, RegressorMixin):
    """Feed-forward regressor with an identity head and MSE loss."""

    def _head(self, z: np.ndarray) -> np.ndarray:
        return z

    @staticmethod
    def _loss(output: np.ndarray, target: np.ndarray) -> float:
        return float(((output - target) ** 2).mean() / 2.0)

    def fit(self, X, y) -> "MLPRegressor":
        X, y = as_matrix(X), as_vector(y)
        self._fit_loop(X, y.reshape(-1, 1))
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("coefs_")
        _, activations = self._forward(as_matrix(X))
        return activations[-1][:, 0]
