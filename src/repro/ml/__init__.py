"""The ML substrate: a mini scikit-learn.

Estimators follow the sklearn API (``fit``/``predict``/``transform``) and
expose their learned structure (tree arrays, weight vectors, category maps)
for Raven's cross-optimizer.
"""

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.ml.cluster import KMeans
from repro.ml.ensemble import (
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.ml.neural import MLPClassifier, MLPRegressor
from repro.ml.pipeline import ColumnTransformer, FeatureUnion, Pipeline
from repro.ml.preprocessing import (
    Binarizer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "Binarizer",
    "ColumnTransformer",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FeatureUnion",
    "GradientBoostingRegressor",
    "KMeans",
    "LabelEncoder",
    "Lasso",
    "LinearRegression",
    "LogisticRegression",
    "MinMaxScaler",
    "MLPClassifier",
    "MLPRegressor",
    "OneHotEncoder",
    "Pipeline",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Ridge",
    "SimpleImputer",
    "StandardScaler",
    "TransformerMixin",
]
