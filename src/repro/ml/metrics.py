"""Evaluation metrics used by the examples, tests, and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


def _check_lengths(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    if len(y_true) != len(y_pred):
        raise MLError(
            f"length mismatch: {len(y_true)} true vs {len(y_pred)} predicted"
        )
    if len(y_true) == 0:
        raise MLError("metrics need at least one sample")


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    _check_lengths(y_true, y_pred)
    return float((y_true == y_pred).mean())


def mean_squared_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    _check_lengths(y_true, y_pred)
    return float(((y_true - y_pred) ** 2).mean())


def mean_absolute_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    _check_lengths(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    _check_lengths(y_true, y_pred)
    ss_res = ((y_true - y_pred) ** 2).sum()
    ss_tot = ((y_true - y_true.mean()) ** 2).sum()
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return float(1.0 - ss_res / ss_tot)


def log_loss(y_true, y_proba, eps: float = 1e-12) -> float:
    """Binary cross-entropy; ``y_proba`` is P(class 1)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    p = np.clip(np.asarray(y_proba, dtype=np.float64), eps, 1.0 - eps)
    _check_lengths(y_true, p)
    return float(-(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)).mean())


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the rank statistic.

    Equivalent to the Mann-Whitney U estimator; ties get average rank.
    This is the AUC the paper uses to pick its two flight-delay models.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    _check_lengths(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise MLError("roc_auc_score needs both classes present")
    order = np.argsort(y_score, kind="stable")
    ranks = np.empty(len(y_score), dtype=np.float64)
    ranks[order] = np.arange(1, len(y_score) + 1)
    # Average ranks over tied scores.
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            avg = (i + j) / 2.0 + 1.0
            ranks[order[i : j + 1]] = avg
        i = j + 1
    rank_sum = ranks[y_true].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as class j."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    _check_lengths(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes.tolist())}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix
