"""Pipelines, feature unions, and column transformers.

A fitted :class:`Pipeline` is the paper's "model pipeline" M: featurizers
followed by a predictor. Raven's static analyzer decomposes these objects
step by step into MLD operators in the unified IR, so the classes keep
their structure fully introspectable (``steps``, ``transformer_list``,
``transformers``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import BaseEstimator, TransformerMixin, as_matrix


class Pipeline(BaseEstimator):
    """A linear chain of transformers ending in an estimator.

    ``steps`` is a list of ``(name, estimator)`` pairs; every step except
    the last must be a transformer. Mirrors ``sklearn.pipeline.Pipeline``.
    """

    def __init__(self, steps: list[tuple[str, BaseEstimator]]):
        if not steps:
            raise MLError("Pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise MLError(f"duplicate step names in {names}")
        self.steps = list(steps)
        self.feature_names_: list[str] | None = None

    # -- structure accessors -----------------------------------------------

    @property
    def named_steps(self) -> dict[str, BaseEstimator]:
        return dict(self.steps)

    @property
    def final_estimator(self) -> BaseEstimator:
        return self.steps[-1][1]

    @property
    def transformers(self) -> list[tuple[str, BaseEstimator]]:
        return self.steps[:-1]

    def __getitem__(self, key: str) -> BaseEstimator:
        return self.named_steps[key]

    # -- fit/predict ---------------------------------------------------------

    def fit(self, X, y=None) -> "Pipeline":
        if hasattr(X, "schema"):  # Table: remember feature column names
            self.feature_names_ = list(X.schema.names)
        data = as_matrix(X)
        for _, step in self.steps[:-1]:
            data = step.fit_transform(data, y)
        last = self.steps[-1][1]
        last.fit(data, y)
        return self

    def _transform_features(self, X) -> np.ndarray:
        data = as_matrix(X)
        for _, step in self.steps[:-1]:
            data = step.transform(data)
        return data

    def transform(self, X) -> np.ndarray:
        data = self._transform_features(X)
        last = self.steps[-1][1]
        if isinstance(last, TransformerMixin) or hasattr(last, "transform"):
            return last.transform(data)
        return data

    def predict(self, X) -> np.ndarray:
        return self.final_estimator.predict(self._transform_features(X))

    def predict_proba(self, X) -> np.ndarray:
        estimator = self.final_estimator
        if not hasattr(estimator, "predict_proba"):
            raise MLError(
                f"{type(estimator).__name__} does not support predict_proba"
            )
        return estimator.predict_proba(self._transform_features(X))

    def score(self, X, y) -> float:
        return self.final_estimator.score(self._transform_features(X), y)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"('{name}', {type(step).__name__})" for name, step in self.steps
        )
        return f"Pipeline([{inner}])"


class FeatureUnion(BaseEstimator, TransformerMixin):
    """Apply several transformers to the same input, concatenating outputs.

    Matches ``sklearn.pipeline.FeatureUnion`` — the ``Concat`` node in the
    paper's Fig. 1 IR.
    """

    def __init__(self, transformer_list: list[tuple[str, BaseEstimator]]):
        if not transformer_list:
            raise MLError("FeatureUnion needs at least one transformer")
        self.transformer_list = list(transformer_list)

    def fit(self, X, y=None) -> "FeatureUnion":
        data = as_matrix(X)
        for _, transformer in self.transformer_list:
            transformer.fit(data, y)
        return self

    def transform(self, X) -> np.ndarray:
        data = as_matrix(X)
        blocks = [t.transform(data) for _, t in self.transformer_list]
        return np.hstack(blocks)

    @property
    def n_features_out_(self) -> int:
        return int(
            sum(t.n_features_out_ for _, t in self.transformer_list)
        )


class ColumnTransformer(BaseEstimator, TransformerMixin):
    """Apply different transformers to disjoint column subsets.

    ``transformers`` entries are ``(name, transformer, column_indices)``;
    ``remainder`` is ``'drop'`` or ``'passthrough'``. Output blocks appear
    in the order listed, then the passthrough remainder. The per-block
    column maps (:meth:`output_blocks`) drive model-projection pushdown
    through featurizers.
    """

    def __init__(
        self,
        transformers: list[tuple[str, BaseEstimator, list[int]]],
        remainder: str = "drop",
    ):
        if remainder not in ("drop", "passthrough"):
            raise MLError("remainder must be 'drop' or 'passthrough'")
        self.transformers = list(transformers)
        self.remainder = remainder
        self.n_features_in_: int | None = None

    def _remainder_columns(self) -> list[int]:
        used = {c for _, _, cols in self.transformers for c in cols}
        return [j for j in range(self.n_features_in_ or 0) if j not in used]

    def fit(self, X, y=None) -> "ColumnTransformer":
        data = as_matrix(X)
        self.n_features_in_ = data.shape[1]
        for _, transformer, columns in self.transformers:
            transformer.fit(data[:, columns], y)
        return self

    def transform(self, X) -> np.ndarray:
        self.check_fitted("n_features_in_")
        data = as_matrix(X)
        blocks = [
            transformer.transform(data[:, columns])
            for _, transformer, columns in self.transformers
        ]
        if self.remainder == "passthrough":
            rest = self._remainder_columns()
            if rest:
                blocks.append(data[:, rest])
        return np.hstack(blocks) if blocks else np.empty((data.shape[0], 0))

    def output_blocks(self) -> list[tuple[str, list[int], int]]:
        """Layout of the output: ``(name, input columns, output width)``."""
        self.check_fitted("n_features_in_")
        blocks = []
        for name, transformer, columns in self.transformers:
            width = getattr(transformer, "n_features_out_", len(columns))
            blocks.append((name, list(columns), int(width)))
        if self.remainder == "passthrough":
            rest = self._remainder_columns()
            if rest:
                blocks.append(("remainder", rest, len(rest)))
        return blocks

    @property
    def n_features_out_(self) -> int:
        return int(sum(width for _, _, width in self.output_blocks()))
