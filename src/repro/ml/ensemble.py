"""Tree ensembles: random forests and gradient boosting.

Random forests are the workload for Fig. 2(d) and Fig. 3 (RF translated to
a neural network and scored in the tensor runtime). The fitted estimators
expose their member trees (``estimators_``) so the converters and the
cross-optimizer can operate per-tree.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    as_matrix,
    as_vector,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _ForestMixin:
    """Bootstrap + feature-subsampling fit loop shared by both forests."""

    def _fit_forest(self, X: np.ndarray, y: np.ndarray, make_tree) -> list:
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        estimators = []
        for _ in range(self.n_estimators):
            tree = make_tree(rng)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            estimators.append(tree)
        return estimators

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        return int(self.max_features)


class RandomForestClassifier(BaseEstimator, ClassifierMixin, _ForestMixin):
    """Bagged CART classifiers with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 10,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = as_matrix(X), as_vector(y)
        self.classes_ = np.unique(y)
        self.n_features_in_ = X.shape[1]
        max_features = self._resolve_max_features(X.shape[1])

        def make_tree(rng: np.random.Generator) -> DecisionTreeClassifier:
            return DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31)),
            )

        self.estimators_ = self._fit_forest(X, y, make_tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self.check_fitted("estimators_", "classes_")
        X = as_matrix(X)
        total = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Align tree-local classes onto the forest's class set.
            cols = np.searchsorted(self.classes_, tree.classes_)
            total[:, cols] += proba
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        self.check_fitted("classes_")
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class RandomForestRegressor(BaseEstimator, RegressorMixin, _ForestMixin):
    """Bagged CART regressors."""

    def __init__(
        self,
        n_estimators: int = 10,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] | None = None
        self.n_features_in_: int | None = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = as_matrix(X), as_vector(y)
        self.n_features_in_ = X.shape[1]
        max_features = self._resolve_max_features(X.shape[1])

        def make_tree(rng: np.random.Generator) -> DecisionTreeRegressor:
            return DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(0, 2**31)),
            )

        self.estimators_ = self._fit_forest(X, y, make_tree)
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("estimators_")
        X = as_matrix(X)
        total = np.zeros(X.shape[0])
        for tree in self.estimators_:
            total += tree.predict(X)
        return total / len(self.estimators_)


class GradientBoostingRegressor(BaseEstimator, RegressorMixin):
    """Least-squares gradient boosting over shallow CART trees.

    An "extension" model beyond the paper's evaluation set — included
    because tree-ensemble inlining and NN translation apply to it unchanged
    (the paper notes "the same technique would work for tree ensembles").
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        random_state: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] | None = None
        self.init_: float = 0.0

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = as_matrix(X), as_vector(y)
        self.init_ = float(y.mean())
        prediction = np.full(len(y), self.init_)
        rng = np.random.default_rng(self.random_state)
        estimators = []
        for _ in range(self.n_estimators):
            residual = y - prediction
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                random_state=int(rng.integers(0, 2**31)),
            )
            tree.fit(X, residual)
            prediction = prediction + self.learning_rate * tree.predict(X)
            estimators.append(tree)
        self.estimators_ = estimators
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("estimators_")
        X = as_matrix(X)
        prediction = np.full(X.shape[0], self.init_)
        for tree in self.estimators_:
            prediction = prediction + self.learning_rate * tree.predict(X)
        return prediction
