"""Linear models: OLS, ridge, lasso, and logistic regression with L1/L2.

L1 (lasso) support matters for the reproduction: Fig. 2(a)'s
model-projection pushdown exploits the zero weights L1 regularization
produces. Logistic L1 is solved by proximal gradient descent (ISTA with
backtracking-free fixed step from the Lipschitz bound), which drives small
weights exactly to zero as the paper's scikit-learn ``liblinear`` setup does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    as_matrix,
    as_vector,
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via ``lstsq``."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = as_matrix(X), as_vector(y)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("coef_")
        return as_matrix(X) @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularized least squares, closed form."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        X, y = as_matrix(X), as_vector(y)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("coef_")
        return as_matrix(X) @ self.coef_ + self.intercept_


class Lasso(BaseEstimator, RegressorMixin):
    """L1-regularized least squares via coordinate descent."""

    def __init__(
        self,
        alpha: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 1000,
        tol: float = 1e-6,
    ):
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "Lasso":
        X, y = as_matrix(X), as_vector(y)
        n, d = X.shape
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(d), 0.0
            Xc, yc = X, y
        coef = np.zeros(d)
        col_norms = (Xc**2).sum(axis=0)
        residual = yc - Xc @ coef
        threshold = self.alpha * n
        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if col_norms[j] == 0.0:
                    continue
                rho = Xc[:, j] @ residual + col_norms[j] * coef[j]
                new = np.sign(rho) * max(abs(rho) - threshold, 0.0) / col_norms[j]
                delta = new - coef[j]
                if delta != 0.0:
                    residual -= Xc[:, j] * delta
                    coef[j] = new
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = iteration + 1
            if max_delta < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, X) -> np.ndarray:
        self.check_fitted("coef_")
        return as_matrix(X) @ self.coef_ + self.intercept_

    @property
    def sparsity_(self) -> float:
        """Fraction of exactly-zero coefficients (paper's Fig 2(a) metric)."""
        self.check_fitted("coef_")
        return float((self.coef_ == 0.0).mean())


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression with L1 or L2 regularization.

    ``penalty='l1'`` uses proximal gradient (soft-thresholding), producing
    exact zeros; ``penalty='l2'`` uses plain gradient descent with the same
    Lipschitz step. ``C`` is the inverse regularization strength, matching
    scikit-learn's parameterization (small ``C`` = strong regularization =
    sparser model).
    """

    def __init__(
        self,
        penalty: str = "l2",
        C: float = 1.0,
        fit_intercept: bool = True,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        if penalty not in ("l1", "l2", "none"):
            raise MLError(f"unknown penalty {penalty!r}")
        self.penalty = penalty
        self.C = C
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None
        self.n_iter_: int = 0

    def fit(self, X, y) -> "LogisticRegression":
        X, y = as_matrix(X), as_vector(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise MLError(
                f"binary classifier got {len(self.classes_)} classes"
            )
        target = (y == self.classes_[1]).astype(np.float64)
        n, d = X.shape
        coef = np.zeros(d)
        intercept = 0.0
        # Lipschitz constant of the logistic loss gradient: ||X||^2 / (4n).
        lipschitz = (np.linalg.norm(X, ord=2) ** 2) / (4.0 * n) + 1e-12
        step = 1.0 / lipschitz
        reg = 1.0 / (self.C * n) if self.penalty != "none" else 0.0
        for iteration in range(self.max_iter):
            z = X @ coef + intercept
            p = _sigmoid(z)
            grad = X.T @ (p - target) / n
            if self.penalty == "l2":
                grad = grad + reg * coef
            new_coef = coef - step * grad
            if self.penalty == "l1":
                shrink = step * reg
                new_coef = np.sign(new_coef) * np.maximum(
                    np.abs(new_coef) - shrink, 0.0
                )
            if self.fit_intercept:
                intercept -= step * float((p - target).mean())
            delta = np.max(np.abs(new_coef - coef)) if d else 0.0
            coef = new_coef
            self.n_iter_ = iteration + 1
            if delta < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(intercept)
        return self

    def decision_function(self, X) -> np.ndarray:
        self.check_fitted("coef_")
        return as_matrix(X) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        self.check_fitted("classes_")
        return self.classes_[
            (self.decision_function(X) > 0.0).astype(np.int64)
        ]

    @property
    def sparsity_(self) -> float:
        """Fraction of exactly-zero coefficients."""
        self.check_fitted("coef_")
        return float((self.coef_ == 0.0).mean())
