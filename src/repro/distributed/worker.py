"""The per-process fragment executor (runs inside pool workers).

Each worker process keeps two module-level caches:

* ``_SHARD_CACHE`` — shard tables keyed by their catalog token
  ``(table, shard_id, epoch)``. The coordinator ships shard columns
  only when a worker reports a miss (the ship-on-miss protocol in
  :mod:`repro.distributed.runtime`), so steady-state queries move plan
  JSON and results, not data.
* ``_MODEL_CACHE`` — decoded model bundles keyed by content hash, so a
  hot PREDICT fragment deserializes its model once per process, not
  once per call.

Fragments execute through the ordinary relational
:class:`~repro.relational.algebra.executor.Executor` with intra-worker
parallelism disabled — the process pool *is* the parallelism, and
nested thread pools would oversubscribe the machine.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from repro.distributed import serialize
from repro.errors import ExecutionError
from repro.ml import model_format
from repro.relational.table import Table

#: Worker-side cache caps. Shards dominate memory (a cached shard is
#: 1/num_shards of its table), so the cap bounds worker growth when
#: many tables are sharded.
MAX_CACHED_SHARDS = 64
MAX_CACHED_MODELS = 16

_SHARD_CACHE: "OrderedDict[tuple, Table]" = OrderedDict()
_MODEL_CACHE: "OrderedDict[str, object]" = OrderedDict()

#: Status markers in the worker reply.
OK = "ok"
MISSING_SHARD = "missing_shard"


def run_fragment(task: dict) -> dict:
    """Execute one plan fragment against one shard; returns a reply dict.

    ``task`` carries the fragment JSON spec, the shard token, and —
    only when the coordinator is answering a miss — the shard's schema,
    columns, and partition size.
    """
    token = tuple(task["shard_token"])
    shard = _resolve_shard(task, token)
    if shard is None:
        return {"status": MISSING_SHARD, "shard_token": list(token)}
    fragment = serialize.decode_fragment(task["fragment"], _load_model)
    result = execute_fragment(fragment, shard)
    return {
        "status": OK,
        "shard_token": list(token),
        "schema": serialize.encode_schema(result.schema),
        "columns": result.to_dict(),
    }


def execute_fragment(fragment, shard: Table) -> Table:
    """Run a decoded fragment over one shard table, single-threaded."""
    from repro.relational.algebra.executor import ExecutionOptions, Executor

    executor = Executor(
        table_provider=lambda name: _provide_shard(name, shard),
        model_resolver=_WorkerModelResolver(),
        options=ExecutionOptions(
            parallel_predict=False,
            morsel_parallel_predict=False,
            max_workers=1,
        ),
    )
    return executor.execute(fragment)


def _provide_shard(name: str, shard: Table) -> Table:
    if name != serialize.SHARD_TABLE:
        raise ExecutionError(
            f"fragment scanned {name!r}; only the shipped shard "
            f"({serialize.SHARD_TABLE!r}) is visible to a worker"
        )
    return shard


def _resolve_shard(task: dict, token: tuple) -> Table | None:
    columns = task.get("columns")
    if columns is None:
        cached = _SHARD_CACHE.get(token)
        if cached is not None:
            _SHARD_CACHE.move_to_end(token)
        return cached
    schema = serialize.decode_schema(task["shard_schema"])
    shard = Table(schema, columns, task.get("partition_size"))
    _SHARD_CACHE[token] = shard
    _SHARD_CACHE.move_to_end(token)
    while len(_SHARD_CACHE) > MAX_CACHED_SHARDS:
        _SHARD_CACHE.popitem(last=False)
    return shard


def _load_model(bundle_json: str) -> object:
    key = hashlib.sha1(bundle_json.encode("utf-8")).hexdigest()
    cached = _MODEL_CACHE.get(key)
    if cached is not None:
        _MODEL_CACHE.move_to_end(key)
        return cached
    model = model_format.loads(bundle_json)
    _MODEL_CACHE[key] = model
    while len(_MODEL_CACHE) > MAX_CACHED_MODELS:
        _MODEL_CACHE.popitem(last=False)
    return model


def clear_caches() -> None:
    """Drop both worker caches (tests use this for isolation)."""
    _SHARD_CACHE.clear()
    _MODEL_CACHE.clear()


class _WorkerModelResolver:
    """Scores the payload shipped with the fragment; no catalog exists."""

    def resolve_scorer(self, model_ref: str, output_columns):
        raise ExecutionError(
            f"fragment references catalog model {model_ref!r} without a "
            "shipped payload; workers have no model catalog"
        )

    def resolve_inline_scorer(
        self,
        payload: object,
        feature_names: Sequence[str] | None,
        output_columns,
    ) -> Callable[[Table], dict[str, np.ndarray]]:
        features = list(feature_names) if feature_names is not None else None
        output_names = [name for name, _dtype in output_columns]

        def score(table: Table) -> dict[str, np.ndarray]:
            matrix = table.to_matrix(features)
            raw = np.asarray(payload.predict(matrix), dtype=np.float64)
            if raw.ndim == 1:
                raw = raw.reshape(-1, 1)
            if raw.shape[1] < len(output_names):
                raise ExecutionError(
                    f"model produced {raw.shape[1]} outputs, fragment "
                    f"declared {len(output_names)}"
                )
            return {name: raw[:, i] for i, name in enumerate(output_names)}

        return score
