"""The per-process fragment executor (runs inside pool workers).

Each worker process keeps two module-level caches:

* ``_SHARD_CACHE`` — shard tables keyed by their catalog token
  ``(table, shard_id, epoch)``. The coordinator ships shard columns
  only when a worker reports a miss (the ship-on-miss protocol in
  :mod:`repro.distributed.runtime`), so steady-state queries move plan
  JSON and results, not data. Co-located join tasks resolve *several*
  shards (one per fragment table) through the same cache.
* ``_MODEL_CACHE`` — decoded model bundles keyed by content hash, so a
  hot PREDICT fragment deserializes its model once per process, not
  once per call.

Besides plain fragments, workers run the two halves of the shuffle
exchange: :func:`run_shuffle_map` executes a side's fragment over its
shard and hash-partitions the result into key-disjoint buckets, and
:func:`run_bucket_join` joins one bucket pair shipped back by the
coordinator. Empty buckets are represented as ``None`` and are never
dispatched for joining — an INNER join over an empty input is provably
empty (the empty-bucket guard).

Fragments execute through the ordinary relational
:class:`~repro.relational.algebra.executor.Executor` with intra-worker
parallelism disabled — the process pool *is* the parallelism, and
nested thread pools would oversubscribe the machine.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.distributed import serialize
from repro.distributed.operators import SHARD_TABLE, shard_target
from repro.distributed.shards import hash_buckets
from repro.errors import ExecutionError
from repro.ml import model_format
from repro.relational.table import Table

#: Worker-side cache caps. Shards dominate memory (a cached shard is
#: 1/num_shards of its table), so the cap bounds worker growth when
#: many tables are sharded.
MAX_CACHED_SHARDS = 64
MAX_CACHED_MODELS = 16
MAX_CACHED_FRAGMENTS = 16

_SHARD_CACHE: "OrderedDict[tuple, Table]" = OrderedDict()
_MODEL_CACHE: "OrderedDict[str, object]" = OrderedDict()
#: Compiled scoring sessions keyed ``(id(payload), backend)`` — see
#: :func:`_compiled_worker_scorer`.
_COMPILED_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
#: Decoded fragments keyed by spec-dict identity (identity-checked on
#: read). The coordinator's in-process path passes the same cached spec
#: object for every shard of a gather, so the JSON→logical decode runs
#: once per plan instead of once per shard. Pool workers receive a
#: fresh unpickled dict per task, so the cache is a no-op there.
_FRAGMENT_CACHE: "OrderedDict[int, tuple[dict, object]]" = OrderedDict()

#: Status markers in the worker reply.
OK = "ok"
MISSING_SHARD = "missing_shard"


def _shard_entries(task: dict) -> list[dict]:
    """The task's shard descriptors (new multi-shard or legacy form)."""
    entries = task.get("shards")
    if entries is not None:
        return entries
    entry = {"token": task["shard_token"]}
    if "columns" in task:
        entry["schema"] = task["shard_schema"]
        entry["columns"] = task["columns"]
        entry["partition_size"] = task.get("partition_size")
    return [entry]


def _resolve_entries(task: dict) -> tuple[dict[str, Table], list[str]]:
    """``(shards by localized name, missing table names)`` for a task."""
    shards: dict[str, Table] = {}
    missing: list[str] = []
    for entry in _shard_entries(task):
        token = tuple(entry["token"])
        table_name = str(entry.get("table") or token[0])
        shard = _resolve_shard(entry, token)
        if shard is None:
            missing.append(table_name)
        else:
            shards[shard_target(table_name)] = shard
    return shards, missing


def run_fragment(task: dict) -> dict:
    """Execute one plan fragment against its shard(s); returns a reply.

    ``task`` carries the fragment JSON spec and one shard descriptor
    per fragment table — each a token, plus (only when the coordinator
    is answering a miss) the shard's schema, columns, and partition
    size.
    """
    shards, missing = _resolve_entries(task)
    if missing:
        return {"status": MISSING_SHARD, "missing": missing}
    start = time.perf_counter()
    result = execute_fragment(_decode_cached(task["fragment"]), shards)
    elapsed = time.perf_counter() - start
    return {
        "status": OK,
        "schema": serialize.encode_schema(result.schema),
        "columns": result.to_dict(),
        # Worker-side timings ride back in the reply: the coordinator
        # cannot see this process's clock any other way, and the trace
        # layer attaches them to the query's fragment spans.
        "timings": {"execute_seconds": elapsed, "rows": result.num_rows},
    }


def _decode_cached(spec: dict):
    key = id(spec)
    cached = _FRAGMENT_CACHE.get(key)
    if cached is not None and cached[0] is spec:
        _FRAGMENT_CACHE.move_to_end(key)
        return cached[1]
    fragment = serialize.decode_fragment(spec, _load_model)
    _FRAGMENT_CACHE[key] = (spec, fragment)
    while len(_FRAGMENT_CACHE) > MAX_CACHED_FRAGMENTS:
        _FRAGMENT_CACHE.popitem(last=False)
    return fragment


def run_shuffle_map(task: dict) -> dict:
    """Map half of the shuffle: fragment over one shard, then bucket.

    The result rows are hash-partitioned on ``task["key"]`` into
    ``task["num_buckets"]`` key-disjoint buckets; empty buckets reply
    as ``None`` so the coordinator never routes (or joins) them.
    """
    shards, missing = _resolve_entries(task)
    if missing:
        return {"status": MISSING_SHARD, "missing": missing}
    start = time.perf_counter()
    result = execute_fragment(_decode_cached(task["fragment"]), shards)
    buckets = bucketize(result, task["key"], int(task["num_buckets"]))
    elapsed = time.perf_counter() - start
    return {
        "status": OK,
        "schema": serialize.encode_schema(result.schema),
        "buckets": [
            bucket.to_dict() if bucket is not None else None
            for bucket in buckets
        ],
        "timings": {"execute_seconds": elapsed, "rows": result.num_rows},
    }


def run_bucket_join(task: dict) -> dict:
    """Reduce half of the shuffle: join one bucket pair locally, then
    run any post-join ``stages`` over the joined rows.

    Each stage is a pipeline spec whose leaf is a ``stage_input``
    placeholder; the worker binds it to the previous stage's result and
    executes in place — so filters, PREDICT, and partial aggregates run
    where the join ran, and only the final stage's (usually much
    smaller) output returns to the coordinator. Per-stage timings ride
    back in the reply so traces and serving stats can show where bucket
    time went.
    """
    from repro.distributed.operators import bind_stage_input
    from repro.relational.algebra import logical

    left = Table(
        serialize.decode_schema(task["left"]["schema"]),
        task["left"]["columns"],
    )
    right = Table(
        serialize.decode_schema(task["right"]["schema"]),
        task["right"]["columns"],
    )
    condition = serialize.decode_expression(task["condition"])
    plan = logical.Join(
        logical.InlineTable(left),
        logical.InlineTable(right),
        task.get("kind", "INNER"),
        condition,
    )
    executor = _single_threaded_executor(lambda _name: _no_table(_name))
    start = time.perf_counter()
    result = executor.execute(plan)
    join_elapsed = time.perf_counter() - start
    stage_timings: list[dict] = []
    for spec in task.get("stages") or ():
        stage_start = time.perf_counter()
        stage_plan = bind_stage_input(_decode_cached(spec), result)
        result = executor.execute(stage_plan)
        stage_timings.append(
            {
                "seconds": time.perf_counter() - stage_start,
                "rows": result.num_rows,
            }
        )
    timings = {
        "execute_seconds": time.perf_counter() - start,
        "join_seconds": join_elapsed,
        "rows": result.num_rows,
    }
    if stage_timings:
        timings["stages"] = stage_timings
    return {
        "status": OK,
        "schema": serialize.encode_schema(result.schema),
        "columns": result.to_dict(),
        "timings": timings,
    }


def bucketize(table: Table, key: str, num_buckets: int) -> list[Table | None]:
    """Hash-partition rows on ``key`` into ``num_buckets`` buckets.

    Empty buckets come back as ``None`` — the caller must guard its
    dispatch on them (an empty bucket has no rows to join or ship).
    """
    if num_buckets < 1:
        raise ExecutionError(f"num_buckets must be >= 1, got {num_buckets}")
    if table.num_rows == 0:
        return [None] * num_buckets
    values = table.column(table.resolve_name(key))
    assignment = hash_buckets(values, num_buckets)
    buckets: list[Table | None] = []
    for bucket_id in range(num_buckets):
        indices = np.nonzero(assignment == bucket_id)[0]
        buckets.append(table.take(indices) if len(indices) else None)
    return buckets


def _no_table(name: str) -> Table:
    raise ExecutionError(
        f"bucket-join plan scanned {name!r}; bucket joins only read their "
        "shipped inline inputs"
    )


def _single_threaded_executor(table_provider):
    from repro.relational.algebra.executor import ExecutionOptions, Executor

    return Executor(
        table_provider=table_provider,
        model_resolver=_WorkerModelResolver(),
        options=ExecutionOptions(
            parallel_predict=False,
            morsel_parallel_predict=False,
            max_workers=1,
        ),
    )


def execute_fragment(
    fragment, shards: Table | Mapping[str, Table]
) -> Table:
    """Run a decoded fragment over its shard table(s), single-threaded.

    ``shards`` is either a mapping from localized scan name
    (:func:`~repro.distributed.operators.shard_target`) to shard table,
    or — the single-table convenience used by tests and the legacy
    protocol — one bare :class:`Table` served under any shard name.
    """
    if isinstance(shards, Table):
        single = shards
        provider = lambda name: _provide_single(name, single)  # noqa: E731
    else:
        mapping = dict(shards)
        provider = lambda name: _provide_mapped(name, mapping)  # noqa: E731
    return _single_threaded_executor(provider).execute(fragment)


def _provide_single(name: str, shard: Table) -> Table:
    if name == SHARD_TABLE or name.startswith(SHARD_TABLE + ":"):
        return shard
    raise ExecutionError(
        f"fragment scanned {name!r}; only the shipped shard is visible "
        "to a worker"
    )


def _provide_mapped(name: str, shards: Mapping[str, Table]) -> Table:
    shard = shards.get(name)
    if shard is None:
        raise ExecutionError(
            f"fragment scanned {name!r}; shipped shards are "
            f"{sorted(shards)}"
        )
    return shard


def _resolve_shard(entry: dict, token: tuple) -> Table | None:
    columns = entry.get("columns")
    if columns is None:
        cached = _SHARD_CACHE.get(token)
        if cached is not None:
            _SHARD_CACHE.move_to_end(token)
        return cached
    schema = serialize.decode_schema(entry["schema"])
    shard = Table(schema, columns, entry.get("partition_size"))
    if entry.get("transient"):
        # In-process (coordinator) execution: never seed the module
        # cache — forked pool workers would inherit entries whose
        # tokens can collide across databases.
        return shard
    _SHARD_CACHE[token] = shard
    _SHARD_CACHE.move_to_end(token)
    while len(_SHARD_CACHE) > MAX_CACHED_SHARDS:
        _SHARD_CACHE.popitem(last=False)
    return shard


def _load_model(bundle_json: str) -> object:
    key = hashlib.sha1(bundle_json.encode("utf-8")).hexdigest()
    cached = _MODEL_CACHE.get(key)
    if cached is not None:
        _MODEL_CACHE.move_to_end(key)
        return cached
    model = model_format.loads(bundle_json)
    _MODEL_CACHE[key] = model
    while len(_MODEL_CACHE) > MAX_CACHED_MODELS:
        _MODEL_CACHE.popitem(last=False)
    return model


def clear_caches() -> None:
    """Drop the worker caches (tests use this for isolation)."""
    _SHARD_CACHE.clear()
    _MODEL_CACHE.clear()
    _FRAGMENT_CACHE.clear()
    _COMPILED_CACHE.clear()


def _compiled_worker_scorer(payload: object, features, backend: str):
    """Worker-side compiled session for a shipped payload, cached.

    Shipped payloads are interned by :func:`_load_model` (stable
    identity per bundle per worker process), so ``(id(payload),
    backend)`` keys a process-level cache of compiled sessions — the
    expensive NN translation + fusion runs once per worker, not once
    per fragment. The payload itself is pinned in the cache entry so a
    recycled id can never alias a different model.
    """
    key = (id(payload), backend)
    cached = _COMPILED_CACHE.get(key)
    if cached is not None and cached[0] is payload:
        return cached[1]
    from repro.tensor.backends import compiled_pipeline_scorer

    scorer = compiled_pipeline_scorer(
        payload, len(features) if features else None, backend
    )
    _COMPILED_CACHE[key] = (payload, scorer)
    while len(_COMPILED_CACHE) > MAX_CACHED_MODELS:
        _COMPILED_CACHE.popitem(last=False)
    return scorer


class _WorkerModelResolver:
    """Scores the payload shipped with the fragment; no catalog exists."""

    def resolve_scorer(self, model_ref: str, output_columns, backend="numpy"):
        raise ExecutionError(
            f"fragment references catalog model {model_ref!r} without a "
            "shipped payload; workers have no model catalog"
        )

    def resolve_inline_scorer(
        self,
        payload: object,
        feature_names: Sequence[str] | None,
        output_columns,
        backend: str = "numpy",
    ) -> Callable[[Table], dict[str, np.ndarray]]:
        features = list(feature_names) if feature_names is not None else None
        output_names = [name for name, _dtype in output_columns]
        compiled = None
        if (backend or "numpy").lower() != "numpy":
            compiled = _compiled_worker_scorer(payload, features, backend)

        def score(table: Table) -> dict[str, np.ndarray]:
            matrix = table.to_matrix(features)
            if compiled is not None:
                raw = np.asarray(compiled(matrix), dtype=np.float64)
            else:
                raw = np.asarray(payload.predict(matrix), dtype=np.float64)
            if raw.ndim == 1:
                raw = raw.reshape(-1, 1)
            if raw.shape[1] < len(output_names):
                raise ExecutionError(
                    f"model produced {raw.shape[1]} outputs, fragment "
                    f"declared {len(output_names)}"
                )
            return {name: raw[:, i] for i, name in enumerate(output_names)}

        return score
