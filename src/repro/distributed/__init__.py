"""Distributed shard execution: zone-map-routed scatter-gather.

The ROADMAP's "distributed partitions" item delivered: a table can be
split into hash- or range-keyed *shards* (each a full partitioned
:class:`~repro.relational.table.Table` with its own zone maps and
statistics), plan fragments run on a multi-process worker pool (escaping
the in-process GIL ceiling), and results come back through ``Gather``
exchange operators. The same zone-map metadata that prunes partitions
inside one process prunes whole shards before any fragment is
dispatched.

Layers:

* :mod:`repro.distributed.shards` — :class:`ShardedTable` and the
  hash/range :class:`ShardingSpec`;
* :mod:`repro.distributed.routing` — shard pruning from per-shard
  statistics (the zone-map logic one level up);
* :mod:`repro.distributed.operators` — ``ShardScan``/``Gather``/
  ``Repartition`` logical operators (exchange operators in the memo);
* :mod:`repro.distributed.serialize` — the data-not-code JSON codec for
  plan fragments (expressions, operators, model bundles);
* :mod:`repro.distributed.worker` — the per-process fragment executor
  with shard/model caches;
* :mod:`repro.distributed.runtime` — the coordinator: a lazy
  ``ProcessPoolExecutor``, the ship-on-miss shard protocol, fan-out
  statistics, and the in-process fallback used by tests.
"""

from repro.distributed.operators import (
    Gather,
    Repartition,
    ShardScan,
    Shuffle,
    ShuffleJoin,
)
from repro.distributed.routing import (
    compatible_layouts,
    surviving_shards,
)
from repro.distributed.runtime import DistributedRuntime
from repro.distributed.shards import ShardedTable, ShardingSpec, hash_buckets

__all__ = [
    "DistributedRuntime",
    "Gather",
    "Repartition",
    "ShardScan",
    "ShardedTable",
    "ShardingSpec",
    "Shuffle",
    "ShuffleJoin",
    "compatible_layouts",
    "hash_buckets",
    "surviving_shards",
]
