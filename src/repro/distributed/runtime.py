"""The scatter-gather coordinator: worker pool, routing stats, fallback.

``DistributedRuntime`` owns one lazy ``ProcessPoolExecutor`` per
database (amortizing process start-up across queries), encodes each
``Gather``'s fragment once (identity-cached — cached plans re-dispatch
the same fragment object for every execution), and drives the
ship-on-miss shard protocol: tasks go out carrying only the shard
token; a worker that has not cached that shard replies ``missing`` and
the task is re-sent with the columns attached. Steady state moves plan
JSON and result columns only.

Every gather reports ``(shards scanned, shards pruned, per-fragment
latencies)`` to registered observers — the serving layer's
:class:`~repro.serving.stats.ServingStats` subscribes here — and to the
runtime's own counters (benchmarks read those).

If the process pool cannot be created or breaks (restricted
environments, fork bombs protection), execution degrades permanently to
in-process fragment execution: still correct, still pruned, just not
parallel across processes.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable

from repro.concurrency import default_max_workers
from repro.distributed import serialize, worker
from repro.observability import events
from repro.observability import trace as qtrace
from repro.distributed.operators import (
    Gather,
    ShuffleJoin,
    fragment_tables,
)
from repro.distributed.shards import ShardedTable
from repro.errors import RuntimeDispatchError
from repro.relational.table import Table

#: An encoded-fragment identity cache larger than any plan cache is
#: pointless; stale entries pin model bundles, so keep it modest.
MAX_CACHED_FRAGMENTS = 64


def _pool_failures() -> tuple:
    """Exception types that mean "the pool is unusable", not "the
    fragment is buggy" — only these trigger the in-process fallback."""
    import pickle

    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - ancient stdlib
        BrokenProcessPool = OSError
    from concurrent.futures import TimeoutError as FuturesTimeout

    return (
        BrokenProcessPool,
        FuturesTimeout,
        OSError,
        PermissionError,
        pickle.PicklingError,
    )


_POOL_FAILURES = _pool_failures()

#: Every live runtime, weakly held — the leak check in the test suite
#: (and any teardown audit) asks which of them still own a process
#: pool. Entries vanish with their runtimes; no unregister needed.
_LIVE_RUNTIMES: "weakref.WeakSet[DistributedRuntime]" = weakref.WeakSet()


def live_pool_runtimes() -> "list[DistributedRuntime]":
    """Runtimes currently holding a live process pool.

    ``Database.close()`` (or ``DistributedRuntime.shutdown()``) must
    leave this empty; the conftest leak fixture asserts exactly that
    after every test.
    """
    return [r for r in list(_LIVE_RUNTIMES) if r._pool is not None]


class DistributedRuntime:
    """Runs ``Gather`` operators for one database."""

    def __init__(
        self,
        max_workers: int | None = None,
        mode: str = "process",
        fragment_timeout: float = 120.0,
        model_resolver: Callable[[str], object] | None = None,
    ):
        if mode not in ("process", "inprocess"):
            raise RuntimeDispatchError(
                f"unknown distributed mode {mode!r}"
            )
        self.max_workers = max_workers or default_max_workers()
        self.mode = mode
        self.fragment_timeout = fragment_timeout
        self.model_resolver = model_resolver
        self._pool = None
        self._pool_broken = False
        self._lock = threading.Lock()
        self._fragment_specs: "dict[int, tuple[object, dict]]" = {}
        self._observers: list[Callable[[int, int, list[float]], None]] = []
        # Counters (guarded by the lock; benchmarks and stats read them).
        self.queries = 0
        self.shards_scanned = 0
        self.shards_pruned = 0
        self.fragments_run = 0
        self.stages_run = 0
        self.shard_ships = 0
        self.shuffle_joins = 0
        self.buckets_joined = 0
        self.buckets_skipped = 0
        _LIVE_RUNTIMES.add(self)

    # -- observers ---------------------------------------------------------

    def add_observer(
        self, fn: Callable[[int, int, list[float]], None]
    ) -> None:
        """Register ``fn(shards_scanned, shards_pruned, fragment_seconds)``."""
        with self._lock:
            self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        with self._lock:
            try:
                self._observers.remove(fn)
            except ValueError:
                pass

    def _notify(
        self,
        scanned: int,
        pruned: int,
        latencies: list[float],
        stage_seconds: list[float] | None = None,
        table: str | None = None,
    ) -> None:
        stage_seconds = stage_seconds or []
        with self._lock:
            self.queries += 1
            self.shards_scanned += scanned
            self.shards_pruned += pruned
            self.fragments_run += len(latencies)
            self.stages_run += len(stage_seconds)
            observers = list(self._observers)
        for fn in observers:
            fn(scanned, pruned, latencies, stage_seconds)
        if events.BUS.active:
            events.emit(
                "distributed.gather",
                scanned=scanned,
                pruned=pruned,
                fragment_seconds=list(latencies),
                stage_seconds=list(stage_seconds),
                mode=self.effective_mode,
                # The routed table (None for shuffle joins, whose
                # pruning spans two sides) — the workload watchdog
                # attributes shard-prune quality per table with it.
                table=table,
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "mode": self.effective_mode,
                "queries": self.queries,
                "shards_scanned": self.shards_scanned,
                "shards_pruned": self.shards_pruned,
                "fragments_run": self.fragments_run,
                "stages_run": self.stages_run,
                "shard_ships": self.shard_ships,
                "shuffle_joins": self.shuffle_joins,
                "buckets_joined": self.buckets_joined,
                "buckets_skipped": self.buckets_skipped,
            }

    # -- pool lifecycle ----------------------------------------------------

    @property
    def effective_mode(self) -> str:
        return "inprocess" if self._pool_broken else self.mode

    def _ensure_pool(self):
        with self._lock:
            if self._pool is not None:
                return self._pool
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; a later gather restarts it)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- gather execution --------------------------------------------------

    def run_gather(self, op: Gather, shardeds) -> list[Table]:
        """Fragment results for each routed shard, in shard order.

        ``shardeds`` maps each fragment table (lowercased) to its
        :class:`ShardedTable`; a bare :class:`ShardedTable` is accepted
        for single-table fragments (the pre-join calling convention).

        Routing is re-derived here against the *bound* fragment: a
        prepared query's ``?`` shard-key parameter — unroutable at
        optimize time — prunes exactly at execution time. Co-located
        join fragments route through every side's shard statistics and
        skip shard pairs where either side is empty.
        """
        from repro.distributed.routing import (
            colocated_shard_ids,
            effective_shard_ids,
        )

        if isinstance(shardeds, ShardedTable):
            shardeds = {op.table_name.lower(): shardeds}
        with qtrace.span("routing", table=op.table_name) as sp:
            if op.join == "colocated":
                shard_ids, _pruned = colocated_shard_ids(
                    op.fragment, shardeds
                )
                total = op.total_shards
            else:
                sharded = shardeds[op.table_name.lower()]
                shard_ids = effective_shard_ids(op, sharded)
                total = sharded.num_shards
            sp.set("shards_scanned", len(shard_ids))
            sp.set("shards_total", total)
        spec = self._fragment_spec(op.fragment)
        tables = fragment_tables(op.fragment)
        tasks = [
            (shard_id, [(name, shardeds[name], shard_id) for name in tables])
            for shard_id in shard_ids
        ]
        latencies: list[float] = []
        results = self._dispatch(worker.run_fragment, spec, tasks, latencies)
        self._notify(
            len(shard_ids),
            total - len(shard_ids),
            latencies,
            table=op.table_name,
        )
        return [_decode_result(results[shard_id]) for shard_id in shard_ids]

    # -- shuffle joins -----------------------------------------------------

    def run_shuffle_join(self, op: ShuffleJoin, sides) -> list[Table]:
        """Bucket-pair join results, in bucket order (empties skipped).

        ``sides`` is ``[(shuffle, sharded_or_none, local_table_or_none),
        ...]`` for the left and right side: sharded sides map on the
        worker pool (fragment → hash-partition, reusing the
        ship-on-miss shard caches), unsharded sides arrive pre-executed
        as a local table the coordinator partitions itself. Bucket *k*
        of both sides then joins on one worker.

        The empty-bucket guard is join-kind aware: an INNER pair is
        skipped when either side is empty, a LEFT pair only when its
        *left* (NULL-preserved) side is empty, and a FULL pair only
        when both are — a pair that still runs with one empty side
        ships a zero-row table so the worker NULL-extends the preserved
        rows. Post-join ``stages`` ride in every task, so partial
        aggregates and filters run on the bucket owner and only the
        final stage's output returns.
        """
        from repro.distributed.routing import effective_shard_ids

        num_buckets = op.num_buckets
        latencies: list[float] = []
        scanned = 0
        pruned = 0
        side_buckets: list[list[Table | None]] = []
        for shuffle, sharded, local in sides:
            if sharded is not None:
                shard_ids = effective_shard_ids(shuffle, sharded)
                scanned += len(shard_ids)
                pruned += sharded.num_shards - len(shard_ids)
                side_buckets.append(
                    self._map_side(
                        shuffle, sharded, shard_ids, num_buckets, latencies
                    )
                )
            else:
                side_buckets.append(
                    worker.bucketize(local, shuffle.key, num_buckets)
                )
        left_buckets, right_buckets = side_buckets
        condition_spec = serialize.encode_expression(op.condition)
        stage_specs = self._stage_specs(op)
        join_tasks = []
        skipped = 0
        for bucket_id in range(num_buckets):
            left = left_buckets[bucket_id]
            right = right_buckets[bucket_id]
            if _skip_bucket_pair(op.kind, left, right):
                skipped += 1
                continue
            if left is None:
                left = Table.empty(op.left.schema)
            if right is None:
                right = Table.empty(op.right.schema)
            task = {
                "kind": op.kind,
                "condition": condition_spec,
                "left": _encode_table(left),
                "right": _encode_table(right),
            }
            if stage_specs:
                task["stages"] = stage_specs
            join_tasks.append((bucket_id, task))
        results = self._run_tasks(worker.run_bucket_join, join_tasks, latencies)
        stage_seconds = _collect_stage_seconds(results.values())
        with self._lock:
            self.shuffle_joins += 1
            self.buckets_joined += len(join_tasks)
            self.buckets_skipped += skipped
        self._notify(scanned, pruned, latencies, stage_seconds)
        return [
            _decode_result(results[bucket_id])
            for bucket_id, _task in join_tasks
        ]

    def _stage_specs(self, op: ShuffleJoin) -> list:
        """The encoded post-join stage templates (identity-cached like
        fragments — cached plans re-dispatch the same stage objects)."""
        if not op.stages:
            return []
        key = id(op.stages)
        with self._lock:
            cached = self._fragment_specs.get(key)
            if cached is not None and cached[0] is op.stages:
                return cached[1]
        specs = serialize.encode_stages(op.stages, self.model_resolver)
        with self._lock:
            if len(self._fragment_specs) >= MAX_CACHED_FRAGMENTS:
                self._fragment_specs.clear()
            self._fragment_specs[key] = (op.stages, specs)
        return specs

    def _map_side(
        self,
        shuffle,
        sharded: ShardedTable,
        shard_ids: list[int],
        num_buckets: int,
        latencies: list[float],
    ) -> "list[Table | None]":
        """Shard-parallel map phase of one side: per-shard bucket lists,
        merged bucket-wise at the coordinator (the routing point)."""
        spec = self._fragment_spec(shuffle.fragment)
        extra = {"key": shuffle.key, "num_buckets": num_buckets}
        name = shuffle.table_name.lower()
        tasks = [
            (shard_id, [(name, sharded, shard_id)]) for shard_id in shard_ids
        ]
        replies = self._dispatch(
            worker.run_shuffle_map, spec, tasks, latencies, extra
        )
        pieces: list[list[Table]] = [[] for _ in range(num_buckets)]
        for shard_id in shard_ids:
            reply = replies[shard_id]
            schema = serialize.decode_schema(reply["schema"])
            for bucket_id, columns in enumerate(reply["buckets"]):
                if columns is not None:
                    pieces[bucket_id].append(Table(schema, columns))
        # One concat per bucket: pairwise merging inside the shard loop
        # would re-copy accumulated rows once per contributing shard.
        return [
            Table.concat_rows(bucket) if bucket else None
            for bucket in pieces
        ]

    # -- dispatch machinery ------------------------------------------------

    def _dispatch(
        self, fn, spec, tasks, latencies, extra=None
    ) -> dict[int, dict]:
        """Run one shard-addressed task set with ship-on-miss per table.

        ``tasks`` is ``[(task_key, [(table, sharded, shard_id), ...])]``
        — each task carries one cache token per shard it reads, and a
        worker that misses any of them replies with the missing table
        names so the retry ships only those columns.
        """
        extra = extra or {}
        start_mode = self.effective_mode
        recorded = len(latencies)
        if start_mode == "process":
            try:
                return self._dispatch_pooled(fn, spec, tasks, latencies, extra)
            except _POOL_FAILURES:
                # A broken/unavailable pool (restricted environments,
                # killed workers) must not fail queries; degrade to
                # in-process for the rest of this runtime's life.
                # Fragment-level errors (a bug in the plan itself) are
                # NOT caught — they would fail identically in-process.
                self._pool_broken = True
                events.emit("distributed.degraded", tasks=len(tasks))
                # Every task re-runs below; drop this call's partial
                # timings (earlier phases sharing the list keep theirs).
                del latencies[recorded:]
        return self._dispatch_inprocess(fn, spec, tasks, latencies, extra)

    def _task(self, spec, shards, ship, extra, transient=False) -> dict:
        """One worker task. ``transient`` marks in-process execution:
        the shard data rides along but must NOT enter the module-level
        worker cache — the coordinator process would otherwise seed
        every future forked pool worker with entries whose tokens can
        collide across databases."""
        entries = []
        for table_name, sharded, shard_id in shards:
            entry = {
                "table": table_name,
                "token": list(sharded.shard_token(shard_id)),
            }
            if table_name in ship:
                shard = sharded.shard(shard_id)
                entry["schema"] = serialize.encode_schema(shard.schema)
                entry["columns"] = shard.to_dict()
                entry["partition_size"] = shard.partition_size
                if transient:
                    entry["transient"] = True
                else:
                    with self._lock:
                        self.shard_ships += 1
            entries.append(entry)
        return {"fragment": spec, "shards": entries, **extra}

    def _dispatch_pooled(
        self, fn, spec, tasks, latencies, extra
    ) -> dict[int, dict]:
        pool = self._ensure_pool()
        started = {
            key: (
                time.perf_counter(),
                pool.submit(fn, self._task(spec, shards, set(), extra)),
            )
            for key, shards in tasks
        }
        shards_by_key = dict(tasks)
        results: dict[int, dict] = {}
        retries: list[tuple[int, set]] = []
        for key, (start, future) in started.items():
            reply = future.result(timeout=self.fragment_timeout)
            if reply["status"] == worker.MISSING_SHARD:
                retries.append((key, set(reply.get("missing", ()))))
                continue
            end = time.perf_counter()
            latencies.append(end - start)
            results[key] = reply
            _fragment_span(key, start, end, reply)
        retried = {
            key: (
                time.perf_counter(),
                pool.submit(
                    fn, self._task(spec, shards_by_key[key], ship, extra)
                ),
            )
            for key, ship in retries
        }
        for key, (start, future) in retried.items():
            reply = future.result(timeout=self.fragment_timeout)
            if reply["status"] != worker.OK:
                raise RuntimeDispatchError(
                    f"worker failed task {key} even with shipped data"
                )
            end = time.perf_counter()
            latencies.append(end - start)
            results[key] = reply
            _fragment_span(key, start, end, reply, shipped=True)
        return results

    def _dispatch_inprocess(
        self, fn, spec, tasks, latencies, extra
    ) -> dict[int, dict]:
        results: dict[int, dict] = {}
        for key, shards in tasks:
            ship = {name for name, _sharded, _sid in shards}
            start = time.perf_counter()
            reply = fn(self._task(spec, shards, ship, extra, transient=True))
            end = time.perf_counter()
            latencies.append(end - start)
            if reply["status"] != worker.OK:
                raise RuntimeDispatchError(
                    f"in-process fragment failed task {key}"
                )
            results[key] = reply
            _fragment_span(key, start, end, reply)
        return results

    def _run_tasks(self, fn, tasks, latencies) -> dict[int, dict]:
        """Run self-contained (data-carrying) tasks; no miss protocol."""
        recorded = len(latencies)
        if self.effective_mode == "process":
            try:
                pool = self._ensure_pool()
                started = {
                    key: (time.perf_counter(), pool.submit(fn, task))
                    for key, task in tasks
                }
                results = {}
                for key, (start, future) in started.items():
                    reply = future.result(timeout=self.fragment_timeout)
                    end = time.perf_counter()
                    latencies.append(end - start)
                    results[key] = reply
                    _fragment_span(key, start, end, reply, kind="bucket")
                return results
            except _POOL_FAILURES:
                self._pool_broken = True
                events.emit("distributed.degraded", tasks=len(tasks))
                # Every task re-runs below; keep only one timing each.
                del latencies[recorded:]
        results = {}
        for key, task in tasks:
            start = time.perf_counter()
            reply = fn(task)
            end = time.perf_counter()
            results[key] = reply
            latencies.append(end - start)
            _fragment_span(key, start, end, reply, kind="bucket")
        return results

    def _fragment_spec(self, fragment) -> dict:
        key = id(fragment)
        with self._lock:
            cached = self._fragment_specs.get(key)
            if cached is not None and cached[0] is fragment:
                return cached[1]
        spec = serialize.encode_fragment(fragment, self.model_resolver)
        with self._lock:
            if len(self._fragment_specs) >= MAX_CACHED_FRAGMENTS:
                self._fragment_specs.clear()
            self._fragment_specs[key] = (fragment, spec)
        return spec


def _fragment_span(key, start, end, reply, kind="shard", shipped=False):
    """Attach one dispatch→result span under the active gather span.

    A pooled fragment ran in another process, so its span is recorded
    retroactively from the coordinator-side endpoints; the worker's own
    execute clock (shipped back in the reply's ``timings``) rides along
    as an attribute, separating queue/IPC overhead from compute. A
    multi-stage bucket task additionally re-attaches one ``stage`` span
    per post-join stage, laid out over the tail of the fragment
    interval using the worker's per-stage clocks.
    """
    if qtrace.current_span() is None:
        return
    timings = reply.get("timings") or {}
    attrs = {
        "key": key,
        "kind": kind,
        "worker_seconds": timings.get("execute_seconds"),
        "rows": timings.get("rows"),
    }
    if shipped:
        attrs["shipped"] = True
    qtrace.add_span("fragment", start, end, **attrs)
    stages = timings.get("stages") or ()
    if not stages:
        return
    total = len(stages)
    cursor = end - sum(stage.get("seconds", 0.0) for stage in stages)
    for index, stage in enumerate(stages):
        seconds = stage.get("seconds", 0.0)
        qtrace.add_span(
            "stage",
            cursor,
            cursor + seconds,
            key=key,
            stage=f"{index + 1}/{total}",
            worker_seconds=seconds,
            rows=stage.get("rows"),
        )
        cursor += seconds


def _collect_stage_seconds(replies) -> list[float]:
    """Every post-join stage execution time across a task set's replies."""
    seconds: list[float] = []
    for reply in replies:
        for stage in (reply.get("timings") or {}).get("stages") or ():
            seconds.append(stage.get("seconds", 0.0))
    return seconds


def _skip_bucket_pair(kind: str, left, right) -> bool:
    """Whether a bucket pair is provably empty for this join kind.

    INNER needs rows on both sides; LEFT preserves its left rows even
    against an empty right; FULL preserves both, so only a
    both-empty pair can be skipped.
    """
    if kind == "LEFT":
        return left is None
    if kind == "FULL":
        return left is None and right is None
    return left is None or right is None


def _decode_result(reply: dict) -> Table:
    return Table(
        serialize.decode_schema(reply["schema"]), reply["columns"]
    )


def _encode_table(table: Table) -> dict:
    return {
        "schema": serialize.encode_schema(table.schema),
        "columns": table.to_dict(),
    }
