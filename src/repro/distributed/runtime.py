"""The scatter-gather coordinator: worker pool, routing stats, fallback.

``DistributedRuntime`` owns one lazy ``ProcessPoolExecutor`` per
database (amortizing process start-up across queries), encodes each
``Gather``'s fragment once (identity-cached — cached plans re-dispatch
the same fragment object for every execution), and drives the
ship-on-miss shard protocol: tasks go out carrying only the shard
token; a worker that has not cached that shard replies ``missing`` and
the task is re-sent with the columns attached. Steady state moves plan
JSON and result columns only.

Every gather reports ``(shards scanned, shards pruned, per-fragment
latencies)`` to registered observers — the serving layer's
:class:`~repro.serving.stats.ServingStats` subscribes here — and to the
runtime's own counters (benchmarks read those).

If the process pool cannot be created or breaks (restricted
environments, fork bombs protection), execution degrades permanently to
in-process fragment execution: still correct, still pruned, just not
parallel across processes.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.concurrency import default_max_workers
from repro.distributed import serialize, worker
from repro.distributed.operators import Gather
from repro.distributed.shards import ShardedTable
from repro.errors import RuntimeDispatchError
from repro.relational.table import Table

#: An encoded-fragment identity cache larger than any plan cache is
#: pointless; stale entries pin model bundles, so keep it modest.
MAX_CACHED_FRAGMENTS = 64


def _pool_failures() -> tuple:
    """Exception types that mean "the pool is unusable", not "the
    fragment is buggy" — only these trigger the in-process fallback."""
    import pickle

    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - ancient stdlib
        BrokenProcessPool = OSError
    from concurrent.futures import TimeoutError as FuturesTimeout

    return (
        BrokenProcessPool,
        FuturesTimeout,
        OSError,
        PermissionError,
        pickle.PicklingError,
    )


_POOL_FAILURES = _pool_failures()


class DistributedRuntime:
    """Runs ``Gather`` operators for one database."""

    def __init__(
        self,
        max_workers: int | None = None,
        mode: str = "process",
        fragment_timeout: float = 120.0,
        model_resolver: Callable[[str], object] | None = None,
    ):
        if mode not in ("process", "inprocess"):
            raise RuntimeDispatchError(
                f"unknown distributed mode {mode!r}"
            )
        self.max_workers = max_workers or default_max_workers()
        self.mode = mode
        self.fragment_timeout = fragment_timeout
        self.model_resolver = model_resolver
        self._pool = None
        self._pool_broken = False
        self._lock = threading.Lock()
        self._fragment_specs: "dict[int, tuple[object, dict]]" = {}
        self._observers: list[Callable[[int, int, list[float]], None]] = []
        # Counters (guarded by the lock; benchmarks and stats read them).
        self.queries = 0
        self.shards_scanned = 0
        self.shards_pruned = 0
        self.fragments_run = 0
        self.shard_ships = 0

    # -- observers ---------------------------------------------------------

    def add_observer(
        self, fn: Callable[[int, int, list[float]], None]
    ) -> None:
        """Register ``fn(shards_scanned, shards_pruned, fragment_seconds)``."""
        with self._lock:
            self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        with self._lock:
            try:
                self._observers.remove(fn)
            except ValueError:
                pass

    def _notify(
        self, scanned: int, pruned: int, latencies: list[float]
    ) -> None:
        with self._lock:
            self.queries += 1
            self.shards_scanned += scanned
            self.shards_pruned += pruned
            self.fragments_run += len(latencies)
            observers = list(self._observers)
        for fn in observers:
            fn(scanned, pruned, latencies)

    def stats(self) -> dict:
        with self._lock:
            return {
                "mode": self.effective_mode,
                "queries": self.queries,
                "shards_scanned": self.shards_scanned,
                "shards_pruned": self.shards_pruned,
                "fragments_run": self.fragments_run,
                "shard_ships": self.shard_ships,
            }

    # -- pool lifecycle ----------------------------------------------------

    @property
    def effective_mode(self) -> str:
        return "inprocess" if self._pool_broken else self.mode

    def _ensure_pool(self):
        with self._lock:
            if self._pool is not None:
                return self._pool
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; a later gather restarts it)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- gather execution --------------------------------------------------

    def run_gather(
        self, op: Gather, sharded: ShardedTable
    ) -> list[Table]:
        """Fragment results for each routed shard, in shard order.

        Routing is re-derived here against the *bound* fragment: a
        prepared query's ``?`` shard-key parameter — unroutable at
        optimize time — prunes exactly at execution time.
        """
        from repro.distributed.routing import effective_shard_ids

        shard_ids = effective_shard_ids(op, sharded)
        spec = self._fragment_spec(op)
        start_mode = self.effective_mode
        latencies: list[float] = []
        if start_mode == "process":
            try:
                results = self._run_pooled(spec, sharded, shard_ids, latencies)
            except _POOL_FAILURES:
                # A broken/unavailable pool (restricted environments,
                # killed workers) must not fail queries; degrade to
                # in-process for the rest of this runtime's life.
                # Fragment-level errors (a bug in the plan itself) are
                # NOT caught — they would fail identically in-process.
                self._pool_broken = True
                latencies = []
                results = self._run_inprocess(
                    spec, sharded, shard_ids, latencies
                )
        else:
            results = self._run_inprocess(spec, sharded, shard_ids, latencies)
        self._notify(
            len(shard_ids), sharded.num_shards - len(shard_ids), latencies
        )
        return results

    def _fragment_spec(self, op: Gather) -> dict:
        key = id(op.fragment)
        with self._lock:
            cached = self._fragment_specs.get(key)
            if cached is not None and cached[0] is op.fragment:
                return cached[1]
        spec = serialize.encode_fragment(op.fragment, self.model_resolver)
        with self._lock:
            if len(self._fragment_specs) >= MAX_CACHED_FRAGMENTS:
                self._fragment_specs.clear()
            self._fragment_specs[key] = (op.fragment, spec)
        return spec

    def _task(
        self,
        spec: dict,
        sharded: ShardedTable,
        shard_id: int,
        with_data: bool,
    ) -> dict:
        task = {
            "fragment": spec,
            "shard_token": list(sharded.shard_token(shard_id)),
        }
        if with_data:
            shard = sharded.shard(shard_id)
            task["shard_schema"] = serialize.encode_schema(shard.schema)
            task["columns"] = shard.to_dict()
            task["partition_size"] = shard.partition_size
            with self._lock:
                self.shard_ships += 1
        return task

    def _run_pooled(
        self,
        spec: dict,
        sharded: ShardedTable,
        shard_ids: list[int],
        latencies: list[float],
    ) -> list[Table]:
        pool = self._ensure_pool()
        started = {
            shard_id: (
                time.perf_counter(),
                pool.submit(
                    worker.run_fragment,
                    self._task(spec, sharded, shard_id, with_data=False),
                ),
            )
            for shard_id in shard_ids
        }
        results: dict[int, Table] = {}
        retries: list[int] = []
        for shard_id, (start, future) in started.items():
            reply = future.result(timeout=self.fragment_timeout)
            if reply["status"] == worker.MISSING_SHARD:
                retries.append(shard_id)
                continue
            latencies.append(time.perf_counter() - start)
            results[shard_id] = _decode_result(reply)
        retried = {
            shard_id: (
                time.perf_counter(),
                pool.submit(
                    worker.run_fragment,
                    self._task(spec, sharded, shard_id, with_data=True),
                ),
            )
            for shard_id in retries
        }
        for shard_id, (start, future) in retried.items():
            reply = future.result(timeout=self.fragment_timeout)
            if reply["status"] != worker.OK:
                raise RuntimeDispatchError(
                    f"worker failed shard {shard_id} of "
                    f"{sharded.table_name!r} even with shipped data"
                )
            latencies.append(time.perf_counter() - start)
            results[shard_id] = _decode_result(reply)
        return [results[shard_id] for shard_id in shard_ids]

    def _run_inprocess(
        self,
        spec: dict,
        sharded: ShardedTable,
        shard_ids: list[int],
        latencies: list[float],
    ) -> list[Table]:
        results = []
        # One decode for every shard: the decoded fragment is immutable
        # and shard-independent.
        fragment = serialize.decode_fragment(spec, worker._load_model)
        for shard_id in shard_ids:
            start = time.perf_counter()
            result = worker.execute_fragment(
                fragment, sharded.shard(shard_id)
            )
            latencies.append(time.perf_counter() - start)
            results.append(result)
        return results


def _decode_result(reply: dict) -> Table:
    return Table(
        serialize.decode_schema(reply["schema"]), reply["columns"]
    )
