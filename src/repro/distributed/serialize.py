"""The data-not-code JSON codec for plan fragments.

Fragments cross a real process boundary, so they serialize the same way
the rest of the system persists things: expressions and operators
become JSON trees (mirroring :mod:`repro.relational.storage`'s schema
encoding), and model payloads become
:mod:`repro.ml.model_format` bundles — decoding a fragment can never
execute arbitrary code, the same property the model catalog guarantees.

``fragment_is_serializable`` is the cheap structural pre-check the memo
rule runs before offering a distributed alternative: it validates
operator and expression shapes without paying for the model-bundle dump
(that happens once per plan at dispatch time, cached by the runtime).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RuntimeDispatchError
from repro.distributed.operators import ShardScan, StageInput, shard_target
from repro.ml import model_format
from repro.ml.base import BaseEstimator
from repro.relational.algebra import logical
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    Literal,
    Parameter,
    UnaryOp,
)
from repro.relational.types import Column, DataType, Schema

class FragmentSerializationError(RuntimeDispatchError):
    """The fragment contains something the JSON codec cannot carry."""


# -- expressions -------------------------------------------------------------


def encode_expression(expr: Expression) -> dict:
    if isinstance(expr, ColumnRef):
        return {"expr": "column", "name": expr.name}
    if isinstance(expr, Literal):
        return {"expr": "literal", "value": _py(expr.value)}
    if isinstance(expr, Parameter):
        return {"expr": "parameter", "name": expr.name}
    if isinstance(expr, BinaryOp):
        return {
            "expr": "binary",
            "op": expr.op,
            "left": encode_expression(expr.left),
            "right": encode_expression(expr.right),
        }
    if isinstance(expr, UnaryOp):
        return {
            "expr": "unary",
            "op": expr.op,
            "operand": encode_expression(expr.operand),
        }
    if isinstance(expr, InList):
        return {
            "expr": "in_list",
            "operand": encode_expression(expr.operand),
            "values": [_py(v) for v in expr.values],
        }
    if isinstance(expr, CaseWhen):
        return {
            "expr": "case",
            "branches": [
                [encode_expression(c), encode_expression(v)]
                for c, v in expr.branches
            ],
            "default": encode_expression(expr.default),
        }
    if isinstance(expr, FunctionCall):
        return {
            "expr": "function",
            "name": expr.name,
            "args": [encode_expression(a) for a in expr.args],
        }
    raise FragmentSerializationError(
        f"expression {type(expr).__name__} has no JSON form"
    )


def decode_expression(spec: dict) -> Expression:
    kind = spec["expr"]
    if kind == "column":
        return ColumnRef(spec["name"])
    if kind == "literal":
        return Literal(spec["value"])
    if kind == "parameter":
        return Parameter(spec["name"])
    if kind == "binary":
        return BinaryOp(
            spec["op"],
            decode_expression(spec["left"]),
            decode_expression(spec["right"]),
        )
    if kind == "unary":
        return UnaryOp(spec["op"], decode_expression(spec["operand"]))
    if kind == "in_list":
        return InList(
            decode_expression(spec["operand"]), tuple(spec["values"])
        )
    if kind == "case":
        return CaseWhen(
            tuple(
                (decode_expression(c), decode_expression(v))
                for c, v in spec["branches"]
            ),
            decode_expression(spec["default"]),
        )
    if kind == "function":
        return FunctionCall(
            spec["name"], tuple(decode_expression(a) for a in spec["args"])
        )
    raise FragmentSerializationError(f"unknown expression kind {kind!r}")


# -- schemas -----------------------------------------------------------------


def encode_schema(schema: Schema) -> list:
    return [[column.name, column.dtype.value] for column in schema]


def decode_schema(spec: list) -> Schema:
    return Schema(
        tuple(Column(name, DataType(type_name)) for name, type_name in spec)
    )


# -- operators ---------------------------------------------------------------

#: ``model_resolver(model_ref) -> fitted estimator`` — the coordinator
#: resolves catalog references before shipping (workers have no catalog).
ModelResolver = Callable[[str], object]


def encode_fragment(
    op: logical.LogicalOp, model_resolver: ModelResolver | None = None
) -> dict:
    if isinstance(op, ShardScan):
        return {
            "op": "shard_scan",
            "table": op.table_name,
            "schema": encode_schema(op.base_schema),
            "alias": op.alias,
        }
    if isinstance(op, StageInput):
        return {
            "op": "stage_input",
            "schema": encode_schema(op.base_schema),
        }
    if isinstance(op, logical.Join):
        if op.kind not in _FRAGMENT_JOIN_KINDS or op.condition is None:
            raise FragmentSerializationError(
                f"only INNER/LEFT/FULL equi-joins have a fragment form, "
                f"got {op.kind}"
            )
        return {
            "op": "join",
            "kind": op.kind,
            "left": encode_fragment(op.left, model_resolver),
            "right": encode_fragment(op.right, model_resolver),
            "condition": encode_expression(op.condition),
        }
    if isinstance(op, logical.Filter):
        return {
            "op": "filter",
            "child": encode_fragment(op.child, model_resolver),
            "predicate": encode_expression(op.predicate),
        }
    if isinstance(op, logical.Project):
        return {
            "op": "project",
            "child": encode_fragment(op.child, model_resolver),
            "items": [
                [encode_expression(expr), name] for expr, name in op.items
            ],
        }
    if isinstance(op, logical.Aggregate):
        return {
            "op": "aggregate",
            "child": encode_fragment(op.child, model_resolver),
            "group_by": [
                [encode_expression(expr), name] for expr, name in op.group_by
            ],
            "aggregates": [
                [
                    func,
                    encode_expression(arg) if arg is not None else None,
                    alias,
                ]
                for func, arg, alias in op.aggregates
            ],
        }
    if isinstance(op, logical.Distinct):
        return {
            "op": "distinct",
            "child": encode_fragment(op.child, model_resolver),
        }
    if isinstance(op, logical.Limit):
        return {
            "op": "limit",
            "child": encode_fragment(op.child, model_resolver),
            "count": int(op.count),
        }
    if isinstance(op, logical.Predict):
        bundle, feature_names = _model_bundle(op, model_resolver)
        return {
            "op": "predict",
            "child": encode_fragment(op.child, model_resolver),
            "model_ref": op.model_ref,
            "model_bundle": bundle,
            "output_columns": [
                [name, dtype.value] for name, dtype in op.output_columns
            ],
            "alias": op.alias,
            "batch_size": op.batch_size,
            "feature_names": (
                list(feature_names) if feature_names is not None else None
            ),
            # The memo's backend choice rides the fragment: workers
            # score with the same compiled session the coordinator
            # costed, not whatever their local default would be.
            "backend": dict(op.extra).get("backend") if op.extra else None,
        }
    raise FragmentSerializationError(
        f"operator {type(op).__name__} has no fragment form"
    )


def _model_bundle(
    op: logical.Predict, model_resolver: ModelResolver | None
) -> tuple[str, tuple | list | None]:
    """``(bundle_json, feature_names)`` for a Predict's model.

    Inline (memo-rewritten) payloads carry their own (possibly
    narrowed) feature list; catalog references resolve through
    ``model_resolver``, which may return the bare estimator or a
    catalog :class:`~repro.relational.catalog.ModelEntry` — entries
    contribute their ``feature_names`` metadata, without which the
    worker would feed the model every column of the shard.
    """
    payload = op.payload
    feature_names = op.feature_names
    if payload is None:
        if model_resolver is None:
            raise FragmentSerializationError(
                f"no model resolver to ship {op.model_ref!r}"
            )
        resolved = model_resolver(op.model_ref)
        payload = getattr(resolved, "payload", resolved)
        if feature_names is None:
            metadata = getattr(resolved, "metadata", None) or {}
            feature_names = metadata.get("feature_names")
    if feature_names is None:
        feature_names = getattr(payload, "feature_names_", None)
    if not isinstance(payload, BaseEstimator):
        raise FragmentSerializationError(
            f"model {op.model_ref!r} payload "
            f"({type(payload).__name__}) is not a portable ml.pipeline"
        )
    return model_format.dumps(payload), feature_names


#: ``model_loader(bundle_json) -> fitted estimator`` — workers pass a
#: caching loader so repeated fragments decode each bundle once.
ModelLoader = Callable[[str], object]


def encode_stages(
    stages, model_resolver: ModelResolver | None = None
) -> list:
    """The JSON form of a multi-stage fragment's post-join stages."""
    return [encode_fragment(stage, model_resolver) for stage in stages]


def decode_stages(
    specs: list, model_loader: ModelLoader | None = None
) -> tuple:
    """Decode post-join stage templates (leaves stay ``StageInput``;
    the worker binds each one to the previous stage's result)."""
    return tuple(decode_fragment(spec, model_loader) for spec in specs)


def decode_fragment(
    spec: dict, model_loader: ModelLoader | None = None
) -> logical.LogicalOp:
    kind = spec["op"]
    if kind == "stage_input":
        return StageInput(decode_schema(spec["schema"]))
    if kind == "shard_scan":
        # The worker scans its shard through the normal Scan operator
        # (under the table's localized shard_target name, so join
        # fragments address each table's shard distinctly), keeping
        # intra-shard zone maps and the morsel-parallel fast path alive
        # inside each worker process.
        return logical.Scan(
            shard_target(spec["table"]),
            decode_schema(spec["schema"]),
            spec.get("alias"),
        )
    if kind == "join":
        return logical.Join(
            decode_fragment(spec["left"], model_loader),
            decode_fragment(spec["right"], model_loader),
            spec.get("kind", "INNER"),
            decode_expression(spec["condition"]),
        )
    if kind == "filter":
        return logical.Filter(
            decode_fragment(spec["child"], model_loader),
            decode_expression(spec["predicate"]),
        )
    if kind == "project":
        return logical.Project(
            decode_fragment(spec["child"], model_loader),
            tuple(
                (decode_expression(expr), name)
                for expr, name in spec["items"]
            ),
        )
    if kind == "aggregate":
        return logical.Aggregate(
            decode_fragment(spec["child"], model_loader),
            tuple(
                (decode_expression(expr), name)
                for expr, name in spec["group_by"]
            ),
            tuple(
                (
                    func,
                    decode_expression(arg) if arg is not None else None,
                    alias,
                )
                for func, arg, alias in spec["aggregates"]
            ),
        )
    if kind == "distinct":
        return logical.Distinct(decode_fragment(spec["child"], model_loader))
    if kind == "limit":
        return logical.Limit(
            decode_fragment(spec["child"], model_loader), spec["count"]
        )
    if kind == "predict":
        loader = model_loader or model_format.loads
        payload = loader(spec["model_bundle"])
        features = spec.get("feature_names")
        backend = spec.get("backend")
        return logical.Predict(
            decode_fragment(spec["child"], model_loader),
            spec.get("model_ref") or "",
            tuple(
                (name, DataType(type_name))
                for name, type_name in spec["output_columns"]
            ),
            spec.get("alias"),
            spec.get("batch_size"),
            "ml.pipeline",
            payload,
            tuple(features) if features is not None else None,
            (("backend", backend),) if backend else (),
        )
    raise FragmentSerializationError(f"unknown fragment op {kind!r}")


# -- the structural pre-check ------------------------------------------------

#: Join kinds the codec can carry. The binder normalizes RIGHT to LEFT
#: (swapped inputs), so the logical layer only ever sees these three;
#: CROSS products stay coordinator operators.
_FRAGMENT_JOIN_KINDS = ("INNER", "LEFT", "FULL")

_SERIALIZABLE_OPS = (
    ShardScan,
    StageInput,
    logical.Filter,
    logical.Project,
    logical.Aggregate,
    logical.Distinct,
    logical.Limit,
    logical.Predict,
    logical.Join,
)

_SERIALIZABLE_EXPRS = (
    ColumnRef,
    Literal,
    Parameter,
    BinaryOp,
    UnaryOp,
    InList,
    CaseWhen,
    FunctionCall,
)


def fragment_is_serializable(
    op: logical.LogicalOp, model_flavor_of: Callable[[logical.Predict], str]
) -> bool:
    """Cheap structural check (no bundle dump) the memo rule runs.

    ``model_flavor_of`` resolves a Predict's effective flavor; only
    ``ml.pipeline`` payloads have a portable bundle format today.
    """
    from repro.distributed.operators import fragment_expressions

    for node in op.walk():
        if not isinstance(node, _SERIALIZABLE_OPS):
            return False
        if isinstance(node, logical.Predict):
            if model_flavor_of(node) != "ml.pipeline":
                return False
        if isinstance(node, logical.Join):
            # INNER/LEFT/FULL equi-joins cross the wire (key-disjoint
            # buckets make per-worker NULL-extension of unmatched rows
            # safe); CROSS products stay coordinator operators.
            if node.kind not in _FRAGMENT_JOIN_KINDS or node.condition is None:
                return False
    for expr in fragment_expressions(op):
        if not expression_is_serializable(expr):
            return False
    return True


def expression_is_serializable(expr: Expression) -> bool:
    """Whether one scalar expression survives the JSON codec."""
    for part in expr.walk():
        if not isinstance(part, _SERIALIZABLE_EXPRS):
            return False
        if isinstance(part, Literal) and not _json_safe(part.value):
            return False
        if isinstance(part, InList) and not all(
            _json_safe(v) for v in part.values
        ):
            return False
    return True


def _json_safe(value: object) -> bool:
    plain = _py(value)
    return plain is None or isinstance(plain, (bool, int, float, str))


def _py(value: object):
    if hasattr(value, "item"):
        return value.item()
    return value
