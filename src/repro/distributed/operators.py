"""Exchange operators for distributed execution.

The logical operators extending the algebra in
:mod:`repro.relational.algebra.logical`:

* :class:`ShardScan` — the leaf of a *plan fragment*: "the current
  shard of table T". It only ever appears inside a fragment template,
  never in a coordinator plan.
* :class:`Gather` — the scatter-gather exchange. A leaf in the
  coordinator plan that carries a fragment template plus the routing
  decision (which shards to run it on); execution runs the fragment
  once per surviving shard on the worker pool and concatenates the
  results in shard order. With ``join="colocated"`` the fragment is a
  *join* whose sides read compatibly-sharded tables: task *i* runs
  shard *i* ⋈ shard *i* locally on one worker.
* :class:`Repartition` — a local hash exchange: rows are re-clustered
  into key-disjoint buckets (explicit partition bounds), so a
  downstream ``Aggregate`` can run bucket-at-a-time in parallel with
  no cross-bucket merge.
* :class:`Shuffle` / :class:`ShuffleJoin` — the distributed hash
  shuffle: each side's pipeline is hash-partitioned on its join key
  into ``num_buckets`` buckets (on the owning workers for sharded
  sides, at the coordinator otherwise), the coordinator routes bucket
  *k* of both sides to one worker, and the workers join their buckets
  independently — so equi-joins over *incompatibly* sharded layouts
  still run shard-parallel.

All of them are frozen dataclasses like the rest of the algebra, so
the memo can hash and deduplicate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.relational.algebra import logical
from repro.relational.expressions import Expression
from repro.relational.types import Schema

#: The table-name prefix a fragment's shards resolve to at execution
#: time — the worker's table provider serves the shipped (or cached)
#: shards under these names.
SHARD_TABLE = "__shard__"


def shard_target(table_name: str) -> str:
    """The localized scan name one table's shard is served under."""
    return f"{SHARD_TABLE}:{table_name.lower()}"


@dataclass(frozen=True)
class ShardScan(logical.LogicalOp):
    """Read the current shard of a sharded table (fragment leaf).

    ``shard_key`` records the base column the plan assumes the table is
    sharded on (set for co-located join fragments); execution verifies
    the live layout still matches before dispatching shard-aligned
    work.
    """

    table_name: str
    base_schema: Schema
    alias: str | None = None
    total_shards: int = 1
    shard_key: str | None = None

    @property
    def schema(self) -> Schema:
        if self.alias:
            return self.base_schema.prefixed(self.alias)
        return self.base_schema


@dataclass(frozen=True)
class Gather(logical.LogicalOp):
    """Scatter a fragment across shards; gather results in shard order.

    ``fragment`` is a logical subtree whose leaves are
    :class:`ShardScan`\\ s; for single-table pipelines there is one, of
    ``table_name``. ``shard_ids`` is the routing decision — the shards
    the fragment will actually run on; ``total_shards`` is the table's
    shard count at plan time, and ``pruned_by`` records what made the
    routing selective (``"zone-map"``) so EXPLAIN and the serving layer
    can report shards scanned vs. pruned.

    ``join="colocated"`` marks a co-located shard join: the fragment
    contains an INNER equi-join whose sides read tables sharded by the
    join key under *compatible* specs, so task *i* ships shard *i* of
    every fragment table to one worker and joins them there.

    A leaf operator: the fragment is a *template* attribute, not a
    child, so memo exploration does not descend into it (fragments are
    already-optimized pipelines).
    """

    table_name: str
    fragment: logical.LogicalOp
    shard_key: str
    shard_ids: tuple[int, ...]
    total_shards: int
    pruned_by: str = "none"
    join: str = "none"

    @property
    def schema(self) -> Schema:
        return self.fragment.schema

    @property
    def shards_scanned(self) -> int:
        return len(self.shard_ids)

    @property
    def shards_pruned(self) -> int:
        return self.total_shards - len(self.shard_ids)


@dataclass(frozen=True)
class Repartition(logical.LogicalOp):
    """Hash-recluster rows into ``num_buckets`` key-disjoint buckets."""

    child: logical.LogicalOp
    key: str
    num_buckets: int

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[logical.LogicalOp, ...]:
        return (self.child,)

    def with_children(
        self, children: Sequence[logical.LogicalOp]
    ) -> "Repartition":
        (child,) = children
        return Repartition(child, self.key, self.num_buckets)


@dataclass(frozen=True)
class Shuffle(logical.LogicalOp):
    """One side of a shuffle join: a pipeline hash-partitioned on a key.

    ``fragment`` is the side's pipeline; its leaf is a
    :class:`ShardScan` for a sharded side (the map tasks run on the
    shard owners) or a plain ``Scan`` for an unsharded side (the
    coordinator runs the map locally). ``key`` is the join-key column
    *in the fragment's output schema*; equal key values of the two
    sides land in the same of the ``num_buckets`` buckets.

    Only ever appears as an attribute of a :class:`ShuffleJoin` — never
    as a standalone plan node.
    """

    table_name: str
    fragment: logical.LogicalOp
    key: str
    shard_ids: tuple[int, ...]
    total_shards: int
    num_buckets: int
    pruned_by: str = "none"

    @property
    def schema(self) -> Schema:
        return self.fragment.schema

    @property
    def is_sharded(self) -> bool:
        return self.total_shards > 1


@dataclass(frozen=True)
class StageInput(logical.LogicalOp):
    """The leaf of a post-join worker stage: "the previous stage's output".

    A multi-stage fragment runs *join → stage 1 → stage 2 → …* on one
    worker; each stage is a pipeline (filter / project / PREDICT /
    partial aggregate) whose leaf is a :class:`StageInput` bound at
    execution time to the preceding stage's result table. Buckets are
    key-disjoint, so per-bucket stages compose without any cross-bucket
    exchange. Only ever appears inside a stage template, never in a
    coordinator plan.
    """

    base_schema: Schema

    @property
    def schema(self) -> Schema:
        return self.base_schema


@dataclass(frozen=True)
class ShuffleJoin(logical.LogicalOp):
    """A distributed hash-shuffle equi-join (the real exchange).

    Both sides are :class:`Shuffle` templates bucketed on their join
    keys; execution routes bucket *k* of each side to one worker, which
    joins its pair independently (the buckets are key-disjoint, so no
    cross-bucket merge exists). For INNER joins empty bucket pairs are
    never dispatched; outer joins only skip a pair when the
    NULL-preserved side is empty (LEFT needs its left bucket, FULL
    needs either).

    ``stages`` extends the worker round-trip into a multi-stage DAG
    fragment: each entry is a pipeline over a :class:`StageInput` leaf,
    executed on the joined bucket *before* rows return to the
    coordinator — so filters, PREDICT, and partial aggregates run where
    the join ran and only the (shrunken) final-stage output crosses the
    wire.

    A leaf operator like :class:`Gather`: the sides and stages are
    template attributes, not children, so the memo does not descend
    into them.
    """

    left: Shuffle
    right: Shuffle
    kind: str
    condition: Expression
    num_buckets: int
    stages: tuple[logical.LogicalOp, ...] = ()

    @property
    def schema(self) -> Schema:
        if self.stages:
            return self.stages[-1].schema
        return self.left.schema.concat(self.right.schema)

    @property
    def join_schema(self) -> Schema:
        """The raw join output schema (the first stage's input)."""
        return self.left.schema.concat(self.right.schema)

    @property
    def sides(self) -> tuple[Shuffle, Shuffle]:
        return (self.left, self.right)


# -- fragment helpers --------------------------------------------------------


def fragment_expressions(op: logical.LogicalOp) -> Iterator[Expression]:
    """Every scalar expression a fragment evaluates (params live here)."""
    for node in op.walk():
        if isinstance(node, logical.Filter):
            yield node.predicate
        elif isinstance(node, logical.Project):
            for expr, _name in node.items:
                yield expr
        elif isinstance(node, logical.Join) and node.condition is not None:
            yield node.condition
        elif isinstance(node, logical.Aggregate):
            for expr, _name in node.group_by:
                yield expr
            for _func, arg, _alias in node.aggregates:
                if arg is not None:
                    yield arg
        elif isinstance(node, logical.OrderBy):
            for expr, _asc in node.keys:
                yield expr


def substitute_fragment(
    op: logical.LogicalOp, mapping: Mapping[str, Expression]
) -> logical.LogicalOp:
    """Rebuild a fragment with parameters substituted in every expression.

    Mirrors :meth:`Expression.substitute` over the operator tree; used
    by prepared queries to bind ``?``/``@name`` parameters into the
    fragment template of a cached ``Gather`` plan.
    """
    children = tuple(
        substitute_fragment(child, mapping) for child in op.children
    )
    if isinstance(op, logical.Filter):
        return logical.Filter(children[0], op.predicate.substitute(mapping))
    if isinstance(op, logical.Project):
        return logical.Project(
            children[0],
            tuple(
                (expr.substitute(mapping), name) for expr, name in op.items
            ),
        )
    if isinstance(op, logical.Join):
        condition = (
            op.condition.substitute(mapping)
            if op.condition is not None
            else None
        )
        return logical.Join(children[0], children[1], op.kind, condition)
    if isinstance(op, logical.Aggregate):
        return logical.Aggregate(
            children[0],
            tuple(
                (expr.substitute(mapping), name)
                for expr, name in op.group_by
            ),
            tuple(
                (
                    func,
                    arg.substitute(mapping) if arg is not None else None,
                    alias,
                )
                for func, arg, alias in op.aggregates
            ),
        )
    if isinstance(op, logical.OrderBy):
        return logical.OrderBy(
            children[0],
            tuple((expr.substitute(mapping), asc) for expr, asc in op.keys),
        )
    if children:
        return op.with_children(children)
    return op


def substitute_shuffle_join(
    op: ShuffleJoin, mapping: Mapping[str, Expression]
) -> ShuffleJoin:
    """A :class:`ShuffleJoin` with parameters bound into both side
    fragments and the join condition (prepared-query binding)."""
    from dataclasses import replace

    return ShuffleJoin(
        replace(
            op.left, fragment=substitute_fragment(op.left.fragment, mapping)
        ),
        replace(
            op.right, fragment=substitute_fragment(op.right.fragment, mapping)
        ),
        op.kind,
        op.condition.substitute(mapping),
        op.num_buckets,
        tuple(substitute_fragment(stage, mapping) for stage in op.stages),
    )


def shuffle_join_expressions(op: ShuffleJoin) -> Iterator[Expression]:
    """Every scalar expression a shuffle join evaluates anywhere."""
    yield op.condition
    for side in op.sides:
        yield from fragment_expressions(side.fragment)
    for stage in op.stages:
        yield from fragment_expressions(stage)


def bind_stage_input(
    stage: logical.LogicalOp, table
) -> logical.LogicalOp:
    """The stage pipeline with its :class:`StageInput` leaf replaced by
    an ``InlineTable`` carrying the previous stage's (or the join's)
    result — the executable form a worker runs per bucket."""
    if isinstance(stage, StageInput):
        return logical.InlineTable(table)
    children = tuple(
        bind_stage_input(child, table) for child in stage.children
    )
    return stage.with_children(children) if children else stage


def localize_fragment(op: logical.LogicalOp) -> logical.LogicalOp:
    """The fragment with every :class:`ShardScan` leaf turned into a
    plain ``Scan`` of its :func:`shard_target` name — the executable
    form a worker (or the in-process fallback) runs against the shard
    tables served under those names."""
    if isinstance(op, ShardScan):
        return logical.Scan(
            shard_target(op.table_name), op.base_schema, op.alias
        )
    children = tuple(localize_fragment(child) for child in op.children)
    return op.with_children(children) if children else op


def fragment_shard_scans(op: logical.LogicalOp) -> list[ShardScan]:
    """Every :class:`ShardScan` leaf of a fragment, in tree order."""
    return [n for n in op.walk() if isinstance(n, ShardScan)]


def fragment_tables(op: logical.LogicalOp) -> list[str]:
    """Distinct (lowercased) table names a fragment's shards come from."""
    names: dict[str, None] = {}
    for scan in fragment_shard_scans(op):
        names.setdefault(scan.table_name.lower(), None)
    return list(names)


def side_predicates(
    fragment: logical.LogicalOp,
) -> list[tuple[ShardScan, Expression | None]]:
    """Per :class:`ShardScan` leaf, the conjoined filters on its direct
    path — only ``Filter`` chains are accumulated (a predicate above a
    ``Project``/``Predict``/``Join`` may reference computed columns, so
    it is conservatively dropped for routing purposes)."""
    from repro.relational.expressions import conjoin

    out: list[tuple[ShardScan, Expression | None]] = []

    def walk(op: logical.LogicalOp, preds: list[Expression]) -> None:
        if isinstance(op, ShardScan):
            out.append((op, conjoin(preds) if preds else None))
            return
        if isinstance(op, logical.Filter):
            walk(op.child, preds + [op.predicate])
            return
        for child in op.children:
            walk(child, [])

    walk(fragment, [])
    return out
