"""Exchange operators for distributed execution.

Three new logical operators extend the algebra in
:mod:`repro.relational.algebra.logical`:

* :class:`ShardScan` — the leaf of a *plan fragment*: "the current
  shard of table T". It only ever appears inside a fragment template,
  never in a coordinator plan.
* :class:`Gather` — the scatter-gather exchange. A leaf in the
  coordinator plan that carries a fragment template plus the routing
  decision (which shards to run it on); execution runs the fragment
  once per surviving shard on the worker pool and concatenates the
  results in shard order.
* :class:`Repartition` — a local hash exchange: rows are re-clustered
  into key-disjoint buckets (explicit partition bounds), so a
  downstream ``Aggregate`` can run bucket-at-a-time in parallel with
  no cross-bucket merge.

All three are frozen dataclasses like the rest of the algebra, so the
memo can hash and deduplicate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import BindError
from repro.relational.algebra import logical
from repro.relational.expressions import Expression
from repro.relational.types import Schema

#: The table name a fragment's shard resolves to at execution time —
#: the worker's table provider serves the shipped (or cached) shard
#: under this name.
SHARD_TABLE = "__shard__"


@dataclass(frozen=True)
class ShardScan(logical.LogicalOp):
    """Read the current shard of a sharded table (fragment leaf)."""

    table_name: str
    base_schema: Schema
    alias: str | None = None
    total_shards: int = 1

    @property
    def schema(self) -> Schema:
        if self.alias:
            return self.base_schema.prefixed(self.alias)
        return self.base_schema


@dataclass(frozen=True)
class Gather(logical.LogicalOp):
    """Scatter a fragment across shards; gather results in shard order.

    ``fragment`` is a logical subtree whose leaf is a :class:`ShardScan`
    of ``table_name``. ``shard_ids`` is the routing decision — the
    shards the fragment will actually run on; ``total_shards`` is the
    table's shard count at plan time, and ``pruned_by`` records what
    made the routing selective (``"zone-map"``) so EXPLAIN and the
    serving layer can report shards scanned vs. pruned.

    A leaf operator: the fragment is a *template* attribute, not a
    child, so memo exploration does not descend into it (fragments are
    already-optimized single-table pipelines).
    """

    table_name: str
    fragment: logical.LogicalOp
    shard_key: str
    shard_ids: tuple[int, ...]
    total_shards: int
    pruned_by: str = "none"

    @property
    def schema(self) -> Schema:
        return self.fragment.schema

    @property
    def shards_scanned(self) -> int:
        return len(self.shard_ids)

    @property
    def shards_pruned(self) -> int:
        return self.total_shards - len(self.shard_ids)


@dataclass(frozen=True)
class Repartition(logical.LogicalOp):
    """Hash-recluster rows into ``num_buckets`` key-disjoint buckets."""

    child: logical.LogicalOp
    key: str
    num_buckets: int

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def children(self) -> tuple[logical.LogicalOp, ...]:
        return (self.child,)

    def with_children(
        self, children: Sequence[logical.LogicalOp]
    ) -> "Repartition":
        (child,) = children
        return Repartition(child, self.key, self.num_buckets)


# -- fragment helpers --------------------------------------------------------


def fragment_expressions(op: logical.LogicalOp) -> Iterator[Expression]:
    """Every scalar expression a fragment evaluates (params live here)."""
    for node in op.walk():
        if isinstance(node, logical.Filter):
            yield node.predicate
        elif isinstance(node, logical.Project):
            for expr, _name in node.items:
                yield expr
        elif isinstance(node, logical.Join) and node.condition is not None:
            yield node.condition
        elif isinstance(node, logical.Aggregate):
            for expr, _name in node.group_by:
                yield expr
            for _func, arg, _alias in node.aggregates:
                if arg is not None:
                    yield arg
        elif isinstance(node, logical.OrderBy):
            for expr, _asc in node.keys:
                yield expr


def substitute_fragment(
    op: logical.LogicalOp, mapping: Mapping[str, Expression]
) -> logical.LogicalOp:
    """Rebuild a fragment with parameters substituted in every expression.

    Mirrors :meth:`Expression.substitute` over the operator tree; used
    by prepared queries to bind ``?``/``@name`` parameters into the
    fragment template of a cached ``Gather`` plan.
    """
    children = tuple(
        substitute_fragment(child, mapping) for child in op.children
    )
    if isinstance(op, logical.Filter):
        return logical.Filter(children[0], op.predicate.substitute(mapping))
    if isinstance(op, logical.Project):
        return logical.Project(
            children[0],
            tuple(
                (expr.substitute(mapping), name) for expr, name in op.items
            ),
        )
    if isinstance(op, logical.Join):
        condition = (
            op.condition.substitute(mapping)
            if op.condition is not None
            else None
        )
        return logical.Join(children[0], children[1], op.kind, condition)
    if isinstance(op, logical.Aggregate):
        return logical.Aggregate(
            children[0],
            tuple(
                (expr.substitute(mapping), name)
                for expr, name in op.group_by
            ),
            tuple(
                (
                    func,
                    arg.substitute(mapping) if arg is not None else None,
                    alias,
                )
                for func, arg, alias in op.aggregates
            ),
        )
    if isinstance(op, logical.OrderBy):
        return logical.OrderBy(
            children[0],
            tuple((expr.substitute(mapping), asc) for expr, asc in op.keys),
        )
    if children:
        return op.with_children(children)
    return op


def localize_fragment(op: logical.LogicalOp) -> logical.LogicalOp:
    """The fragment with its :class:`ShardScan` leaf turned into a plain
    ``Scan`` of :data:`SHARD_TABLE` — the executable form a worker (or
    the in-process fallback) runs against one shard table."""
    if isinstance(op, ShardScan):
        return logical.Scan(SHARD_TABLE, op.base_schema, op.alias)
    children = tuple(localize_fragment(child) for child in op.children)
    return op.with_children(children) if children else op


def fragment_leaf(op: logical.LogicalOp) -> ShardScan:
    """The fragment's (single) :class:`ShardScan` leaf."""
    leaves = [n for n in op.walk() if isinstance(n, ShardScan)]
    if len(leaves) != 1:
        raise BindError(
            f"fragment must have exactly one ShardScan leaf, "
            f"found {len(leaves)}"
        )
    return leaves[0]
