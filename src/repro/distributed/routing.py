"""Zone-map shard routing: prune shards a predicate cannot match.

The same metadata that prunes in-process partitions — per-chunk min/max
— prunes whole shards here, one level up: a shard's column statistics
are its zone map. Routing is conservative in the same sense as
partition pruning (a shard is kept unless its statistics *prove* no row
can match) with two extra safe cases the satellite audit calls out:

* **empty shards** contribute no rows, so they are always prunable once
  any routing constraint applies;
* **all-NULL columns** (``null_count == row_count``) can never satisfy
  a comparison or membership constraint, so a constraint on such a
  column prunes the shard — but a column whose statistics carry no
  bounds for any *other* reason (opaque dtype) never prunes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributed.shards import ShardedTable
from repro.relational.expressions import (
    Expression,
    equality_constants,
    range_bounds,
)
from repro.relational.statistics import (
    ColumnStatistics,
    TableStatistics,
    membership_constraints,
)


def surviving_shards(
    sharded: ShardedTable, predicate: Expression | None
) -> np.ndarray | None:
    """Boolean keep-mask over shards, or ``None`` when nothing constrains.

    ``None`` means the predicate yields no shard-prunable facts (or
    there is no predicate at all): the caller should scan every shard.
    """
    if predicate is None:
        return None
    bounds = range_bounds(predicate)
    memberships = membership_constraints(predicate)
    key_shards = _key_routing(sharded, predicate)
    if not bounds and not memberships and key_shards is None:
        return None
    keep = np.ones(sharded.num_shards, dtype=bool)
    if key_shards is not None:
        keep &= key_shards
    for shard_id in range(sharded.num_shards):
        if not keep[shard_id]:
            continue
        stats = sharded.shard_statistics(shard_id)
        if stats.row_count == 0:
            keep[shard_id] = False
            continue
        keep[shard_id] = _shard_can_match(stats, bounds, memberships)
    return keep


def effective_shard_ids(gather, sharded: ShardedTable) -> list[int]:
    """The shards a Gather actually runs on, re-routed at execution time.

    The plan's recorded ``shard_ids`` are the optimize-time decision.
    Two things can change by execution time: the shard *layout* (a
    reshard raced a cached plan — fall back to every shard, correctness
    over stale pruning) and the fragment's *predicates* (prepared
    queries bind ``?`` parameters after planning, so an equality on the
    shard key that was unroutable at prepare time routes exactly now).

    Also used for one :class:`~repro.distributed.operators.Shuffle`
    side of a shuffle join — it carries the same
    ``fragment``/``shard_ids``/``total_shards`` trio.
    """
    from repro.relational.algebra import logical
    from repro.relational.expressions import conjoin

    if gather.total_shards != sharded.num_shards:
        ids = list(range(sharded.num_shards))
    else:
        ids = [i for i in gather.shard_ids if 0 <= i < sharded.num_shards]
    predicates = [
        op.predicate
        for op in gather.fragment.walk()
        if isinstance(op, logical.Filter)
    ]
    if not predicates:
        return ids
    try:
        keep = surviving_shards(sharded, conjoin(predicates))
    except Exception:
        return ids
    if keep is None:
        return ids
    return [i for i in ids if keep[i]]


# -- co-located joins ---------------------------------------------------------


def hash_class(dtype: np.dtype) -> str | None:
    """The hash-compatibility class of a shard-key dtype.

    :func:`~repro.distributed.shards.hash_buckets` takes a different
    path per dtype kind, so two layouts only agree on equal values when
    their key columns hash the same way: integers/bools together,
    floats together, strings together.
    """
    kind = np.dtype(dtype).kind
    if kind in ("i", "u", "b"):
        return "int"
    if kind == "f":
        return "float"
    if kind in ("U", "S"):
        return "str"
    return None


def compatible_layouts(
    left_spec, left_dtype, right_spec, right_dtype
) -> bool:
    """Whether two sharding specs place equal key values on one shard.

    Hash layouts need the same shard count *and* the same hash class
    (an int key and a float key hash through different paths, so equal
    values can land on different shards). Range layouts need identical
    boundaries; numeric dtypes compare interchangeably against the
    boundaries, strings only against string boundaries.
    """
    if left_spec.kind != right_spec.kind:
        return False
    if left_spec.num_shards != right_spec.num_shards:
        return False
    left_class = hash_class(left_dtype)
    right_class = hash_class(right_dtype)
    if left_class is None or right_class is None:
        return False
    if left_spec.kind == "hash":
        return left_class == right_class
    if tuple(left_spec.boundaries) != tuple(right_spec.boundaries):
        return False
    numeric = ("int", "float")
    return (left_class in numeric) == (right_class in numeric)


def colocated_layouts_ok(
    gather, shardeds: dict[str, ShardedTable]
) -> bool:
    """Whether a co-located join Gather's layout assumptions still hold.

    Verified at execution time (a reshard may race a cached plan):
    every fragment table must still be sharded, with the planned shard
    count, keyed on the column the plan aligned shards by, and the
    specs must be pairwise compatible. Any mismatch degrades execution
    to a coordinator-local join over the full base tables.
    """
    from repro.distributed.operators import fragment_shard_scans

    seen: list[tuple] = []
    for scan in fragment_shard_scans(gather.fragment):
        sharded = shardeds.get(scan.table_name.lower())
        if sharded is None:
            return False
        if sharded.num_shards != gather.total_shards:
            return False
        if (
            scan.shard_key is not None
            and sharded.spec.key.split(".")[-1].lower()
            != scan.shard_key.split(".")[-1].lower()
        ):
            return False
        try:
            dtype = _key_dtype(sharded)
        except Exception:
            return False
        seen.append((sharded.spec, dtype))
    if not seen:
        return False
    first_spec, first_dtype = seen[0]
    return all(
        compatible_layouts(first_spec, first_dtype, spec, dtype)
        for spec, dtype in seen[1:]
    )


def colocated_shard_ids(
    fragment, shardeds: dict[str, ShardedTable]
) -> tuple[list[int], str]:
    """``(shard ids, pruned_by)`` for a co-located join fragment.

    For an INNER join, shard *i* survives only if every side's shard
    *i* can produce rows: each side's own filters prune through that
    side's shard statistics (zone maps one level up, exactly like
    single-table routing), and an empty shard on either side prunes the
    pair — the empty-shard ⋈ populated-shard case dispatches nothing.

    Outer joins prune only through the NULL-preserved side: a LEFT
    join's pair *i* must still run when the *right* shard is provably
    empty (the left rows NULL-extend), so right-side facts never drop
    it; a FULL join preserves both sides, so a pair is dropped only
    when *both* shards are provably empty.
    """
    from repro.distributed.operators import side_predicates
    from repro.relational.algebra import logical

    sides = side_predicates(fragment)
    total = max(
        (shardeds[s.table_name.lower()].num_shards for s, _p in sides),
        default=0,
    )
    join = next(
        (n for n in fragment.walk() if isinstance(n, logical.Join)), None
    )
    kind = join.kind if join is not None else "INNER"
    left_ids = (
        {id(n) for n in join.left.walk()} if join is not None else set()
    )
    masks = {
        "left": np.ones(total, dtype=bool),
        "right": np.ones(total, dtype=bool),
    }
    for scan, predicate in sides:
        side = "left" if join is None or id(scan) in left_ids else "right"
        mask = masks[side]
        sharded = shardeds[scan.table_name.lower()]
        if predicate is not None:
            try:
                side_keep = surviving_shards(sharded, predicate)
            except Exception:
                side_keep = None
            if side_keep is not None:
                mask &= side_keep
        for shard_id in range(sharded.num_shards):
            if mask[shard_id] and sharded.shard(shard_id).num_rows == 0:
                mask[shard_id] = False
    if kind == "LEFT":
        keep = masks["left"]
    elif kind == "FULL":
        keep = masks["left"] | masks["right"]
    else:
        keep = masks["left"] & masks["right"]
    pruned_by = "zone-map" if bool((~keep).any()) else "none"
    return [int(i) for i in np.nonzero(keep)[0]], pruned_by


def _key_routing(
    sharded: ShardedTable, predicate: Expression
) -> np.ndarray | None:
    """Exact routing for equality/IN facts on the shard key itself.

    Hash sharding destroys ranges, so shard statistics cannot prune a
    hash layout on a range predicate — but an equality (or IN) fact on
    the shard key pins each value's shard exactly through the same
    assignment function that placed the rows.
    """
    key = sharded.spec.key.split(".")[-1].lower()
    values: tuple | None = None
    for name, value in equality_constants(predicate).items():
        if name.split(".")[-1].lower() == key:
            values = (value,)
            break
    if values is None:
        for name, membership in membership_constraints(predicate).items():
            if name.split(".")[-1].lower() == key:
                values = membership
                break
    if values is None:
        return None
    keep = np.zeros(sharded.num_shards, dtype=bool)
    try:
        # Probe values must hash exactly as the rows were placed: cast
        # them to the key column's storage dtype first (an int literal
        # probing a float key column would otherwise take the integer
        # hash path and land in a different bucket — silently routing
        # to an empty shard).
        probe = np.asarray(values, dtype=_key_dtype(sharded))
        targets = sharded.spec.assign(probe)
    except Exception:
        return None  # value/key dtype mismatch: no exact routing
    for target in targets:
        if 0 <= int(target) < sharded.num_shards:
            keep[int(target)] = True
    return keep


def _key_dtype(sharded: ShardedTable) -> np.dtype:
    """The shard-key column's storage dtype (from the shard schema)."""
    shard = sharded.shard(0)
    return shard.column(shard.resolve_name(sharded.spec.key)).dtype


def _shard_can_match(
    stats: TableStatistics,
    bounds: dict[str, tuple[float, float]],
    memberships: dict[str, tuple],
) -> bool:
    for name, (low, high) in bounds.items():
        column = stats.column(name)
        if column is None:
            continue  # unknown column here: cannot prune on it
        if _all_null(column, stats.row_count):
            return False  # comparison never matches NULL
        if not isinstance(column.min_value, (int, float)):
            continue  # no numeric bounds (string/opaque): no pruning
        if not math.isinf(high) and float(column.min_value) > high:
            return False
        if not math.isinf(low) and float(column.max_value) < low:
            return False
    for name, values in memberships.items():
        if name in bounds:
            continue  # range facts already cover `col = numeric_lit`
        column = stats.column(name)
        if column is None:
            continue
        if _all_null(column, stats.row_count):
            return False
        if column.min_value is None or column.max_value is None:
            continue
        if not _any_value_in_bounds(
            values, column.min_value, column.max_value
        ):
            return False
    return True


def _all_null(column: ColumnStatistics, row_count: int) -> bool:
    """True only for the provable every-value-is-NULL case."""
    return (
        column.min_value is None
        and row_count > 0
        and column.null_count >= row_count
    )


def _any_value_in_bounds(values: tuple, low, high) -> bool:
    for value in values:
        try:
            if low <= value <= high:
                return True
        except TypeError:
            return True  # dtype mismatch: cannot prove, keep the shard
    return False
