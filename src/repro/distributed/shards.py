"""Sharded tables: hash- or range-keyed splits of one base table.

A :class:`ShardedTable` carries the shards of one catalog table. Each
shard is a full :class:`~repro.relational.table.Table` (inheriting the
base table's partition size, so intra-shard zone maps and morsel
parallelism still apply) plus lazily collected per-shard
:class:`~repro.relational.statistics.TableStatistics`. Those shard
statistics are the shard-level zone maps: the router prunes shards the
same way the executor prunes partitions.

Shard assignment must be deterministic *across processes* — the worker
pool and the coordinator have to agree on which rows live where — so
hashing avoids Python's per-process-salted ``hash()``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError
from repro.relational.statistics import TableStatistics, collect_statistics
from repro.relational.table import Table

SHARD_KINDS = ("hash", "range")


def hash_buckets(values: np.ndarray, num_buckets: int) -> np.ndarray:
    """Deterministic bucket id per value (stable across processes).

    Integers and bools hash by value modulo; floats are scaled to catch
    fractional keys before the modulo; strings go through CRC-32 of the
    unique values (one Python-level pass over uniques, not rows).
    """
    if num_buckets < 1:
        raise CatalogError(f"num_buckets must be >= 1, got {num_buckets}")
    kind = values.dtype.kind
    if kind in ("i", "u", "b"):
        return np.mod(values.astype(np.int64), num_buckets).astype(np.int64)
    if kind == "f":
        # NaN keys land deterministically in bucket 0.
        scaled = np.nan_to_num(values * 2654435761.0, nan=0.0, posinf=0.0,
                               neginf=0.0)
        return np.mod(scaled.astype(np.int64), num_buckets).astype(np.int64)
    if kind in ("U", "S"):
        uniques, inverse = np.unique(values, return_inverse=True)
        codes = np.array(
            [zlib.crc32(str(u).encode("utf-8")) for u in uniques],
            dtype=np.int64,
        )
        return np.mod(codes[inverse], num_buckets).astype(np.int64)
    raise CatalogError(
        f"cannot hash-shard on dtype kind {kind!r} (orderable types only)"
    )


@dataclass(frozen=True)
class ShardingSpec:
    """How one table is split: key column, shard count, hash or range.

    ``boundaries`` (range sharding only) holds ``num_shards - 1`` sorted
    split points; shard ``i`` receives rows with
    ``boundaries[i-1] <= key < boundaries[i]``.
    """

    key: str
    num_shards: int
    kind: str = "hash"
    boundaries: tuple = ()

    def __post_init__(self):
        if self.kind not in SHARD_KINDS:
            raise CatalogError(
                f"unknown sharding kind {self.kind!r}; one of {SHARD_KINDS}"
            )
        if self.num_shards < 1:
            raise CatalogError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.kind == "range":
            if len(self.boundaries) != self.num_shards - 1:
                raise CatalogError(
                    f"range sharding into {self.num_shards} shards needs "
                    f"{self.num_shards - 1} boundaries, "
                    f"got {len(self.boundaries)}"
                )
            ordered = list(self.boundaries)
            if ordered != sorted(ordered):
                raise CatalogError("range boundaries must be sorted")

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Shard id for each key value."""
        if self.kind == "hash":
            return hash_buckets(values, self.num_shards)
        return np.searchsorted(
            np.asarray(self.boundaries), values, side="right"
        ).astype(np.int64)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "num_shards": int(self.num_shards),
            "kind": self.kind,
            "boundaries": [_py(b) for b in self.boundaries],
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "ShardingSpec":
        return cls(
            key=spec["key"],
            num_shards=int(spec["num_shards"]),
            kind=spec.get("kind", "hash"),
            boundaries=tuple(spec.get("boundaries", ())),
        )


@dataclass
class ShardedTable:
    """The materialized shards of one base table under a spec.

    Shards preserve the base table's row order within each shard (stable
    split), so gathering shard results in shard order is deterministic.
    Per-shard statistics collect lazily — routing a query touches only
    the columns its predicate constrains.
    """

    table_name: str
    spec: ShardingSpec
    shards: list[Table]
    #: Monotonic token from the catalog; workers key their shard caches
    #: on it so a write to the base table invalidates cached shard data.
    epoch: int = 0
    _stats: list[TableStatistics | None] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        table_name: str,
        table: Table,
        spec: ShardingSpec,
        epoch: int = 0,
    ) -> "ShardedTable":
        key_column = table.resolve_name(spec.key)
        assignment = spec.assign(table.column(key_column))
        shards: list[Table] = []
        for shard_id in range(spec.num_shards):
            indices = np.nonzero(assignment == shard_id)[0]
            shard = table.take(indices)
            if table.partition_size:
                shard = shard.with_partitioning(table.partition_size)
            shards.append(shard)
        return cls(table_name, spec, shards, epoch)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_rows(self) -> int:
        return sum(shard.num_rows for shard in self.shards)

    def shard(self, shard_id: int) -> Table:
        return self.shards[shard_id]

    def shard_statistics(self, shard_id: int) -> TableStatistics:
        """Per-shard statistics, collected on first use."""
        if not self._stats:
            self._stats = [None] * len(self.shards)
        cached = self._stats[shard_id]
        if cached is None:
            cached = collect_statistics(self.shards[shard_id])
            self._stats[shard_id] = cached
        return cached

    def shard_token(self, shard_id: int) -> tuple:
        """The worker-cache key for one shard's data."""
        return (self.table_name.lower(), shard_id, self.epoch)


def _py(value: object):
    if value is None or isinstance(value, str):
        return value
    if hasattr(value, "item"):
        return value.item()
    return value
