"""Execution runtimes: integrated, out-of-process, containerized."""

from repro.core.runtime.container import ContainerRuntime, ModelServer
from repro.core.runtime.executor import RavenExecutor
from repro.core.runtime.outofprocess import OutOfProcessRuntime

__all__ = [
    "ContainerRuntime",
    "ModelServer",
    "OutOfProcessRuntime",
    "RavenExecutor",
]
