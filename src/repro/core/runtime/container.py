"""Containerized execution — the REST-scoring fallback (paper §5).

The paper spins up a Docker container exposing a prediction REST endpoint
for pipelines nothing else can run. Offline, the container runtime is a
local HTTP server in a background thread serving the same JSON
``POST /predict`` protocol; the Docker daemon's cold-start is modelled as
a configurable constant (documented in DESIGN.md's substitution table) so
Fig. 3-style comparisons retain the startup-cost structure.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import numpy as np

from repro.errors import RuntimeDispatchError
from repro.ml import model_format
from repro.relational.table import Table


class ModelServer:
    """A minimal scoring server: ``POST /predict`` with a columns payload."""

    def __init__(self, model, host: str = "127.0.0.1", port: int = 0):
        self._model = model
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802 (http.server API)
                if self.path != "/predict":
                    self.send_error(404)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                try:
                    payload = json.loads(self.rfile.read(length))
                    matrix = np.asarray(payload["matrix"], dtype=np.float64)
                    prediction = np.asarray(
                        outer._model.predict(matrix), dtype=np.float64
                    )
                    body = json.dumps(
                        {"prediction": prediction.tolist()}
                    ).encode()
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except Exception as exc:  # report scoring errors as 500s
                    message = json.dumps({"error": str(exc)}).encode()
                    self.send_response(500)
                    self.send_header("Content-Length", str(len(message)))
                    self.end_headers()
                    self.wfile.write(message)

            def log_message(self, *args):  # silence request logging
                pass

        self._server = HTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "ModelServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ContainerRuntime:
    """Client side of containerized scoring.

    ``simulated_container_start_seconds`` models ``docker run`` latency
    (charged once, on the first request) since no Docker daemon exists in
    this environment.
    """

    def __init__(
        self,
        model_bundle_json: str,
        simulated_container_start_seconds: float = 1.0,
    ):
        self._bundle = model_bundle_json
        self.simulated_container_start_seconds = simulated_container_start_seconds
        self._server: ModelServer | None = None
        self._started = False
        self.last_request_seconds: float | None = None

    def start(self) -> None:
        if self._started:
            return
        model = model_format.loads(self._bundle)
        self._server = ModelServer(model).start()
        # Model the docker-pull/start cost the first time only.
        time.sleep(self.simulated_container_start_seconds)
        self._started = True

    def stop(self) -> None:
        if self._server is not None:
            self._server.stop()
        self._started = False

    def score(
        self, table: Table, feature_names: list[str] | None = None
    ) -> np.ndarray:
        self.start()
        assert self._server is not None
        host, port = self._server.address
        start = time.perf_counter()
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            body = json.dumps(
                {"matrix": table.to_matrix(feature_names).tolist()}
            )
            connection.request(
                "POST",
                "/predict",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                raise RuntimeDispatchError(
                    f"container scoring failed: {payload.get('error')}"
                )
            return np.asarray(payload["prediction"], dtype=np.float64)
        finally:
            connection.close()
            self.last_request_seconds = time.perf_counter() - start

    def __enter__(self) -> "ContainerRuntime":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
