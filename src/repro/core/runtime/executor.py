"""The integrated runtime: executes optimized IR plans (paper §5).

RA nodes run on the relational engine's vectorized kernels; ``mld.*``
nodes score in-process through the ML library; ``la.tensor_graph`` nodes
run in cached tensor inference sessions (on CPU or the simulated GPU);
``udf.python`` nodes fall back to the out-of-process runtime. Shared
subplans (e.g. both branches of a model/query split) are memoized per
execution.

Scoring is chunked and scored on a thread pool above a row threshold,
reproducing SQL Server's automatic parallelization of scan + PREDICT
(Fig. 3, observation iii); batch size is configurable for the §5(v)
batching experiment.

Execution is re-entrant: each :meth:`RavenExecutor.execute` call keeps its
memo table on the stack and never mutates the plan, so the serving layer
can run one cached (prepared) plan from many worker threads concurrently.
The only shared mutable state — the tensor inference-session cache — is
guarded by a lock.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.errors import RuntimeDispatchError
from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.relational.algebra import logical
from repro.relational.algebra.executor import ExecutionOptions
from repro.relational.database import Database
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.tensor.session import InferenceSession


class RavenExecutor:
    """Executes unified-IR plans against a database."""

    def __init__(
        self,
        database: Database,
        options: ExecutionOptions | None = None,
        external_runtime: Callable | None = None,
    ):
        self._database = database
        self.options = options or database.executor_options
        self._external_runtime = external_runtime
        # Tensor sessions are cached by tensor-graph identity; entries
        # survive across queries, like ORT sessions inside SQL Server.
        # The keyed graph object is pinned alongside the session: id()s
        # are recycled after garbage collection, and plan churn (drop,
        # rollback, re-prepare) makes graph turnover routine.
        self._session_cache: dict[tuple, tuple[object, InferenceSession]] = {}
        self._compiled_cache: dict[tuple, tuple[object, object]] = {}
        self._session_lock = threading.Lock()

    # -- entry point -----------------------------------------------------

    def execute(self, graph: IRGraph) -> Table:
        memo: dict[int, Table] = {}
        return self._execute_node(graph, graph.output, memo)

    def _execute_node(
        self, graph: IRGraph, node: IRNode, memo: dict[int, Table]
    ) -> Table:
        if node.id in memo:
            return memo[node.id]
        handler = getattr(
            self, "_run_" + node.op.replace(".", "_"), None
        )
        if handler is None:
            raise RuntimeDispatchError(f"no runtime for IR op {node.op!r}")
        inputs = [
            self._execute_node(graph, graph.node(i), memo) for i in node.inputs
        ]
        result = handler(node, inputs)
        memo[node.id] = result
        return result

    # -- relational operators (delegated to the DB's kernels) ------------------

    def _relational(self, op: logical.LogicalOp) -> Table:
        return self._database.execute_plan(op)

    def _run_ra_scan(self, node: IRNode, inputs: list[Table]) -> Table:
        table = self._database.table(node.attrs["table"])
        alias = node.attrs.get("alias")
        return table.prefixed(alias) if alias else table

    def _run_ra_inline_table(self, node: IRNode, inputs: list[Table]) -> Table:
        table = node.attrs["table_value"]
        alias = node.attrs.get("alias")
        return table.prefixed(alias) if alias else table

    def _run_ra_filter(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.Filter(
                logical.InlineTable(inputs[0]), node.attrs["predicate"]
            )
        )

    def _run_ra_project(self, node: IRNode, inputs: list[Table]) -> Table:
        items = node.attrs.get("items")
        if items is None:
            return inputs[0].drop(node.attrs.get("drop", []))
        return self._relational(
            logical.Project(logical.InlineTable(inputs[0]), tuple(items))
        )

    def _run_ra_join(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.Join(
                logical.InlineTable(inputs[0]),
                logical.InlineTable(inputs[1]),
                node.attrs.get("kind", "INNER"),
                node.attrs.get("condition"),
            )
        )

    def _run_ra_union_all(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.UnionAll(tuple(logical.InlineTable(t) for t in inputs))
        )

    def _run_ra_order_by(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.OrderBy(
                logical.InlineTable(inputs[0]), tuple(node.attrs["keys"])
            )
        )

    def _run_ra_limit(self, node: IRNode, inputs: list[Table]) -> Table:
        return inputs[0].head(node.attrs["count"])

    def _run_ra_distinct(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.Distinct(logical.InlineTable(inputs[0]))
        )

    def _run_ra_gather(self, node: IRNode, inputs: list[Table]) -> Table:
        from repro.distributed.operators import Gather

        return self._relational(
            Gather(
                node.attrs["table"],
                node.attrs["fragment"],
                node.attrs["shard_key"],
                tuple(node.attrs["shard_ids"]),
                node.attrs["total_shards"],
                node.attrs.get("pruned_by", "none"),
                node.attrs.get("join", "none"),
            )
        )

    def _run_ra_shuffle_join(self, node: IRNode, inputs: list[Table]) -> Table:
        from repro.distributed.operators import ShuffleJoin

        return self._relational(
            ShuffleJoin(
                node.attrs["left"],
                node.attrs["right"],
                node.attrs.get("kind", "INNER"),
                node.attrs["condition"],
                node.attrs["num_buckets"],
                tuple(node.attrs.get("stages") or ()),
            )
        )

    def _run_ra_repartition(self, node: IRNode, inputs: list[Table]) -> Table:
        from repro.distributed.operators import Repartition

        return self._relational(
            Repartition(
                logical.InlineTable(inputs[0]),
                node.attrs["key"],
                node.attrs["num_buckets"],
            )
        )

    def _run_ra_aggregate(self, node: IRNode, inputs: list[Table]) -> Table:
        return self._relational(
            logical.Aggregate(
                logical.InlineTable(inputs[0]),
                tuple(node.attrs.get("group_by", [])),
                tuple(node.attrs.get("aggregates", [])),
            )
        )

    # -- scoring operators ------------------------------------------------

    def _append_outputs(
        self,
        node: IRNode,
        table: Table,
        values: np.ndarray,
    ) -> Table:
        """Attach prediction columns (aliased) to the input rows."""
        values = np.asarray(values)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        alias = node.attrs.get("alias")
        result = table
        outputs = node.attrs.get("output_columns") or (
            ("prediction", DataType.FLOAT),
        )
        for index, (name, dtype) in enumerate(outputs):
            if index >= values.shape[1]:
                break
            out_name = f"{alias}.{name}" if alias else name
            np_dtype = (
                dtype.numpy_dtype
                if isinstance(dtype, DataType)
                else np.dtype(np.float64)
            )
            result = result.with_column(
                out_name, values[:, index].astype(np_dtype)
            )
        return result

    def _score_chunked(
        self, table: Table, features: list[str] | None, scorer
    ) -> np.ndarray:
        """Chunk + thread-pool scoring (the parallel PREDICT path)."""
        options = self.options
        rows = table.num_rows
        matrix = table.to_matrix(features)
        batch = options.default_batch_size
        parallel = (
            options.parallel_predict and rows >= options.parallel_row_threshold
        )
        if batch is None and not parallel:
            return np.asarray(scorer(matrix))
        if batch is None:
            batch = max(1, rows // (options.max_workers * 2))
        chunks = [
            matrix[start : start + batch]
            for start in range(0, max(rows, 1), batch)
        ]
        if parallel and len(chunks) > 1:
            with ThreadPoolExecutor(max_workers=options.max_workers) as pool:
                parts = list(pool.map(scorer, chunks))
        else:
            parts = [scorer(chunk) for chunk in chunks]
        return np.concatenate([np.asarray(p) for p in parts])

    def _run_mld_pipeline(self, node: IRNode, inputs: list[Table]) -> Table:
        pipeline = node.attrs["pipeline"]
        features = node.attrs.get("feature_names")
        scorer = None
        backend = (node.attrs.get("backend") or "numpy").lower()
        if backend != "numpy":
            scorer = self._compiled_scorer_for(node, pipeline, features, backend)
        if scorer is None:
            scorer = lambda m: pipeline.predict(m)  # noqa: E731
        predictions = self._score_chunked(inputs[0], features, scorer)
        return self._append_outputs(node, inputs[0], predictions)

    def _compiled_scorer_for(self, node: IRNode, pipeline, features, backend):
        """Cached compiled scorer for a memo-chosen pipeline backend.

        Cached by pipeline identity + backend (pipelines are opaque
        payloads; plans pin them). ``None`` — and the interpreted
        ``predict`` path — when NN translation fails.
        """
        from repro.tensor.backends import compiled_pipeline_scorer

        key = (id(pipeline), backend)
        with self._session_lock:
            cached = self._compiled_cache.get(key)
            if cached is not None and cached[0] is pipeline:
                return cached[1]
        scorer = compiled_pipeline_scorer(
            pipeline, len(features) if features else None, backend
        )
        with self._session_lock:
            self._compiled_cache[key] = (pipeline, scorer)
        return scorer

    def _run_mld_predictor(self, node: IRNode, inputs: list[Table]) -> Table:
        model = node.attrs["model"]
        features = node.attrs.get("feature_names")
        predictions = self._score_chunked(
            inputs[0], features, lambda m: model.predict(m)
        )
        return self._append_outputs(node, inputs[0], predictions)

    def _run_mld_clustered_predictor(
        self, node: IRNode, inputs: list[Table]
    ) -> Table:
        model = node.attrs["model"]
        features = node.attrs.get("feature_names")
        predictions = self._score_chunked(
            inputs[0], features, lambda m: model.predict(m)
        )
        return self._append_outputs(node, inputs[0], predictions)

    def _run_la_tensor_graph(self, node: IRNode, inputs: list[Table]) -> Table:
        session = self._session_for(node)
        features = node.attrs.get("feature_names")

        def scorer(matrix: np.ndarray) -> np.ndarray:
            outputs = session.run({session.input_names[0]: matrix})
            return np.asarray(outputs[0]).reshape(matrix.shape[0], -1)

        predictions = self._score_chunked(inputs[0], features, scorer)
        return self._append_outputs(node, inputs[0], predictions)

    def _session_for(self, node: IRNode) -> InferenceSession:
        tensor_graph = node.attrs["graph"]
        backend = (node.attrs.get("backend") or "numpy").lower()
        key = (id(tensor_graph), backend)
        with self._session_lock:
            cached = self._session_cache.get(key)
            if (
                cached is not None
                and cached[0] is tensor_graph
                and cached[1].device.name == _device_name(node)
            ):
                return cached[1]
        # Build outside the lock: session construction can be expensive
        # and must not stall concurrent scoring on unrelated graphs.
        session = InferenceSession(
            tensor_graph,
            device=node.attrs.get("device", "cpu"),
            backend=backend,
        )
        with self._session_lock:
            self._session_cache[key] = (tensor_graph, session)
        return session

    # -- fallback runtimes ------------------------------------------------

    def _run_udf_python(self, node: IRNode, inputs: list[Table]) -> Table:
        fn = node.attrs.get("fn")
        if callable(fn):
            result = fn(inputs[0])
            if isinstance(result, Table):
                return result
            return self._append_outputs(node, inputs[0], np.asarray(result))
        if self._external_runtime is not None:
            result = self._external_runtime(
                node.attrs.get("source", ""), inputs[0]
            )
            if isinstance(result, Table):
                return result
            return self._append_outputs(node, inputs[0], np.asarray(result))
        raise RuntimeDispatchError(
            f"UDF {node.attrs.get('name', '?')!r} has no callable and no "
            "external runtime is configured"
        )


def _device_name(node: IRNode) -> str:
    device = node.attrs.get("device", "cpu")
    if isinstance(device, str):
        return "gpu(simulated)" if device.lower() in ("gpu", "cuda") else "cpu"
    return device.name
