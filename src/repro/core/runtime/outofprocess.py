"""Out-of-process execution — the ``sp_execute_external_script`` path (§5).

A real process boundary: data is written to a temp ``.npz``, a fresh Python
interpreter is spawned, the model (a :mod:`repro.ml.model_format` JSON
bundle) or an arbitrary script runs there, and results come back through
another ``.npz``. The interpreter start plus serialization is the ~0.5 s
constant overhead Fig. 3 attributes to Raven Ext.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

import numpy as np

from repro.errors import RuntimeDispatchError
from repro.relational.table import Table

_MODEL_DRIVER = """
import json, sys
import numpy as np
sys.path.insert(0, {src_path!r})
from repro.ml import model_format

data = np.load({data_path!r})
matrix = data["matrix"]
model = model_format.loads(Path({model_path!r}).read_text())
prediction = np.asarray(model.predict(matrix), dtype=np.float64)
np.savez({out_path!r}, prediction=prediction)
"""

_SCRIPT_DRIVER = """
import sys
import numpy as np
sys.path.insert(0, {src_path!r})

data = np.load({data_path!r}, allow_pickle=False)
input_columns = {{name: data[name] for name in data.files}}

_globals = {{"input_columns": input_columns, "np": np}}
exec(compile(open({script_path!r}).read(), "external_script", "exec"), _globals)
output = _globals.get("output")
if output is None:
    raise SystemExit("external script must assign a 1-D array to `output`")
np.savez({out_path!r}, prediction=np.asarray(output, dtype=np.float64))
"""


class OutOfProcessRuntime:
    """Spawns a fresh interpreter per scoring call (Raven Ext)."""

    def __init__(self, python_executable: str | None = None, timeout: float = 120.0):
        self.python_executable = python_executable or sys.executable
        self.timeout = timeout
        self.last_startup_seconds: float | None = None

    def _src_path(self) -> str:
        import repro

        return str(Path(repro.__file__).resolve().parents[1])

    def score_model(
        self,
        model_bundle_json: str,
        table: Table,
        feature_names: list[str] | None = None,
    ) -> np.ndarray:
        """Score a serialized model bundle on a table, out of process."""
        with tempfile.TemporaryDirectory(prefix="raven_ext_") as tmp:
            tmp_path = Path(tmp)
            data_path = tmp_path / "data.npz"
            model_path = tmp_path / "model.json"
            out_path = tmp_path / "out.npz"
            np.savez(data_path, matrix=table.to_matrix(feature_names))
            model_path.write_text(model_bundle_json)
            driver = "from pathlib import Path\n" + textwrap.dedent(
                _MODEL_DRIVER.format(
                    src_path=self._src_path(),
                    data_path=str(data_path),
                    model_path=str(model_path),
                    out_path=str(out_path),
                )
            )
            self._run_driver(driver, tmp_path)
            with np.load(out_path) as result:
                return result["prediction"]

    def run_script(self, script: str, table: Table) -> np.ndarray:
        """Execute an arbitrary Python script over the table's columns.

        The script sees ``input_columns`` (a dict of NumPy arrays) and
        must assign its result to ``output``.
        """
        with tempfile.TemporaryDirectory(prefix="raven_ext_") as tmp:
            tmp_path = Path(tmp)
            data_path = tmp_path / "data.npz"
            script_path = tmp_path / "script.py"
            out_path = tmp_path / "out.npz"
            numeric = {
                c.name: table.column(c.name)
                for c in table.schema
                if c.dtype.is_numeric
            }
            np.savez(data_path, **numeric)
            script_path.write_text(script)
            driver = textwrap.dedent(
                _SCRIPT_DRIVER.format(
                    src_path=self._src_path(),
                    data_path=str(data_path),
                    script_path=str(script_path),
                    out_path=str(out_path),
                )
            )
            self._run_driver(driver, tmp_path)
            with np.load(out_path) as result:
                return result["prediction"]

    def _run_driver(self, driver: str, tmp_path: Path) -> None:
        import time

        driver_path = tmp_path / "driver.py"
        driver_path.write_text(driver)
        start = time.perf_counter()
        completed = subprocess.run(
            [self.python_executable, str(driver_path)],
            capture_output=True,
            text=True,
            timeout=self.timeout,
        )
        self.last_startup_seconds = time.perf_counter() - start
        if completed.returncode != 0:
            raise RuntimeDispatchError(
                "out-of-process execution failed:\n" + completed.stderr[-2000:]
            )
