"""The Raven public API.

:class:`RavenSession` wires the pieces of §2's architecture together:
Static Analyzer -> unified IR -> Cross Optimizer -> Runtime Code Generator
-> integrated SQL+ML runtime. A typical interaction::

    from repro import Database, RavenSession
    from repro.ml import Pipeline, StandardScaler, DecisionTreeClassifier

    db = Database()
    db.register_table("patients", patients_table)
    db.store_model("duration_of_stay", fitted_pipeline,
                   metadata={"feature_names": ["age", "pregnant", "bp"]})

    raven = RavenSession(db)
    result = raven.execute(INFERENCE_QUERY)
    print(result.table.pretty())
    print(result.report.applied)      # which optimizations fired
    print(result.sql)                 # regenerated SQL
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodegenError
from repro.core.analysis.sql_analyzer import SQLAnalyzer
from repro.core.codegen.sql_codegen import generate_sql
from repro.core.ir.graph import IRGraph
from repro.core.optimizer.engine import (
    CostBasedOptimizer,
    HeuristicOptimizer,
    OptimizationReport,
    UnifiedOptimizer,
    default_rules,
)
from repro.core.optimizer.rule import RuleContext
from repro.core.runtime.executor import RavenExecutor
from repro.core.runtime.outofprocess import OutOfProcessRuntime
from repro.relational.database import Database
from repro.relational.table import Table


@dataclass
class RavenResult:
    """Everything produced by one inference-query execution."""

    table: Table
    plan: IRGraph
    report: OptimizationReport
    sql: str | None = None
    timings: dict = field(default_factory=dict)


class RavenSession:
    """An inference-query session over a database.

    Parameters
    ----------
    database:
        The relational database holding tables and models.
    optimizer:
        ``"heuristic"`` (the paper's initial rule-ordered optimizer),
        ``"cost"`` (the Cascades-style follow-up), or ``"none"``.
    options:
        Optimizer knobs: ``device`` (``"cpu"``/``"gpu"``),
        ``enable_nn_translation``, ``enable_inlining``,
        ``enable_splitting``, ``derive_statistics_predicates``,
        ``lossy_pushdown_tolerance``, ``max_inline_nodes``.
    """

    def __init__(
        self,
        database: Database,
        optimizer: str = "heuristic",
        options: dict | None = None,
    ):
        self.database = database
        self.options = dict(options or {})
        self.optimizer_kind = optimizer
        self.analyzer = SQLAnalyzer(database)
        external = OutOfProcessRuntime()
        self.executor = RavenExecutor(
            database, external_runtime=external.run_script
        )
        self.out_of_process = external
        self.last_analysis_seconds: float | None = None
        self._plan_cache = None

    @property
    def plan_cache(self):
        """The session's normalized-plan LRU (created on first use).

        Registered as a database model listener so that storing a new
        model version — or rolling one back — invalidates every cached
        plan that embeds the old version.
        """
        if self._plan_cache is None:
            import weakref

            from repro.serving.plan_cache import PlanCache

            cache = PlanCache()
            # The listener holds the cache weakly: when a short-lived
            # session (and its cache) is collected, the next model event
            # unregisters the listener instead of leaking it on a
            # long-lived database.
            cache_ref = weakref.ref(cache)
            database = self.database

            def _invalidate(_event: str, name: str) -> None:
                live = cache_ref()
                if live is None:
                    database.remove_model_listener(_invalidate)
                else:
                    live.invalidate_model(name)

            database.add_model_listener(_invalidate)
            self._plan_cache = cache
        return self._plan_cache

    # -- pipeline stages ----------------------------------------------------

    def analyze(self, sql: str, data: dict[str, Table] | None = None) -> IRGraph:
        """Static analysis: inference query -> unified IR."""
        import time

        from repro.observability import trace as qtrace

        start = time.perf_counter()
        with qtrace.span("analyze"):
            graph = self.analyzer.analyze(sql, data)
        self.last_analysis_seconds = time.perf_counter() - start
        return graph

    def optimize(self, graph: IRGraph) -> tuple[IRGraph, OptimizationReport]:
        """Cross-optimization under the session's options.

        The default path runs through the unified Cascades memo
        (relational pushdown, DP join ordering, and the ML rewrites as
        competing memo rules). The opt-in strategies the memo does not
        search — model/query splitting and NN translation — force the
        legacy heuristic pipeline, exactly as before.
        """
        context = RuleContext(database=self.database, options=dict(self.options))
        if self.optimizer_kind == "none":
            from repro.core.optimizer.engine import assign_engines

            optimized = graph.copy()
            assign_engines(optimized)
            return optimized, OptimizationReport(strategy="none")
        if self.optimizer_kind == "cost":
            return CostBasedOptimizer().optimize(graph, context)
        if self.options.get("enable_splitting") or self.options.get(
            "enable_nn_translation"
        ):
            rules = default_rules(
                enable_splitting=bool(
                    self.options.get("enable_splitting", False)
                ),
                enable_inlining=bool(self.options.get("enable_inlining", True)),
                enable_nn_translation=bool(
                    self.options.get("enable_nn_translation", False)
                ),
                max_inline_nodes=int(self.options.get("max_inline_nodes", 255)),
            )
            return HeuristicOptimizer(rules).optimize(graph, context)
        return UnifiedOptimizer(self.options).optimize(graph, context)

    def generate_sql(self, graph: IRGraph) -> str | None:
        """Runtime code generation (None when the plan has no SQL form)."""
        try:
            return generate_sql(graph)
        except CodegenError:
            return None

    def prepare(self, sql: str, data: dict[str, Table] | None = None):
        """Compile an inference query once for repeated execution.

        ``sql`` may contain ``?`` positional or ``@name`` parameter
        placeholders; ``data`` supplies schema templates for request
        tables that each execution re-binds. The optimized plan is cached
        in :attr:`plan_cache` keyed by the query's normalized SQL
        fingerprint and the versions of every model it embeds.

        Returns a :class:`repro.serving.PreparedQuery`.
        """
        from repro.serving.prepared import PreparedQuery

        return PreparedQuery(self, sql, data=data, plan_cache=self.plan_cache)

    # -- one-call execution ----------------------------------------------

    def execute(
        self,
        sql: str,
        data: dict[str, Table] | None = None,
        optimize: bool = True,
    ) -> RavenResult:
        """Analyze, optimize, codegen, and run an inference query."""
        import time

        from repro.observability import trace as qtrace

        timings: dict[str, float] = {}
        start = time.perf_counter()
        graph = self.analyze(sql, data)
        timings["analyze"] = time.perf_counter() - start

        if optimize:
            start = time.perf_counter()
            with qtrace.span("optimize"):
                graph, report = self.optimize(graph)
            timings["optimize"] = time.perf_counter() - start
        else:
            from repro.core.optimizer.engine import assign_engines

            assign_engines(graph)
            report = OptimizationReport(strategy="disabled")

        generated = self.generate_sql(graph)

        start = time.perf_counter()
        with qtrace.span("execute") as sp:
            table = self.executor.execute(graph)
            sp.set("rows", table.num_rows)
        timings["execute"] = time.perf_counter() - start
        return RavenResult(
            table=table, plan=graph, report=report, sql=generated, timings=timings
        )

    def explain(self, sql: str, data: dict[str, Table] | None = None) -> str:
        """Optimized plan + applied rules, as a printable report."""
        graph = self.analyze(sql, data)
        optimized, report = self.optimize(graph)
        lines = [
            "== unoptimized IR ==",
            graph.pretty(),
            "",
            f"== optimized IR (strategy: {report.strategy}) ==",
            optimized.pretty(),
            "",
            f"estimated cost: {report.cost_before:.0f} -> {report.cost_after:.0f}",
        ]
        if report.applied:
            lines.append("applied rules:")
            lines.extend(f"  - {entry}" for entry in report.applied)
        else:
            lines.append("applied rules: (none)")
        generated = self.generate_sql(optimized)
        if generated:
            lines.extend(["", "== generated SQL ==", generated])
        return "\n".join(lines)
