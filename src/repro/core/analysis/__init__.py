"""Static analysis: Python scripts and SQL to the unified IR."""

from repro.core.analysis.knowledge_base import DEFAULT_KNOWLEDGE_BASE, KnowledgeBase
from repro.core.analysis.python_analyzer import AnalysisResult, PythonStaticAnalyzer
from repro.core.analysis.sql_analyzer import SQLAnalyzer

__all__ = [
    "AnalysisResult",
    "DEFAULT_KNOWLEDGE_BASE",
    "KnowledgeBase",
    "PythonStaticAnalyzer",
    "SQLAnalyzer",
]
