"""The static analyzer's API knowledge base.

The paper builds this from ~4.6M public notebooks; ours is hand-curated but
plays the same role: it maps qualified names of data-science APIs (both
``sklearn.*``/``pandas.*`` spellings and this package's ``repro.*`` ones)
onto IR operator constructors. The analyzer consults it when it sees an
imported name called in a script; anything absent becomes a UDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ml.cluster import KMeans
from repro.ml.ensemble import (
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.ml.neural import MLPClassifier, MLPRegressor
from repro.ml.pipeline import ColumnTransformer, FeatureUnion, Pipeline
from repro.ml.preprocessing import (
    Binarizer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


@dataclass(frozen=True)
class ApiEntry:
    """One known API: the class it constructs and its IR role."""

    constructor: type
    role: str  # "transformer" | "estimator" | "pipeline" | "union" | "column_transformer"


_ALIASES: dict[str, tuple[str, ...]] = {
    # canonical class -> every import path the analyzer recognizes
    "Pipeline": ("sklearn.pipeline.Pipeline", "repro.ml.pipeline.Pipeline"),
    "FeatureUnion": (
        "sklearn.pipeline.FeatureUnion",
        "repro.ml.pipeline.FeatureUnion",
    ),
    "ColumnTransformer": (
        "sklearn.compose.ColumnTransformer",
        "repro.ml.pipeline.ColumnTransformer",
    ),
    "StandardScaler": (
        "sklearn.preprocessing.StandardScaler",
        "repro.ml.preprocessing.StandardScaler",
    ),
    "MinMaxScaler": (
        "sklearn.preprocessing.MinMaxScaler",
        "repro.ml.preprocessing.MinMaxScaler",
    ),
    "OneHotEncoder": (
        "sklearn.preprocessing.OneHotEncoder",
        "repro.ml.preprocessing.OneHotEncoder",
    ),
    "Binarizer": (
        "sklearn.preprocessing.Binarizer",
        "repro.ml.preprocessing.Binarizer",
    ),
    "SimpleImputer": (
        "sklearn.impute.SimpleImputer",
        "repro.ml.preprocessing.SimpleImputer",
    ),
    "LabelEncoder": (
        "sklearn.preprocessing.LabelEncoder",
        "repro.ml.preprocessing.LabelEncoder",
    ),
    "DecisionTreeClassifier": (
        "sklearn.tree.DecisionTreeClassifier",
        "repro.ml.tree.DecisionTreeClassifier",
    ),
    "DecisionTreeRegressor": (
        "sklearn.tree.DecisionTreeRegressor",
        "repro.ml.tree.DecisionTreeRegressor",
    ),
    "RandomForestClassifier": (
        "sklearn.ensemble.RandomForestClassifier",
        "repro.ml.ensemble.RandomForestClassifier",
    ),
    "RandomForestRegressor": (
        "sklearn.ensemble.RandomForestRegressor",
        "repro.ml.ensemble.RandomForestRegressor",
    ),
    "GradientBoostingRegressor": (
        "sklearn.ensemble.GradientBoostingRegressor",
        "repro.ml.ensemble.GradientBoostingRegressor",
    ),
    "LinearRegression": (
        "sklearn.linear_model.LinearRegression",
        "repro.ml.linear.LinearRegression",
    ),
    "LogisticRegression": (
        "sklearn.linear_model.LogisticRegression",
        "repro.ml.linear.LogisticRegression",
    ),
    "Ridge": ("sklearn.linear_model.Ridge", "repro.ml.linear.Ridge"),
    "Lasso": ("sklearn.linear_model.Lasso", "repro.ml.linear.Lasso"),
    "MLPClassifier": (
        "sklearn.neural_network.MLPClassifier",
        "repro.ml.neural.MLPClassifier",
    ),
    "MLPRegressor": (
        "sklearn.neural_network.MLPRegressor",
        "repro.ml.neural.MLPRegressor",
    ),
    "KMeans": ("sklearn.cluster.KMeans", "repro.ml.cluster.KMeans"),
}

_ROLES: dict[str, str] = {
    "Pipeline": "pipeline",
    "FeatureUnion": "union",
    "ColumnTransformer": "column_transformer",
    "StandardScaler": "transformer",
    "MinMaxScaler": "transformer",
    "OneHotEncoder": "transformer",
    "Binarizer": "transformer",
    "SimpleImputer": "transformer",
    "LabelEncoder": "transformer",
    "DecisionTreeClassifier": "estimator",
    "DecisionTreeRegressor": "estimator",
    "RandomForestClassifier": "estimator",
    "RandomForestRegressor": "estimator",
    "GradientBoostingRegressor": "estimator",
    "LinearRegression": "estimator",
    "LogisticRegression": "estimator",
    "Ridge": "estimator",
    "Lasso": "estimator",
    "MLPClassifier": "estimator",
    "MLPRegressor": "estimator",
    "KMeans": "estimator",
}

_CLASSES: dict[str, type] = {
    "Pipeline": Pipeline,
    "FeatureUnion": FeatureUnion,
    "ColumnTransformer": ColumnTransformer,
    "StandardScaler": StandardScaler,
    "MinMaxScaler": MinMaxScaler,
    "OneHotEncoder": OneHotEncoder,
    "Binarizer": Binarizer,
    "SimpleImputer": SimpleImputer,
    "LabelEncoder": LabelEncoder,
    "DecisionTreeClassifier": DecisionTreeClassifier,
    "DecisionTreeRegressor": DecisionTreeRegressor,
    "RandomForestClassifier": RandomForestClassifier,
    "RandomForestRegressor": RandomForestRegressor,
    "GradientBoostingRegressor": GradientBoostingRegressor,
    "LinearRegression": LinearRegression,
    "LogisticRegression": LogisticRegression,
    "Ridge": Ridge,
    "Lasso": Lasso,
    "MLPClassifier": MLPClassifier,
    "MLPRegressor": MLPRegressor,
    "KMeans": KMeans,
}


class KnowledgeBase:
    """Lookup from import paths / bare class names to API entries."""

    def __init__(self):
        self._by_path: dict[str, ApiEntry] = {}
        for canonical, paths in _ALIASES.items():
            entry = ApiEntry(_CLASSES[canonical], _ROLES[canonical])
            self._by_path[canonical] = entry
            for path in paths:
                self._by_path[path] = entry

    def lookup(self, name: str) -> ApiEntry | None:
        """Resolve a (possibly dotted) name; None if unknown."""
        if name in self._by_path:
            return self._by_path[name]
        # Try the last dotted component (``from x import StandardScaler``).
        tail = name.rsplit(".", 1)[-1]
        return self._by_path.get(tail)

    def register(self, path: str, constructor: type, role: str) -> None:
        """Extend the KB at runtime (the paper calls the set 'easily
        extensible')."""
        self._by_path[path] = ApiEntry(constructor, role)

    def known_paths(self) -> list[str]:
        return sorted(self._by_path)


DEFAULT_KNOWLEDGE_BASE = KnowledgeBase()
