"""Static analysis of Python model-pipeline scripts (paper §3.2).

Given a script's source text, the analyzer performs lexing/parsing (via
:mod:`ast`), variable and scope extraction, simple type inference, and
dataflow extraction, then compiles the dataflow onto the unified IR using
the API knowledge base:

* constructor calls of known data-science classes become estimator objects
  (``Pipeline([...])`` is rebuilt structurally — never ``eval``-ed),
* pandas-style dataframe operations (``df[df.x > 3]``, ``df.merge``,
  ``df[['a', 'b']]``) become RA operators,
* ``model.predict(df)`` becomes an ``mld.pipeline`` node,
* conditionals fork the analysis — one IR plan per execution path,
* loops and unknown calls fall back to ``udf.python`` nodes wrapping the
  original source, exactly as the paper prescribes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.errors import StaticAnalysisError
from repro.core.analysis.knowledge_base import DEFAULT_KNOWLEDGE_BASE, KnowledgeBase
from repro.core.ir.graph import IRGraph
from repro.relational.expressions import BinaryOp, ColumnRef, Expression, Literal


@dataclass
class AnalyzedValue:
    """Abstract value tracked per variable during analysis."""

    kind: str  # "estimator" | "dataframe" | "literal" | "unknown"
    payload: object = None  # estimator object / IR node id / literal value
    inferred_type: str = "unknown"


@dataclass
class AnalysisResult:
    """Output of analyzing one script."""

    plans: list[IRGraph] = field(default_factory=list)
    pipelines: dict[str, object] = field(default_factory=dict)
    udf_count: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def plan(self) -> IRGraph:
        """The single plan (errors if conditionals produced several)."""
        if len(self.plans) != 1:
            raise StaticAnalysisError(
                f"script has {len(self.plans)} execution paths; use .plans"
            )
        return self.plans[0]


class PythonStaticAnalyzer:
    """AST-based analyzer for straight-line-plus-conditionals scripts."""

    def __init__(self, knowledge_base: KnowledgeBase | None = None):
        self._kb = knowledge_base or DEFAULT_KNOWLEDGE_BASE

    # -- public API ----------------------------------------------------------

    def analyze(self, source: str) -> AnalysisResult:
        """Analyze a script; returns per-execution-path IR plans."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise StaticAnalysisError(f"cannot parse script: {exc}") from exc
        result = AnalysisResult()
        state = _AnalysisState(self._kb, result, source)
        states = state.run_block(tree.body)
        for final_state in states:
            graph = final_state.build_plan()
            if graph is not None:
                result.plans.append(graph)
        result.pipelines = {
            name: value.payload
            for name, value in states[0].scope.items()
            if value.kind == "estimator"
        }
        if not result.plans and not result.pipelines:
            result.warnings.append("script produced no plan and no pipeline")
        return result

    def extract_pipeline(self, source: str):
        """Convenience: the single estimator a model script constructs."""
        result = self.analyze(source)
        if len(result.pipelines) == 1:
            return next(iter(result.pipelines.values()))
        for value in result.pipelines.values():
            from repro.ml.pipeline import Pipeline

            if isinstance(value, Pipeline):
                return value
        raise StaticAnalysisError(
            f"expected one pipeline, found {sorted(result.pipelines)}"
        )


class _AnalysisState:
    """Mutable per-path analysis state (scope + IR under construction)."""

    def __init__(self, kb: KnowledgeBase, result: AnalysisResult, source: str):
        self.kb = kb
        self.result = result
        self.source = source
        self.scope: dict[str, AnalyzedValue] = {}
        self.imports: dict[str, str] = {}  # local name -> qualified path
        self.graph = IRGraph()
        self.sink_node: int | None = None

    def fork(self) -> "_AnalysisState":
        clone = _AnalysisState(self.kb, self.result, self.source)
        clone.scope = dict(self.scope)
        clone.imports = dict(self.imports)
        clone.graph = self.graph.copy()
        clone.sink_node = self.sink_node
        return clone

    def build_plan(self) -> IRGraph | None:
        if self.sink_node is None:
            return None
        self.graph.set_output(self.sink_node)
        self.graph.garbage_collect()
        return self.graph

    # -- statement walk --------------------------------------------------

    def run_block(self, statements: list[ast.stmt]) -> list["_AnalysisState"]:
        states = [self]
        for statement in statements:
            next_states: list[_AnalysisState] = []
            for state in states:
                next_states.extend(state._run_statement(statement))
            states = next_states
            if len(states) > 16:
                raise StaticAnalysisError(
                    "too many execution paths (deeply nested conditionals)"
                )
        return states

    def _run_statement(self, statement: ast.stmt) -> list["_AnalysisState"]:
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            self._handle_import(statement)
            return [self]
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, ast.Name):
                self.scope[target.id] = self._eval(statement.value)
                return [self]
        if isinstance(statement, ast.If):
            # One plan per execution path (paper §3.2, conditionals).
            then_state = self.fork()
            else_state = self.fork()
            then_states = then_state.run_block(statement.body)
            else_states = (
                else_state.run_block(statement.orelse)
                if statement.orelse
                else [else_state]
            )
            return then_states + else_states
        if isinstance(statement, (ast.For, ast.While)):
            # Loops are not translatable (paper cites this as hard);
            # the whole loop body becomes a UDF, and every tracked
            # dataframe now flows through it (the loop may mutate any).
            self._add_udf(statement)
            if self.sink_node is not None:
                for name, value in self.scope.items():
                    if value.kind == "dataframe":
                        self.scope[name] = AnalyzedValue(
                            "dataframe", self.sink_node
                        )
            return [self]
        if isinstance(statement, ast.Expr):
            value = self._eval(statement.value)
            if value.kind == "dataframe":
                self.sink_node = value.payload
            return [self]
        if isinstance(statement, (ast.FunctionDef, ast.ClassDef)):
            self._add_udf(statement)
            return [self]
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                value = self._eval(statement.value)
                if value.kind == "dataframe":
                    self.sink_node = value.payload
            return [self]
        # Anything else (augmented assigns, with, try...) -> UDF.
        self._add_udf(statement)
        return [self]

    def _handle_import(self, statement: ast.Import | ast.ImportFrom) -> None:
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                local = alias.asname or alias.name.split(".")[0]
                self.imports[local] = alias.name
        else:
            module = statement.module or ""
            for alias in statement.names:
                local = alias.asname or alias.name
                self.imports[local] = f"{module}.{alias.name}"

    def _add_udf(self, node: ast.stmt) -> None:
        source = ast.get_source_segment(self.source, node) or ast.dump(node)
        inputs = [self.sink_node] if self.sink_node is not None else []
        if not inputs:
            # A UDF with no dataflow input still needs a place in the DAG;
            # record it without attaching (tracked via the counter).
            self.result.udf_count += 1
            self.result.warnings.append(
                f"untranslatable statement wrapped as UDF: {source[:60]!r}"
            )
            return
        udf = self.graph.add(
            "udf.python", inputs, source=source, name=f"udf_{self.result.udf_count}"
        )
        self.result.udf_count += 1
        self.sink_node = udf.id

    # -- expression evaluation ---------------------------------------------

    def _eval(self, node: ast.expr) -> AnalyzedValue:
        if isinstance(node, ast.Constant):
            return AnalyzedValue(
                "literal", node.value, type(node.value).__name__
            )
        if isinstance(node, ast.Name):
            return self.scope.get(node.id, AnalyzedValue("unknown"))
        if isinstance(node, (ast.List, ast.Tuple)):
            items = [self._eval(el) for el in node.elts]
            return AnalyzedValue("literal", items, "list")
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            if base.kind == "dataframe":
                # df.column — a column reference wrapped as a literal expr.
                return AnalyzedValue(
                    "literal", ColumnRef(node.attr), "column"
                )
            return AnalyzedValue("unknown")
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            left = self._eval(node.left)
            right = self._eval(node.comparators[0])
            op_map = {
                ast.Gt: ">",
                ast.GtE: ">=",
                ast.Lt: "<",
                ast.LtE: "<=",
                ast.Eq: "=",
                ast.NotEq: "<>",
            }
            op = op_map.get(type(node.ops[0]))
            if op and isinstance(left.payload, Expression):
                right_expr = (
                    right.payload
                    if isinstance(right.payload, Expression)
                    else Literal(right.payload)
                )
                return AnalyzedValue(
                    "literal", BinaryOp(op, left.payload, right_expr), "predicate"
                )
            return AnalyzedValue("unknown")
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            op_map = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}
            op = op_map.get(type(node.op))
            if (
                op
                and isinstance(left.payload, (Expression, int, float))
                and isinstance(right.payload, (Expression, int, float))
            ):
                def to_expr(v):
                    if isinstance(v, Expression):
                        return v
                    return Literal(v)

                return AnalyzedValue(
                    "literal",
                    BinaryOp(op, to_expr(left.payload), to_expr(right.payload)),
                    "expression",
                )
            return AnalyzedValue("unknown")
        if isinstance(node, ast.BoolOp):
            parts = [self._eval(v) for v in node.values]
            if all(isinstance(p.payload, Expression) for p in parts):
                op = "AND" if isinstance(node.op, ast.And) else "OR"
                expr = parts[0].payload
                for part in parts[1:]:
                    expr = BinaryOp(op, expr, part.payload)
                return AnalyzedValue("literal", expr, "predicate")
            return AnalyzedValue("unknown")
        return AnalyzedValue("unknown")

    def _eval_call(self, node: ast.Call) -> AnalyzedValue:
        callee = self._callee_name(node.func)
        # Known estimator constructor?
        if callee is not None:
            qualified = self.imports.get(callee, callee)
            entry = self.kb.lookup(qualified)
            if entry is not None:
                estimator = self._construct(entry, node)
                if estimator is not None:
                    return AnalyzedValue("estimator", estimator)
        # Method calls on tracked values.
        if isinstance(node.func, ast.Attribute):
            base = self._eval(node.func.value)
            method = node.func.attr
            if base.kind == "dataframe":
                return self._dataframe_method(base, method, node)
            if base.kind == "estimator" and method in ("predict", "predict_proba"):
                data = self._eval(node.args[0]) if node.args else None
                if data is not None and data.kind == "dataframe":
                    predict = self.graph.add(
                        "mld.pipeline",
                        [data.payload],
                        pipeline=base.payload,
                        output_columns=(("prediction", "float"),),
                        proba=(method == "predict_proba"),
                    )
                    self.sink_node = predict.id
                    return AnalyzedValue("dataframe", predict.id)
        # table('name') / read_table('name') — the data source hook.
        if callee in ("table", "read_table", "read_sql") and node.args:
            first = self._eval(node.args[0])
            if isinstance(first.payload, str):
                scan = self.graph.add("ra.scan", [], table=first.payload)
                self.sink_node = scan.id
                return AnalyzedValue("dataframe", scan.id)
        return AnalyzedValue("unknown")

    def _dataframe_method(
        self, base: AnalyzedValue, method: str, node: ast.Call
    ) -> AnalyzedValue:
        if method == "merge" and node.args:
            other = self._eval(node.args[0])
            if other.kind == "dataframe":
                on = None
                for keyword in node.keywords:
                    if keyword.arg == "on":
                        on = self._eval(keyword.value).payload
                condition = None
                if isinstance(on, str):
                    condition = BinaryOp("=", ColumnRef(on), ColumnRef(on))
                join = self.graph.add(
                    "ra.join",
                    [base.payload, other.payload],
                    kind="INNER",
                    condition=condition,
                    on=on,
                )
                self.sink_node = join.id
                return AnalyzedValue("dataframe", join.id)
        if method in ("head", "limit") and node.args:
            count = self._eval(node.args[0]).payload
            if isinstance(count, int):
                limit = self.graph.add("ra.limit", [base.payload], count=count)
                self.sink_node = limit.id
                return AnalyzedValue("dataframe", limit.id)
        if method == "drop":
            columns = None
            for keyword in node.keywords:
                if keyword.arg == "columns":
                    columns = self._eval(keyword.value).payload
            if isinstance(columns, list):
                names = [
                    v.payload if isinstance(v, AnalyzedValue) else v
                    for v in columns
                ]
                project = self.graph.add(
                    "ra.project", [base.payload], drop=[str(n) for n in names]
                )
                self.sink_node = project.id
                return AnalyzedValue("dataframe", project.id)
        # Unknown dataframe method -> UDF over the frame.
        udf = self.graph.add(
            "udf.python",
            [base.payload],
            source=f".{method}(...)",
            name=f"udf_{self.result.udf_count}",
        )
        self.result.udf_count += 1
        self.sink_node = udf.id
        return AnalyzedValue("dataframe", udf.id)

    def _eval_subscript(self, node: ast.Subscript) -> AnalyzedValue:
        base = self._eval(node.value)
        if base.kind != "dataframe":
            return AnalyzedValue("unknown")
        index = self._eval(node.slice)
        payload = index.payload
        # df[predicate] -> filter
        if isinstance(payload, Expression) and index.inferred_type == "predicate":
            filter_node = self.graph.add(
                "ra.filter", [base.payload], predicate=payload
            )
            self.sink_node = filter_node.id
            return AnalyzedValue("dataframe", filter_node.id)
        # df[['a', 'b']] -> project
        if isinstance(payload, list):
            names = [
                v.payload if isinstance(v, AnalyzedValue) else v for v in payload
            ]
            if all(isinstance(n, str) for n in names):
                project = self.graph.add(
                    "ra.project",
                    [base.payload],
                    items=[(ColumnRef(n), n) for n in names],
                )
                self.sink_node = project.id
                return AnalyzedValue("dataframe", project.id)
        # df['a'] -> column reference
        if isinstance(payload, str):
            return AnalyzedValue("literal", ColumnRef(payload), "column")
        return AnalyzedValue("unknown")

    @staticmethod
    def _callee_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            parts = []
            current: ast.expr = func
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                parts.append(current.id)
                return ".".join(reversed(parts))
        return None

    def _construct(self, entry, node: ast.Call):
        """Structurally rebuild a known estimator from its literal args."""
        args = [self._literal(self._eval(a)) for a in node.args]
        kwargs = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                return None
            kwargs[keyword.arg] = self._literal(self._eval(keyword.value))
        if any(a is _UNRESOLVED for a in args) or any(
            v is _UNRESOLVED for v in kwargs.values()
        ):
            return None
        try:
            return entry.constructor(*args, **kwargs)
        except Exception:
            return None

    def _literal(self, value: AnalyzedValue):
        if value.kind == "estimator":
            return value.payload
        if value.kind == "literal":
            payload = value.payload
            if isinstance(payload, list):
                resolved = [self._literal(v) if isinstance(v, AnalyzedValue) else v for v in payload]
                if any(v is _UNRESOLVED for v in resolved):
                    return _UNRESOLVED
                # Pipeline steps arrive as [ [name, estimator], ... ] lists.
                if all(isinstance(v, list) and len(v) in (2, 3) for v in resolved):
                    return [tuple(v) for v in resolved]
                return resolved
            return payload
        return _UNRESOLVED


_UNRESOLVED = object()
