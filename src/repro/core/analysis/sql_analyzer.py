"""SQL -> unified IR (the straightforward half of static analysis, §3.2).

Lowers a bound logical plan onto the IR. ``Predict`` nodes are resolved
against the model catalog: ``ml.pipeline`` models become ``mld.pipeline``
IR nodes carrying the fitted pipeline object; ``tensor.graph`` models
become ``la.tensor_graph`` nodes; ``python.script`` models are sent through
the Python static analyzer first, and fall back to ``udf.python`` when it
cannot translate them.
"""

from __future__ import annotations

from repro.errors import StaticAnalysisError
from repro.core.analysis.python_analyzer import PythonStaticAnalyzer
from repro.core.ir.graph import IRGraph
from repro.relational.algebra import logical
from repro.relational.database import Database
from repro.relational.table import Table


class SQLAnalyzer:
    """Builds IR graphs from SQL text or bound logical plans."""

    def __init__(self, database: Database):
        self._database = database
        self._python = PythonStaticAnalyzer()

    def analyze(self, sql: str, data: dict[str, Table] | None = None) -> IRGraph:
        """Parse + bind + lower an inference query to the unified IR."""
        plan = self._database.bind(sql, data)
        return self.from_logical(plan)

    def from_logical(self, plan: logical.LogicalOp) -> IRGraph:
        graph = IRGraph()
        sink = self._lower(plan, graph)
        graph.set_output(sink)
        graph.validate()
        return graph

    # -- lowering -------------------------------------------------------------

    def _lower(self, op: logical.LogicalOp, graph: IRGraph) -> int:
        if isinstance(op, logical.Scan):
            node = graph.add(
                "ra.scan",
                [],
                table=op.table_name,
                alias=op.alias,
                schema=op.schema,
            )
            return node.id
        if isinstance(op, logical.InlineTable):
            node = graph.add(
                "ra.inline_table",
                [],
                table_value=op.table,
                alias=op.alias,
                source_name=op.source_name,
            )
            return node.id
        if isinstance(op, logical.Filter):
            child = self._lower(op.child, graph)
            return graph.add("ra.filter", [child], predicate=op.predicate).id
        if isinstance(op, logical.Project):
            child = self._lower(op.child, graph)
            return graph.add("ra.project", [child], items=list(op.items)).id
        if isinstance(op, logical.Join):
            left = self._lower(op.left, graph)
            right = self._lower(op.right, graph)
            return graph.add(
                "ra.join", [left, right], kind=op.kind, condition=op.condition
            ).id
        if isinstance(op, logical.Aggregate):
            child = self._lower(op.child, graph)
            return graph.add(
                "ra.aggregate",
                [child],
                group_by=list(op.group_by),
                aggregates=list(op.aggregates),
            ).id
        if isinstance(op, logical.OrderBy):
            child = self._lower(op.child, graph)
            return graph.add("ra.order_by", [child], keys=list(op.keys)).id
        if isinstance(op, logical.Limit):
            child = self._lower(op.child, graph)
            return graph.add("ra.limit", [child], count=op.count).id
        if isinstance(op, logical.Distinct):
            child = self._lower(op.child, graph)
            return graph.add("ra.distinct", [child]).id
        if isinstance(op, logical.UnionAll):
            branches = [self._lower(b, graph) for b in op.branches]
            return graph.add("ra.union_all", branches).id
        if isinstance(op, logical.Predict):
            return self._lower_predict(op, graph)
        raise StaticAnalysisError(
            f"cannot lower logical op {type(op).__name__} to IR"
        )

    def _lower_predict(self, op: logical.Predict, graph: IRGraph) -> int:
        child = self._lower(op.child, graph)
        entry = self._database.get_model(op.model_ref)
        common = dict(
            model_ref=entry.qualified_name,
            output_columns=tuple(op.output_columns),
            alias=op.alias,
            feature_names=entry.metadata.get("feature_names"),
        )
        if entry.flavor == "ml.pipeline":
            return graph.add(
                "mld.pipeline", [child], pipeline=entry.payload, **common
            ).id
        if entry.flavor == "tensor.graph":
            return graph.add(
                "la.tensor_graph",
                [child],
                graph=entry.payload,
                device="cpu",
                **common,
            ).id
        if entry.flavor == "python.script":
            source = str(entry.payload)
            try:
                pipeline = self._python.extract_pipeline(source)
            except StaticAnalysisError:
                pipeline = None
            if pipeline is not None and _is_fitted(pipeline):
                return graph.add(
                    "mld.pipeline", [child], pipeline=pipeline, **common
                ).id
            # Untranslatable or unfitted: out-of-process UDF execution.
            return graph.add(
                "udf.python",
                [child],
                source=source,
                name=entry.qualified_name,
                **common,
            ).id
        raise StaticAnalysisError(
            f"unknown model flavor {entry.flavor!r} for {entry.name!r}"
        )


def _is_fitted(pipeline) -> bool:
    """Best-effort check that a reconstructed pipeline carries weights."""
    estimator = getattr(pipeline, "final_estimator", pipeline)
    for attr in ("tree_", "coef_", "coefs_", "estimators_", "cluster_centers_"):
        if getattr(estimator, attr, None) is not None:
            return True
    return False
