"""Simple type inference for analyzed scripts (paper §3.2).

Dynamically typed scripts give every variable a *set* of possible types;
the lattice here tracks those sets and lets SQL-side schema knowledge
narrow them ("we plan to use knowledge from the SQL part to improve type
inference"). :func:`narrow_with_schema` implements exactly that: a column
reference whose table schema is known collapses to a single type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.types import DataType, Schema

PRIMITIVE_TYPES = frozenset({"bool", "int", "float", "str", "bytes"})
CONTAINER_TYPES = frozenset({"list", "dict", "tuple", "dataframe", "ndarray"})
ALL_TYPES = PRIMITIVE_TYPES | CONTAINER_TYPES | {"estimator", "none"}

_DATATYPE_NAMES = {
    DataType.BOOL: "bool",
    DataType.INT: "int",
    DataType.FLOAT: "float",
    DataType.STRING: "str",
    DataType.BINARY: "bytes",
}


@dataclass(frozen=True)
class TypeSet:
    """A set of possible runtime types for one variable.

    The lattice is the powerset of :data:`ALL_TYPES`: bottom is the empty
    set (contradiction), top is everything (unknown).
    """

    types: frozenset[str] = field(default_factory=lambda: frozenset(ALL_TYPES))

    @classmethod
    def exactly(cls, *names: str) -> "TypeSet":
        unknown = set(names) - ALL_TYPES
        if unknown:
            raise ValueError(f"unknown type names {sorted(unknown)}")
        return cls(frozenset(names))

    @classmethod
    def unknown(cls) -> "TypeSet":
        return cls()

    @property
    def is_unknown(self) -> bool:
        return self.types == ALL_TYPES

    @property
    def is_contradiction(self) -> bool:
        return not self.types

    @property
    def is_exact(self) -> bool:
        return len(self.types) == 1

    def join(self, other: "TypeSet") -> "TypeSet":
        """Union — control-flow merge points."""
        return TypeSet(self.types | other.types)

    def meet(self, other: "TypeSet") -> "TypeSet":
        """Intersection — applying additional evidence."""
        return TypeSet(self.types & other.types)

    def is_numeric(self) -> bool:
        return bool(self.types) and self.types <= {"bool", "int", "float"}

    def __repr__(self) -> str:
        if self.is_unknown:
            return "TypeSet(?)"
        return f"TypeSet({'|'.join(sorted(self.types))})"


def infer_literal(value: object) -> TypeSet:
    """Type of a Python literal."""
    if value is None:
        return TypeSet.exactly("none")
    name = type(value).__name__
    if name in ALL_TYPES:
        return TypeSet.exactly(name)
    return TypeSet.unknown()


def infer_binop(left: TypeSet, right: TypeSet, op: str) -> TypeSet:
    """Result type of an arithmetic/comparison op on two TypeSets."""
    if op in ("==", "!=", "<", "<=", ">", ">=", "and", "or", "not"):
        return TypeSet.exactly("bool")
    if op == "/":
        return TypeSet.exactly("float")
    if left.is_numeric() and right.is_numeric():
        if "float" in left.types or "float" in right.types:
            return TypeSet.exactly("float")
        return TypeSet.exactly("int")
    if left.types == {"str"} and right.types == {"str"} and op == "+":
        return TypeSet.exactly("str")
    return TypeSet.unknown()


def narrow_with_schema(
    variable_types: dict[str, TypeSet],
    column_bindings: dict[str, tuple[str, str]],
    schemas: dict[str, Schema],
) -> dict[str, TypeSet]:
    """Use SQL schema knowledge to narrow script variable types.

    ``column_bindings`` maps a script variable to ``(table, column)``;
    any binding whose table schema is known narrows that variable's
    TypeSet by intersection.
    """
    narrowed = dict(variable_types)
    for variable, (table, column) in column_bindings.items():
        schema = schemas.get(table)
        if schema is None or column not in schema:
            continue
        dtype = schema.dtype_of(column)
        evidence = TypeSet.exactly(_DATATYPE_NAMES[dtype])
        current = narrowed.get(variable, TypeSet.unknown())
        narrowed[variable] = current.meet(evidence)
    return narrowed
