"""Model-level rewrite machinery for the cross-optimizer.

The §4 optimizations all reduce to a handful of transformations on fitted
model pipelines:

* **fact propagation** — push ``column = value`` / interval facts from SQL
  predicates forward through featurizers onto the model's feature space
  (:func:`propagate_facts`),
* **tree pruning** — remove branches the facts make unreachable
  (:func:`prune_tree`),
* **constant folding in linear/NN models** — fold known-constant features
  into intercepts/biases (:func:`fold_linear_constants`,
  :func:`fold_mlp_constants`),
* **feature restriction** — rebuild a featurizer chain so it consumes only
  a subset of the original input columns and emits only the surviving
  features (:func:`restrict_transformer`),
* **SQL expression synthesis** — express featurizers and tree/linear models
  as scalar SQL expressions for model inlining
  (:func:`pipeline_feature_expressions`, :func:`tree_to_case_expression`).

Everything here is pure: inputs are never mutated, outputs are new objects.
The IR rules in :mod:`repro.core.optimizer.rules` are thin drivers over
these functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import OptimizerError
from repro.ml.ensemble import (
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.ml.neural import MLPClassifier, MLPRegressor
from repro.ml.pipeline import ColumnTransformer, FeatureUnion, Pipeline
from repro.ml.preprocessing import (
    Binarizer,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
)
from repro.ml.tree import (
    LEAF,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    TreeStructure,
)
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    Expression,
    col,
    lit,
)

LINEAR_MODELS = (LinearRegression, Ridge, Lasso, LogisticRegression)
TREE_MODELS = (DecisionTreeClassifier, DecisionTreeRegressor)
FOREST_MODELS = (RandomForestClassifier, RandomForestRegressor)


class UnsupportedRewrite(OptimizerError):
    """Raised when a pipeline shape is outside the analyzable fragment.

    Rules catch this and leave the plan unchanged (the paper's UDF-style
    "give up gracefully" behaviour).
    """


@dataclass
class ColumnFacts:
    """Known per-column information derived from predicates or statistics.

    Keys are column indices in the space the facts currently live in
    (original inputs, or a transformer's output features after
    propagation). ``constants`` dominates ``bounds`` when both present.
    """

    constants: dict[int, float] = field(default_factory=dict)
    bounds: dict[int, tuple[float, float]] = field(default_factory=dict)

    def interval(self, index: int) -> tuple[float, float]:
        if index in self.constants:
            value = self.constants[index]
            return (value, value)
        return self.bounds.get(index, (-math.inf, math.inf))

    @property
    def empty(self) -> bool:
        return not self.constants and not self.bounds


# ---------------------------------------------------------------------------
# Fact propagation through featurizers
# ---------------------------------------------------------------------------


def transformer_width(transformer, n_in: int) -> int:
    """Number of output features a fitted transformer produces."""
    width = getattr(transformer, "n_features_out_", None)
    if width is not None:
        return int(width)
    return n_in


def propagate_facts(transformer, facts: ColumnFacts, n_in: int) -> ColumnFacts:
    """Translate input-space facts into the transformer's output space."""
    if isinstance(transformer, (StandardScaler, MinMaxScaler)):
        if isinstance(transformer, StandardScaler):
            shift, scale = transformer.mean_, transformer.scale_
        else:
            shift, scale = transformer.min_, transformer.range_
        out = ColumnFacts()
        for j, value in facts.constants.items():
            out.constants[j] = (value - shift[j]) / scale[j]
        for j, (low, high) in facts.bounds.items():
            out.bounds[j] = ((low - shift[j]) / scale[j], (high - shift[j]) / scale[j])
        return out
    if isinstance(transformer, Binarizer):
        out = ColumnFacts()
        threshold = transformer.threshold
        for j in range(n_in):
            low, high = facts.interval(j)
            if low > threshold:
                out.constants[j] = 1.0
            elif high <= threshold:
                out.constants[j] = 0.0
        return out
    if isinstance(transformer, OneHotEncoder):
        out = ColumnFacts()
        offset = 0
        for j, categories in enumerate(transformer.categories_):
            low, high = facts.interval(j)
            constant = facts.constants.get(j)
            for k, category in enumerate(categories):
                position = offset + k
                if constant is not None:
                    out.constants[position] = float(category == constant)
                elif category < low or category > high:
                    out.constants[position] = 0.0
                else:
                    out.bounds[position] = (0.0, 1.0)
            offset += len(categories)
        return out
    if isinstance(transformer, FeatureUnion):
        out = ColumnFacts()
        offset = 0
        for _, sub in transformer.transformer_list:
            sub_facts = propagate_facts(sub, facts, n_in)
            width = transformer_width(sub, n_in)
            for j, value in sub_facts.constants.items():
                out.constants[offset + j] = value
            for j, interval in sub_facts.bounds.items():
                out.bounds[offset + j] = interval
            offset += width
        return out
    if isinstance(transformer, ColumnTransformer):
        out = ColumnFacts()
        offset = 0
        for _, sub, columns in transformer.transformers:
            local = ColumnFacts(
                constants={
                    i: facts.constants[c]
                    for i, c in enumerate(columns)
                    if c in facts.constants
                },
                bounds={
                    i: facts.bounds[c]
                    for i, c in enumerate(columns)
                    if c in facts.bounds
                },
            )
            sub_facts = propagate_facts(sub, local, len(columns))
            width = transformer_width(sub, len(columns))
            for j, value in sub_facts.constants.items():
                out.constants[offset + j] = value
            for j, interval in sub_facts.bounds.items():
                out.bounds[offset + j] = interval
            offset += width
        if transformer.remainder == "passthrough":
            for i, c in enumerate(transformer._remainder_columns()):
                if c in facts.constants:
                    out.constants[offset + i] = facts.constants[c]
                elif c in facts.bounds:
                    out.bounds[offset + i] = facts.bounds[c]
        return out
    raise UnsupportedRewrite(
        f"cannot propagate facts through {type(transformer).__name__}"
    )


def output_sources(transformer, n_in: int) -> list[list[int]]:
    """For each output feature, the input column indices it depends on."""
    if isinstance(transformer, (StandardScaler, MinMaxScaler, Binarizer)):
        return [[j] for j in range(n_in)]
    if isinstance(transformer, OneHotEncoder):
        sources: list[list[int]] = []
        for j, categories in enumerate(transformer.categories_):
            sources.extend([[j]] * len(categories))
        return sources
    if isinstance(transformer, FeatureUnion):
        sources = []
        for _, sub in transformer.transformer_list:
            sources.extend(output_sources(sub, n_in))
        return sources
    if isinstance(transformer, ColumnTransformer):
        sources = []
        for _, sub, columns in transformer.transformers:
            for local in output_sources(sub, len(columns)):
                sources.append([columns[i] for i in local])
        if transformer.remainder == "passthrough":
            sources.extend([[c] for c in transformer._remainder_columns()])
        return sources
    raise UnsupportedRewrite(
        f"cannot trace features through {type(transformer).__name__}"
    )


# ---------------------------------------------------------------------------
# Feature restriction (rebuild transformers on a column subset)
# ---------------------------------------------------------------------------


def restrict_transformer(transformer, keep_out: list[int], n_in: int):
    """Rebuild ``transformer`` to emit only the ``keep_out`` features.

    Returns ``(new_transformer, needed_inputs)`` where ``needed_inputs``
    is the sorted list of original input columns the new transformer
    consumes. The new transformer expects its input columns in
    ``needed_inputs`` order and emits kept features in ascending original
    position order.
    """
    keep_out = sorted(set(keep_out))
    if isinstance(transformer, (StandardScaler, MinMaxScaler)):
        needed = keep_out  # width-preserving: outputs are inputs
        new = type(transformer)()
        if isinstance(transformer, StandardScaler):
            new.mean_ = transformer.mean_[needed].copy()
            new.scale_ = transformer.scale_[needed].copy()
        else:
            new.min_ = transformer.min_[needed].copy()
            new.range_ = transformer.range_[needed].copy()
        return new, list(needed)
    if isinstance(transformer, Binarizer):
        new = Binarizer(threshold=transformer.threshold)
        new.n_features_ = len(keep_out)
        return new, list(keep_out)
    if isinstance(transformer, OneHotEncoder):
        slices = transformer.output_slices()
        per_input: dict[int, list[float]] = {}
        for out in keep_out:
            for j, block in enumerate(slices):
                if block.start <= out < block.stop:
                    category = transformer.categories_[j][out - block.start]
                    per_input.setdefault(j, []).append(float(category))
                    break
        needed = sorted(per_input)
        new = OneHotEncoder(handle_unknown=transformer.handle_unknown)
        new.categories_ = [np.asarray(per_input[j]) for j in needed]
        return new, needed
    if isinstance(transformer, FeatureUnion):
        # A restricted union becomes a ColumnTransformer: each branch gets
        # exactly the input columns it still needs.
        blocks = []
        offset = 0
        needed_union: set[int] = set()
        for name, sub in transformer.transformer_list:
            width = transformer_width(sub, n_in)
            local_keep = [
                out - offset for out in keep_out if offset <= out < offset + width
            ]
            if local_keep:
                new_sub, sub_needed = restrict_transformer(sub, local_keep, n_in)
                blocks.append((name, new_sub, sub_needed))
                needed_union.update(sub_needed)
            offset += width
        needed = sorted(needed_union)
        position = {column: i for i, column in enumerate(needed)}
        rebuilt = ColumnTransformer(
            [
                (name, sub, [position[c] for c in cols])
                for name, sub, cols in blocks
            ]
        )
        rebuilt.n_features_in_ = len(needed)
        return rebuilt, needed
    if isinstance(transformer, ColumnTransformer):
        blocks = []
        offset = 0
        needed_union: set[int] = set()
        for name, sub, columns in transformer.transformers:
            width = transformer_width(sub, len(columns))
            local_keep = [
                out - offset for out in keep_out if offset <= out < offset + width
            ]
            if local_keep:
                new_sub, sub_needed_local = restrict_transformer(
                    sub, local_keep, len(columns)
                )
                sub_needed = [columns[i] for i in sub_needed_local]
                blocks.append((name, new_sub, sub_needed))
                needed_union.update(sub_needed)
            offset += width
        passthrough_cols: list[int] = []
        if transformer.remainder == "passthrough":
            rest = transformer._remainder_columns()
            for i, column in enumerate(rest):
                if offset + i in keep_out:
                    passthrough_cols.append(column)
            needed_union.update(passthrough_cols)
        needed = sorted(needed_union)
        position = {column: i for i, column in enumerate(needed)}
        new_blocks = [
            (name, sub, [position[c] for c in cols]) for name, sub, cols in blocks
        ]
        if passthrough_cols:
            # Passthrough is expressed as a 1:1 scaler with identity params.
            passthrough = StandardScaler()
            passthrough.mean_ = np.zeros(len(passthrough_cols))
            passthrough.scale_ = np.ones(len(passthrough_cols))
            new_blocks.append(
                ("passthrough", passthrough, [position[c] for c in passthrough_cols])
            )
        rebuilt = ColumnTransformer(new_blocks)
        rebuilt.n_features_in_ = len(needed)
        return rebuilt, needed
    raise UnsupportedRewrite(
        f"cannot restrict {type(transformer).__name__}"
    )


# ---------------------------------------------------------------------------
# Tree pruning
# ---------------------------------------------------------------------------


def prune_tree(tree: TreeStructure, facts: ColumnFacts) -> TreeStructure:
    """Remove branches unreachable under the per-feature intervals.

    The recursion tracks a running interval per feature: at an internal
    node testing ``x[f] <= t``, if the interval proves the test always
    true (``high <= t``) only the left child survives, always false
    (``low > t``) only the right; otherwise both are kept with tightened
    intervals.
    """
    left: list[int] = []
    right: list[int] = []
    feature: list[int] = []
    threshold: list[float] = []
    value: list[np.ndarray] = []
    samples: list[int] = []

    def emit_leaf_like(source: int) -> int:
        left.append(LEAF)
        right.append(LEAF)
        feature.append(LEAF)
        threshold.append(0.0)
        value.append(tree.value[source].copy())
        samples.append(
            0 if tree.n_node_samples is None else int(tree.n_node_samples[source])
        )
        return len(left) - 1

    def copy_subtree(node: int, intervals: dict[int, tuple[float, float]]) -> int:
        if tree.is_leaf(node):
            return emit_leaf_like(node)
        f = int(tree.feature[node])
        t = float(tree.threshold[node])
        low, high = intervals.get(f, facts.interval(f))
        if high <= t:
            return copy_subtree(int(tree.children_left[node]), intervals)
        if low > t:
            return copy_subtree(int(tree.children_right[node]), intervals)
        index = emit_leaf_like(node)
        left_intervals = dict(intervals)
        left_intervals[f] = (low, min(high, t))
        right_intervals = dict(intervals)
        # Right branch means x > t; representable as an open bound — use t
        # with the strict comparison handled by the low > t check above.
        right_intervals[f] = (max(low, np.nextafter(t, math.inf)), high)
        left_child = copy_subtree(int(tree.children_left[node]), left_intervals)
        right_child = copy_subtree(int(tree.children_right[node]), right_intervals)
        feature[index] = f
        threshold[index] = t
        left[index] = left_child
        right[index] = right_child
        value[index] = tree.value[node].copy()
        return index

    initial = {
        f: facts.interval(f)
        for f in set(facts.constants) | set(facts.bounds)
    }
    copy_subtree(0, initial)
    return TreeStructure(
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.asarray(feature, dtype=np.int64),
        np.asarray(threshold, dtype=np.float64),
        np.vstack(value),
        np.asarray(samples, dtype=np.int64),
    )


def remap_tree_features(tree: TreeStructure, mapping: dict[int, int]) -> TreeStructure:
    """Renumber feature indices after columns were dropped."""
    new = tree.copy()
    for i in range(new.node_count):
        if new.feature[i] != LEAF:
            new.feature[i] = mapping[int(new.feature[i])]
    return new


# ---------------------------------------------------------------------------
# Constant folding in linear models and MLPs
# ---------------------------------------------------------------------------


def fold_linear_constants(model, constants: dict[int, float]):
    """Fold known-constant features into the intercept; drop them.

    Returns ``(new_model, kept_feature_indices)``.
    """
    coef = model.coef_
    kept = [j for j in range(len(coef)) if j not in constants]
    folded = float(sum(coef[j] * value for j, value in constants.items()))
    new = model.clone()
    new.coef_ = coef[kept].copy()
    new.intercept_ = float(model.intercept_) + folded
    if isinstance(model, LogisticRegression):
        new.classes_ = model.classes_.copy()
    return new, kept


def fold_mlp_constants(model, constants: dict[int, float]):
    """Fold constant input features into the first-layer bias; drop rows."""
    first = model.coefs_[0]
    kept = [j for j in range(first.shape[0]) if j not in constants]
    bias_shift = np.zeros(first.shape[1])
    for j, value in constants.items():
        bias_shift += first[j] * value
    new = model.clone()
    new.coefs_ = [first[kept].copy()] + [w.copy() for w in model.coefs_[1:]]
    new.intercepts_ = [model.intercepts_[0] + bias_shift] + [
        b.copy() for b in model.intercepts_[1:]
    ]
    if isinstance(model, MLPClassifier):
        new.classes_ = model.classes_.copy()
    return new, kept


def zero_weight_features(model, tolerance: float = 0.0) -> list[int]:
    """Feature indices whose weight magnitude is <= tolerance.

    ``tolerance > 0`` gives the paper's "lossy model-projection pushdown"
    variant (small-but-nonzero weights dropped).
    """
    coef = np.abs(model.coef_)
    return [int(j) for j in np.nonzero(coef <= tolerance)[0]]


def drop_linear_features(model, drop: list[int]):
    """Drop features from a linear model (weights must be ~zero or the
    caller must have folded their contribution)."""
    kept = [j for j in range(len(model.coef_)) if j not in set(drop)]
    new = model.clone()
    new.coef_ = model.coef_[kept].copy()
    new.intercept_ = float(model.intercept_)
    if isinstance(model, LogisticRegression):
        new.classes_ = model.classes_.copy()
    return new, kept


# ---------------------------------------------------------------------------
# Pipeline-level drivers
# ---------------------------------------------------------------------------


def split_pipeline(pipeline) -> tuple[list, object]:
    """Split into (featurizer steps, final predictor)."""
    if isinstance(pipeline, Pipeline):
        return [step for _, step in pipeline.steps[:-1]], pipeline.final_estimator
    return [], pipeline


def pipeline_input_width(pipeline) -> int:
    """Number of original input columns the pipeline consumes."""
    transformers, predictor = split_pipeline(pipeline)
    if transformers:
        first = transformers[0]
        if isinstance(first, (StandardScaler, MinMaxScaler)):
            return len(first.mean_ if isinstance(first, StandardScaler) else first.min_)
        if isinstance(first, Binarizer):
            return int(first.n_features_)
        if isinstance(first, OneHotEncoder):
            return len(first.categories_)
        if isinstance(first, ColumnTransformer):
            return int(first.n_features_in_)
        if isinstance(first, FeatureUnion):
            # All branches see the same input; ask any analyzable one.
            for _, sub in first.transformer_list:
                try:
                    return pipeline_input_width(sub)
                except UnsupportedRewrite:
                    continue
            raise UnsupportedRewrite("cannot size FeatureUnion input")
        raise UnsupportedRewrite(
            f"cannot size input of {type(first).__name__}"
        )
    width = getattr(predictor, "n_features_in_", None)
    if width is None:
        coef = getattr(predictor, "coef_", None)
        if coef is not None:
            return len(coef)
        coefs = getattr(predictor, "coefs_", None)
        if coefs:
            return coefs[0].shape[0]
        raise UnsupportedRewrite("cannot determine pipeline input width")
    return int(width)


def predictor_used_features(predictor) -> set[int] | None:
    """Feature indices the predictor actually reads; None = all."""
    if isinstance(predictor, TREE_MODELS):
        return predictor.tree_.used_features()
    if isinstance(predictor, FOREST_MODELS):
        used: set[int] = set()
        for tree in predictor.estimators_:
            used |= tree.tree_.used_features()
        return used
    if isinstance(predictor, GradientBoostingRegressor):
        used = set()
        for tree in predictor.estimators_:
            used |= tree.tree_.used_features()
        return used
    if isinstance(predictor, LINEAR_MODELS):
        return {int(j) for j in np.nonzero(predictor.coef_ != 0.0)[0]}
    return None  # MLPs and unknown models use everything


@dataclass
class RewriteResult:
    """Outcome of a pipeline rewrite.

    ``kept_inputs`` indexes into the *original* input columns; callers
    translate to column names via the node's ``feature_names``.
    """

    pipeline: object
    kept_inputs: list[int]
    detail: dict = field(default_factory=dict)

    def changed(self, original_width: int) -> bool:
        return len(self.kept_inputs) < original_width or bool(self.detail)


def _rebuild_pipeline(
    transformers: list,
    predictor,
    used_final: set[int] | None,
    n_in: int,
) -> RewriteResult:
    """Restrict featurizers to the final features in ``used_final`` and
    remap the predictor accordingly; None means keep everything."""
    widths = [n_in]
    for transformer in transformers:
        widths.append(transformer_width(transformer, widths[-1]))
    final_width = widths[-1]
    if used_final is None:
        used_final = set(range(final_width))
    keep = sorted(used_final)
    new_transformers: list = []
    current_keep = keep
    # Walk featurizers backwards, restricting each to what downstream needs.
    for index in range(len(transformers) - 1, -1, -1):
        transformer = transformers[index]
        new_transformer, needed_in = restrict_transformer(
            transformer, current_keep, widths[index]
        )
        new_transformers.insert(0, new_transformer)
        current_keep = needed_in
    kept_inputs = list(current_keep)
    # Remap predictor feature indices onto the kept-final layout.
    position = {original: i for i, original in enumerate(keep)}
    new_predictor = _remap_predictor(predictor, position, len(keep))
    steps = [(f"step_{i}", t) for i, t in enumerate(new_transformers)]
    steps.append(("predictor", new_predictor))
    if new_transformers:
        rebuilt = Pipeline(steps)
    else:
        rebuilt = Pipeline([("predictor", new_predictor)])
    return RewriteResult(rebuilt, kept_inputs)


def _remap_predictor(predictor, position: dict[int, int], new_width: int):
    if isinstance(predictor, TREE_MODELS):
        new = predictor.clone()
        new.tree_ = remap_tree_features(predictor.tree_, position)
        new.n_features_in_ = new_width
        if isinstance(predictor, DecisionTreeClassifier):
            new.classes_ = predictor.classes_.copy()
        return new
    if isinstance(predictor, FOREST_MODELS):
        new = predictor.clone()
        new.estimators_ = [
            _remap_predictor(t, position, new_width) for t in predictor.estimators_
        ]
        new.n_features_in_ = new_width
        if isinstance(predictor, RandomForestClassifier):
            new.classes_ = predictor.classes_.copy()
        return new
    if isinstance(predictor, GradientBoostingRegressor):
        new = predictor.clone()
        new.estimators_ = [
            _remap_predictor(t, position, new_width) for t in predictor.estimators_
        ]
        new.init_ = predictor.init_
        return new
    if isinstance(predictor, LINEAR_MODELS):
        inverse = sorted(position, key=position.get)
        new = predictor.clone()
        new.coef_ = predictor.coef_[inverse].copy()
        new.intercept_ = float(predictor.intercept_)
        if isinstance(predictor, LogisticRegression):
            new.classes_ = predictor.classes_.copy()
        return new
    if isinstance(predictor, (MLPClassifier, MLPRegressor)):
        inverse = sorted(position, key=position.get)
        new = predictor.clone()
        new.coefs_ = [predictor.coefs_[0][inverse].copy()] + [
            w.copy() for w in predictor.coefs_[1:]
        ]
        new.intercepts_ = [b.copy() for b in predictor.intercepts_]
        if isinstance(predictor, MLPClassifier):
            new.classes_ = predictor.classes_.copy()
        return new
    raise UnsupportedRewrite(
        f"cannot remap features of {type(predictor).__name__}"
    )


def apply_predicate_pruning(pipeline, facts: ColumnFacts) -> RewriteResult:
    """The §4.1 predicate-based model pruning rewrite, end to end.

    ``facts`` lives in the pipeline's original input-column space. The
    result is a new pipeline that (a) has tree branches/one-hot features
    the facts rule out removed, (b) has known-constant features folded
    away, and (c) reads only the input columns still needed.
    """
    transformers, predictor = split_pipeline(pipeline)
    n_in = pipeline_input_width(pipeline)
    current = facts
    width = n_in
    for transformer in transformers:
        current = propagate_facts(transformer, current, width)
        width = transformer_width(transformer, width)
    detail: dict = {}
    if isinstance(predictor, TREE_MODELS):
        pruned_tree = prune_tree(predictor.tree_, current)
        detail["nodes_before"] = predictor.tree_.node_count
        detail["nodes_after"] = pruned_tree.node_count
        new_predictor = predictor.clone()
        new_predictor.tree_ = pruned_tree
        new_predictor.n_features_in_ = predictor.n_features_in_
        if isinstance(predictor, DecisionTreeClassifier):
            new_predictor.classes_ = predictor.classes_.copy()
        used = pruned_tree.used_features()
    elif isinstance(predictor, FOREST_MODELS + (GradientBoostingRegressor,)):
        new_predictor = predictor.clone()
        nodes_before = nodes_after = 0
        new_trees = []
        for tree in predictor.estimators_:
            pruned = prune_tree(tree.tree_, current)
            nodes_before += tree.tree_.node_count
            nodes_after += pruned.node_count
            new_tree = tree.clone()
            new_tree.tree_ = pruned
            new_tree.n_features_in_ = tree.n_features_in_
            if isinstance(tree, DecisionTreeClassifier):
                new_tree.classes_ = tree.classes_.copy()
            new_trees.append(new_tree)
        new_predictor.estimators_ = new_trees
        new_predictor.n_features_in_ = getattr(predictor, "n_features_in_", None)
        if isinstance(predictor, RandomForestClassifier):
            new_predictor.classes_ = predictor.classes_.copy()
        if isinstance(predictor, GradientBoostingRegressor):
            new_predictor.init_ = predictor.init_
        detail["nodes_before"] = nodes_before
        detail["nodes_after"] = nodes_after
        used = set()
        for tree in new_trees:
            used |= tree.tree_.used_features()
    elif isinstance(predictor, LINEAR_MODELS):
        constants = {
            j: value
            for j, value in current.constants.items()
            if j < len(predictor.coef_)
        }
        new_predictor, kept = fold_linear_constants(predictor, constants)
        detail["features_folded"] = len(constants)
        # kept indexes original features; translate to a used set.
        used = set(kept)
        # Remap happens in _rebuild via position map; here predictor
        # already dropped columns, so rebuild against kept directly.
        result = _rebuild_pipeline(transformers, predictor, used, n_in)
        # Replace the remapped predictor with the folded one (same layout).
        result.pipeline.steps[-1] = ("predictor", new_predictor)
        result.detail = detail
        return result
    elif isinstance(predictor, (MLPClassifier, MLPRegressor)):
        constants = {
            j: value
            for j, value in current.constants.items()
            if j < predictor.coefs_[0].shape[0]
        }
        new_predictor, kept = fold_mlp_constants(predictor, constants)
        detail["features_folded"] = len(constants)
        used = set(kept)
        result = _rebuild_pipeline(transformers, predictor, used, n_in)
        result.pipeline.steps[-1] = ("predictor", new_predictor)
        result.detail = detail
        return result
    else:
        raise UnsupportedRewrite(
            f"cannot prune predictor {type(predictor).__name__}"
        )
    result = _rebuild_pipeline(transformers, new_predictor, used, n_in)
    result.detail = detail
    return result


def apply_projection_pushdown(
    pipeline, tolerance: float = 0.0
) -> RewriteResult:
    """The §4.1 model-projection pushdown rewrite.

    Drops features the model provably ignores: exactly-zero linear weights
    (or ``<= tolerance`` for the lossy variant) and features no tree in an
    ensemble tests. Returns the narrowed pipeline plus the surviving
    original input columns.
    """
    transformers, predictor = split_pipeline(pipeline)
    n_in = pipeline_input_width(pipeline)
    if isinstance(predictor, LINEAR_MODELS):
        dead = zero_weight_features(predictor, tolerance)
        used = {j for j in range(len(predictor.coef_)) if j not in set(dead)}
        detail = {"features_dropped": len(dead)}
    else:
        used_or_none = predictor_used_features(predictor)
        if used_or_none is None:
            raise UnsupportedRewrite(
                f"{type(predictor).__name__} exposes no unused features"
            )
        used = used_or_none
        widths = [n_in]
        for transformer in transformers:
            widths.append(transformer_width(transformer, widths[-1]))
        detail = {"features_dropped": widths[-1] - len(used)}
    result = _rebuild_pipeline(transformers, predictor, used, n_in)
    if isinstance(predictor, LINEAR_MODELS) and tolerance > 0.0:
        # Lossy variant: zero out the small weights we dropped.
        final = result.pipeline.final_estimator
        final.coef_ = np.where(
            np.abs(final.coef_) <= tolerance, 0.0, final.coef_
        )
    result.detail = detail
    return result


# ---------------------------------------------------------------------------
# SQL inlining (MLD -> RA)
# ---------------------------------------------------------------------------


def pipeline_feature_expressions(
    pipeline, column_names: list[str]
) -> list[Expression]:
    """A SQL scalar expression per final feature of the featurizer chain."""
    transformers, _ = split_pipeline(pipeline)
    expressions: list[Expression] = [col(name) for name in column_names]
    for transformer in transformers:
        expressions = _transform_expressions(transformer, expressions)
    return expressions


def _transform_expressions(transformer, inputs: list[Expression]) -> list[Expression]:
    if isinstance(transformer, StandardScaler):
        return [
            BinaryOp(
                "/",
                BinaryOp("-", expr, lit(float(transformer.mean_[j]))),
                lit(float(transformer.scale_[j])),
            )
            for j, expr in enumerate(inputs)
        ]
    if isinstance(transformer, MinMaxScaler):
        return [
            BinaryOp(
                "/",
                BinaryOp("-", expr, lit(float(transformer.min_[j]))),
                lit(float(transformer.range_[j])),
            )
            for j, expr in enumerate(inputs)
        ]
    if isinstance(transformer, Binarizer):
        return [
            CaseWhen(
                ((BinaryOp(">", expr, lit(float(transformer.threshold))), lit(1.0)),),
                lit(0.0),
            )
            for expr in inputs
        ]
    if isinstance(transformer, OneHotEncoder):
        out: list[Expression] = []
        for j, categories in enumerate(transformer.categories_):
            for category in categories:
                out.append(
                    CaseWhen(
                        ((BinaryOp("=", inputs[j], lit(float(category))), lit(1.0)),),
                        lit(0.0),
                    )
                )
        return out
    if isinstance(transformer, FeatureUnion):
        out = []
        for _, sub in transformer.transformer_list:
            out.extend(_transform_expressions(sub, inputs))
        return out
    if isinstance(transformer, ColumnTransformer):
        out = []
        for _, sub, columns in transformer.transformers:
            out.extend(_transform_expressions(sub, [inputs[c] for c in columns]))
        if transformer.remainder == "passthrough":
            out.extend(inputs[c] for c in transformer._remainder_columns())
        return out
    raise UnsupportedRewrite(
        f"cannot express {type(transformer).__name__} in SQL"
    )


def tree_to_case_expression(
    tree: TreeStructure,
    feature_expressions: list[Expression],
    leaf_output,
) -> CaseWhen:
    """Inline a tree as ``CASE WHEN <path> THEN <leaf> ...``.

    ``leaf_output(value_row)`` maps a leaf's payload to the SQL literal
    value to emit (class label for classifiers, mean for regressors).
    """
    branches: list[tuple[Expression, Expression]] = []
    leaves = tree.leaves_dfs()
    paths = tree.paths()
    for leaf, conditions in zip(leaves, paths):
        output = lit(leaf_output(tree.value[leaf]))
        if not conditions:
            return CaseWhen((), output)
        predicate: Expression | None = None
        for feature, threshold, goes_left in conditions:
            term: Expression = BinaryOp(
                "<=" if goes_left else ">",
                feature_expressions[feature],
                lit(float(threshold)),
            )
            predicate = term if predicate is None else BinaryOp("AND", predicate, term)
        branches.append((predicate, output))
    # The branches are exhaustive; the last one doubles as the default.
    last_value = branches[-1][1]
    return CaseWhen(tuple(branches[:-1]), last_value)


def predictor_to_expression(
    predictor, feature_expressions: list[Expression]
) -> Expression:
    """Inline a predictor as a scalar SQL expression over feature exprs."""
    if isinstance(predictor, DecisionTreeClassifier):
        classes = predictor.classes_

        def classify(value_row) -> float:
            return float(classes[int(np.argmax(value_row))])

        return tree_to_case_expression(
            predictor.tree_, feature_expressions, classify
        )
    if isinstance(predictor, DecisionTreeRegressor):
        return tree_to_case_expression(
            predictor.tree_, feature_expressions, lambda row: float(row[0])
        )
    if isinstance(predictor, (LinearRegression, Ridge, Lasso)):
        expr: Expression = lit(float(predictor.intercept_))
        for j, weight in enumerate(predictor.coef_):
            if weight == 0.0:
                continue
            expr = BinaryOp(
                "+", expr, BinaryOp("*", lit(float(weight)), feature_expressions[j])
            )
        return expr
    if isinstance(predictor, LogisticRegression):
        score: Expression = lit(float(predictor.intercept_))
        for j, weight in enumerate(predictor.coef_):
            if weight == 0.0:
                continue
            score = BinaryOp(
                "+", score, BinaryOp("*", lit(float(weight)), feature_expressions[j])
            )
        positive = float(predictor.classes_[1])
        negative = float(predictor.classes_[0])
        return CaseWhen(
            ((BinaryOp(">", score, lit(0.0)), lit(positive)),), lit(negative)
        )
    if isinstance(predictor, RandomForestRegressor):
        # "The same technique would work for tree ensembles" (§4.2):
        # the forest mean is the scaled sum of per-tree CASE expressions.
        total: Expression | None = None
        for tree_model in predictor.estimators_:
            branch = tree_to_case_expression(
                tree_model.tree_, feature_expressions, lambda row: float(row[0])
            )
            total = branch if total is None else BinaryOp("+", total, branch)
        assert total is not None
        return BinaryOp("/", total, lit(float(len(predictor.estimators_))))
    if isinstance(predictor, GradientBoostingRegressor):
        total = lit(float(predictor.init_))
        for tree_model in predictor.estimators_:
            branch = tree_to_case_expression(
                tree_model.tree_, feature_expressions, lambda row: float(row[0])
            )
            total = BinaryOp(
                "+",
                total,
                BinaryOp("*", lit(float(predictor.learning_rate)), branch),
            )
        return total
    if isinstance(predictor, RandomForestClassifier):
        if len(predictor.classes_) != 2:
            raise UnsupportedRewrite(
                "only binary forest classifiers inline to SQL; use NN "
                "translation for multiclass"
            )
        # Mean P(positive class) over trees, thresholded at 0.5.
        positive = predictor.classes_[1]
        total = None
        for tree_model in predictor.estimators_:
            # Position of the forest's positive class among this tree's
            # (possibly fewer, bootstrap-sampled) local classes.
            local_positions = np.nonzero(tree_model.classes_ == positive)[0]
            if len(local_positions) == 0:
                # The tree never saw the positive class: P = 0 always.
                proba: Expression = lit(0.0)
            else:
                local_col = int(local_positions[0])
                proba = tree_to_case_expression(
                    tree_model.tree_,
                    feature_expressions,
                    lambda row, c=local_col: float(row[c]),
                )
            total = proba if total is None else BinaryOp("+", total, proba)
        assert total is not None
        mean = BinaryOp("/", total, lit(float(len(predictor.estimators_))))
        return CaseWhen(
            (
                (
                    BinaryOp(">", mean, lit(0.5)),
                    lit(float(predictor.classes_[1])),
                ),
            ),
            lit(float(predictor.classes_[0])),
        )
    raise UnsupportedRewrite(
        f"cannot inline predictor {type(predictor).__name__}"
    )


def pipeline_to_expression(pipeline, column_names: list[str]) -> Expression:
    """Model inlining (§4.2): the whole pipeline as one SQL expression."""
    _, predictor = split_pipeline(pipeline)
    features = pipeline_feature_expressions(pipeline, column_names)
    return predictor_to_expression(predictor, features)
