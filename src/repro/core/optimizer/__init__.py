"""The cross-optimizer: memo engine, rules, cost model, model rewrites."""

from repro.core.optimizer.engine import (
    CostBasedOptimizer,
    HeuristicOptimizer,
    OptimizationReport,
    UnifiedOptimizer,
    default_rules,
)
from repro.core.optimizer.memo import Memo, MemoStats
from repro.core.optimizer.rule import Rule, RuleContext
from repro.core.optimizer.search import (
    MemoOptimizer,
    MemoReport,
    MemoRule,
    SearchContext,
    cross_ir_rules,
    sql_rules,
)

__all__ = [
    "CostBasedOptimizer",
    "cross_ir_rules",
    "default_rules",
    "HeuristicOptimizer",
    "Memo",
    "MemoOptimizer",
    "MemoReport",
    "MemoRule",
    "MemoStats",
    "OptimizationReport",
    "Rule",
    "RuleContext",
    "SearchContext",
    "sql_rules",
    "UnifiedOptimizer",
]
