"""The cross-optimizer: rules, engines, cost model, model rewrites."""

from repro.core.optimizer.engine import (
    CostBasedOptimizer,
    HeuristicOptimizer,
    OptimizationReport,
    default_rules,
)
from repro.core.optimizer.rule import Rule, RuleContext

__all__ = [
    "CostBasedOptimizer",
    "default_rules",
    "HeuristicOptimizer",
    "OptimizationReport",
    "Rule",
    "RuleContext",
]
