"""Predicate-based model pruning (paper §4.1, data-to-model).

Collects ``column = value`` and interval facts from every filter below a
scoring node (plus, optionally, facts *derived from data statistics* —
columns that are constant in the actual stored table), translates them into
the model's feature space, and prunes the model: tree branches removed,
one-hot categories dropped, constant features folded into
intercepts/biases.
"""

from __future__ import annotations

import math

from repro.core.ir.graph import IRGraph
from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    UnsupportedRewrite,
    apply_predicate_pruning,
)
from repro.core.optimizer.rule import Rule, RuleContext, filters_below
from repro.relational.expressions import equality_constants, range_bounds


def facts_for_node(graph: IRGraph, node, context: RuleContext) -> dict:
    """Column-name-keyed facts visible at a scoring node's input."""
    constants: dict[str, float] = {}
    bounds: dict[str, tuple[float, float]] = {}
    for filter_node in filters_below(graph, node):
        predicate = filter_node.attrs["predicate"]
        for name, value in equality_constants(predicate).items():
            if isinstance(value, (int, float)):
                constants[name.lower()] = float(value)
        for name, interval in range_bounds(predicate).items():
            low, high = bounds.get(name.lower(), (-math.inf, math.inf))
            bounds[name.lower()] = (
                max(low, interval[0]),
                min(high, interval[1]),
            )
    if context.options.get("derive_statistics_predicates"):
        for scan in (n for n in graph.walk_up(node) if n.op == "ra.scan"):
            for name, value in context.column_constants(
                scan.attrs["table"]
            ).items():
                constants.setdefault(name, value)
    return {"constants": constants, "bounds": bounds}


class PredicateBasedModelPruning(Rule):
    """Prune model pipelines using predicate (and statistics) facts."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for node in list(graph.find("mld.pipeline")):
            if node.attrs.get("pruned"):
                continue
            feature_names = node.attrs.get("feature_names")
            if not feature_names:
                continue
            named = facts_for_node(graph, node, context)
            index_of = {
                name.lower(): i for i, name in enumerate(feature_names)
            }
            facts = ColumnFacts()
            for name, value in named["constants"].items():
                if name in index_of:
                    facts.constants[index_of[name]] = value
            for name, interval in named["bounds"].items():
                if name in index_of and index_of[name] not in facts.constants:
                    facts.bounds[index_of[name]] = interval
            if facts.empty:
                continue
            try:
                result = apply_predicate_pruning(
                    node.attrs["pipeline"], facts
                )
            except UnsupportedRewrite:
                node.attrs["pruned"] = True
                continue
            node.attrs["pruned"] = True
            before = result.detail.get("nodes_before")
            after = result.detail.get("nodes_after")
            shrank_tree = before is not None and after is not None and after < before
            folded = result.detail.get("features_folded", 0) > 0
            narrowed = len(result.kept_inputs) < len(feature_names)
            if not (shrank_tree or folded or narrowed):
                continue
            node.attrs["pipeline"] = result.pipeline
            node.attrs["feature_names"] = [
                feature_names[i] for i in result.kept_inputs
            ]
            node.attrs["pruning_detail"] = result.detail
            context.record(
                self.name,
                f"{result.detail} kept {len(result.kept_inputs)}/"
                f"{len(feature_names)} inputs",
            )
            changed = True
        return changed
