"""Model clustering (paper §4.1).

Offline, k-means clusters a sample of historical data; for each cluster,
the features that are constant (or tightly bounded) within it act as
derived predicates, and a specialized, pruned model is precompiled. At
inference time rows are routed to their cluster's model; rows that match
no precompiled cluster fall back to the original model — exactly the
paper's deployment story.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizerError
from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    UnsupportedRewrite,
    apply_predicate_pruning,
)
from repro.ml.cluster import KMeans


class ClusteredModel:
    """A dispatcher over per-cluster specialized pipelines.

    Built offline by :func:`compile_clustered_pipeline`; usable anywhere a
    pipeline is (``predict`` over a feature matrix), and storable in the
    model catalog under the ``ml.pipeline`` flavor.
    """

    def __init__(
        self,
        original,
        kmeans: KMeans,
        cluster_columns: list[int],
        cluster_pipelines: list,
        cluster_kept_inputs: list[list[int]],
        cluster_ranges: list[tuple[np.ndarray, np.ndarray] | None] | None = None,
        compile_seconds: float = 0.0,
    ):
        self.original = original
        self.kmeans = kmeans
        self.cluster_columns = cluster_columns
        self.cluster_pipelines = cluster_pipelines
        self.cluster_kept_inputs = cluster_kept_inputs
        self.cluster_ranges = cluster_ranges or [None] * len(cluster_pipelines)
        self.compile_seconds = compile_seconds
        self.fallback_rows = 0  # rows scored by the original model

    @property
    def n_clusters(self) -> int:
        return len(self.cluster_pipelines)

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Cluster id per row (routing step)."""
        return self.kmeans.predict(X[:, self.cluster_columns])

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        labels = self.assign(X)
        out: np.ndarray | None = None
        for cluster_id in range(self.n_clusters):
            mask = labels == cluster_id
            if not mask.any():
                continue
            pipeline = self.cluster_pipelines[cluster_id]
            kept = self.cluster_kept_inputs[cluster_id]
            ranges = self.cluster_ranges[cluster_id]
            in_range = mask
            if pipeline is not None and ranges is not None:
                # The specialized model is only valid inside the ranges it
                # was pruned under; anything outside falls back (paper:
                # "if a precompiled model does not exist, we fall back").
                lows, highs = ranges
                inside = ((X >= lows) & (X <= highs)).all(axis=1)
                in_range = mask & inside
            fallback = mask & ~in_range
            if pipeline is None:
                fallback = mask
                in_range = np.zeros_like(mask)
            if in_range.any():
                values = pipeline.predict(X[in_range][:, kept])
                if out is None:
                    out = np.empty(len(X), dtype=np.asarray(values).dtype)
                out[in_range] = values
            if fallback.any():
                self.fallback_rows += int(fallback.sum())
                values = self.original.predict(X[fallback])
                if out is None:
                    out = np.empty(len(X), dtype=np.asarray(values).dtype)
                out[fallback] = values
        if out is None:
            return self.original.predict(X)
        return out

    def average_model_width(self) -> float:
        """Mean per-cluster *model feature* width.

        This is the quantity clustering shrinks: one-hot categories ruled
        out by a cluster's value ranges disappear from the per-cluster
        model even when every original input column is still consumed.
        """
        widths = []
        for pipeline in self.cluster_pipelines:
            widths.append(_pipeline_feature_width(pipeline or self.original))
        return float(np.mean(widths)) if widths else 0.0


def _pipeline_feature_width(pipeline) -> float:
    estimator = getattr(pipeline, "final_estimator", pipeline)
    coef = getattr(estimator, "coef_", None)
    if coef is not None:
        return float(len(coef))
    coefs = getattr(estimator, "coefs_", None)
    if coefs:
        return float(coefs[0].shape[0])
    width = getattr(estimator, "n_features_in_", None)
    return float(width) if width is not None else 0.0


def compile_clustered_pipeline(
    pipeline,
    sample: np.ndarray,
    n_clusters: int,
    cluster_columns: list[int] | None = None,
    bound_tolerance: float = 0.0,
    random_state: int | None = 0,
) -> ClusteredModel:
    """Offline model-clustering compilation.

    ``sample`` is historical data in the pipeline's input space;
    ``cluster_columns`` selects which inputs to cluster on (default: all).
    Within each cluster, per-feature [min, max] ranges become
    :class:`ColumnFacts` and the pipeline is pruned under them.
    """
    import time

    sample = np.asarray(sample, dtype=np.float64)
    if sample.ndim != 2:
        raise OptimizerError("sample must be a 2-D matrix")
    start = time.perf_counter()
    columns = (
        list(cluster_columns)
        if cluster_columns is not None
        else list(range(sample.shape[1]))
    )
    kmeans = KMeans(n_clusters=n_clusters, random_state=random_state)
    kmeans.fit(sample[:, columns])
    labels = kmeans.predict(sample[:, columns])
    pipelines = []
    kept_inputs = []
    ranges: list[tuple[np.ndarray, np.ndarray] | None] = []
    width = sample.shape[1]
    for cluster_id in range(n_clusters):
        members = sample[labels == cluster_id]
        if len(members) == 0:
            pipelines.append(None)
            kept_inputs.append(list(range(width)))
            ranges.append(None)
            continue
        facts = ColumnFacts()
        full_lows = np.full(width, -np.inf)
        full_highs = np.full(width, np.inf)
        lows = members.min(axis=0)
        highs = members.max(axis=0)
        for j in columns:
            full_lows[j], full_highs[j] = lows[j], highs[j]
            if highs[j] - lows[j] <= bound_tolerance:
                facts.constants[j] = float(lows[j])
            else:
                facts.bounds[j] = (float(lows[j]), float(highs[j]))
        try:
            result = apply_predicate_pruning(pipeline, facts)
            pipelines.append(result.pipeline)
            kept_inputs.append(result.kept_inputs)
            ranges.append((full_lows, full_highs))
        except UnsupportedRewrite:
            pipelines.append(None)
            kept_inputs.append(list(range(width)))
            ranges.append(None)
    compile_seconds = time.perf_counter() - start
    return ClusteredModel(
        pipeline,
        kmeans,
        columns,
        pipelines,
        kept_inputs,
        ranges,
        compile_seconds,
    )
