"""Standard DB optimizations over the unified IR (paper §2, §4).

These are the classical rewrites the cross-optimizer triggers *because*
model-level rules created the opportunity: filters commute with PREDICT
(enabling predicate-based pruning), and joins become eliminable once
model-projection pushdown removed the columns they provided.
"""

from __future__ import annotations

from repro.core.ir.graph import IRGraph
from repro.core.ir.nodes import IRNode
from repro.core.ir.schema import columns_required_above, infer_schema
from repro.core.optimizer.rule import Rule, RuleContext
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    conjoin,
    conjuncts,
)

_PREDICT_OPS = ("mld.pipeline", "mld.clustered_predictor", "la.tensor_graph")


def _output_column_names(node: IRNode) -> set[str]:
    """Unqualified + qualified names a scoring node appends."""
    names: set[str] = set()
    alias = node.attrs.get("alias")
    for name, _dtype in node.attrs.get("output_columns", ()):  # type: ignore[assignment]
        names.add(name.lower())
        if alias:
            names.add(f"{alias}.{name}".lower())
    return names


class PushFilterBelowPredict(Rule):
    """Move predicate conjuncts that only touch model *inputs* below a
    scoring operator.

    PREDICT appends columns and never changes rows, so any conjunct not
    referencing the prediction outputs commutes with it. This is the
    enabling step for predicate-based model pruning: the filter ends up
    adjacent to the data, and its facts flow into the model.
    """

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for filter_node in list(graph.find("ra.filter")):
            child = graph.node(filter_node.inputs[0])
            if child.op not in _PREDICT_OPS:
                continue
            if len(graph.parents_of(child)) > 1:
                continue  # shared scoring node: do not re-route
            outputs = _output_column_names(child)
            parts = conjuncts(filter_node.attrs["predicate"])
            pushable = [
                p
                for p in parts
                if not ({c.lower() for c in p.columns()} & outputs)
            ]
            blocked = [p for p in parts if p not in pushable]
            if not pushable:
                continue
            # Insert the pushable part below the scoring node.
            graph.insert_below(
                child, 0, "ra.filter", predicate=conjoin(pushable)
            )
            if blocked:
                filter_node.attrs["predicate"] = conjoin(blocked)
            else:
                graph.splice_out(filter_node)
            context.record(self.name, f"pushed {len(pushable)} conjunct(s)")
            changed = True
        return changed


class PushFilterIntoJoin(Rule):
    """Route single-side filter conjuncts below the join input they touch."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for filter_node in list(graph.find("ra.filter")):
            child = graph.node(filter_node.inputs[0])
            if child.op != "ra.join" or len(graph.parents_of(child)) > 1:
                continue
            left_schema = infer_schema(graph, graph.node(child.inputs[0]))
            right_schema = infer_schema(graph, graph.node(child.inputs[1]))

            def resolves(schema, refs: set[str]) -> bool:
                for ref in refs:
                    try:
                        schema.column(ref)
                    except Exception:
                        return False
                return True

            remaining = []
            pushed = 0
            for part in conjuncts(filter_node.attrs["predicate"]):
                refs = set(part.columns())
                on_left = resolves(left_schema, refs)
                on_right = resolves(right_schema, refs)
                if on_left and not on_right:
                    graph.insert_below(child, 0, "ra.filter", predicate=part)
                    pushed += 1
                elif on_right and not on_left:
                    graph.insert_below(child, 1, "ra.filter", predicate=part)
                    pushed += 1
                else:
                    remaining.append(part)
            if pushed == 0:
                continue
            if remaining:
                filter_node.attrs["predicate"] = conjoin(remaining)
            else:
                graph.splice_out(filter_node)
            context.record(self.name, f"pushed {pushed} conjunct(s)")
            changed = True
        return changed


class MergeConsecutiveFilters(Rule):
    """``filter(filter(x))`` -> one conjunctive filter."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for filter_node in list(graph.find("ra.filter")):
            child = graph.node(filter_node.inputs[0])
            if child.op != "ra.filter" or len(graph.parents_of(child)) > 1:
                continue
            filter_node.attrs["predicate"] = BinaryOp(
                "AND", child.attrs["predicate"], filter_node.attrs["predicate"]
            )
            graph.splice_out(child)
            context.record(self.name)
            changed = True
        return changed


class PruneProjectionItems(Rule):
    """Drop projection items nothing above references.

    The classical projection pruning that, combined with model-projection
    pushdown, lets JoinElimination see that a side table contributes
    nothing (Fig. 1: ``prenatal_tests`` after ``gender``/``marker`` die).
    The sink projection is never touched — it defines the query output.
    """

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        protected = self._result_projection(graph)
        for project in list(graph.find("ra.project")):
            if project.id == graph.output.id or project.id == protected:
                continue
            items = project.attrs.get("items")
            if not items:
                continue
            required = columns_required_above(graph, project)
            if required is None:
                continue
            kept = [
                (expr, name)
                for expr, name in items
                if name.split(".")[-1].lower() in required
                or name.lower() in required
            ]
            if not kept or len(kept) == len(items):
                continue
            project.attrs["items"] = kept
            context.record(
                self.name, f"{len(items)} -> {len(kept)} columns"
            )
            changed = True
        return changed

    @staticmethod
    def _result_projection(graph: IRGraph) -> int | None:
        """The projection that defines the query's SELECT list.

        It may sit below row-preserving operators (ORDER BY / LIMIT /
        DISTINCT / a HAVING filter); its items are the user's requested
        output and must never be pruned.
        """
        current = graph.output
        row_preserving = {"ra.limit", "ra.order_by", "ra.distinct", "ra.filter"}
        while current.op in row_preserving and current.inputs:
            current = graph.node(current.inputs[0])
        return current.id if current.op == "ra.project" else None


class JoinElimination(Rule):
    """Drop an INNER equi-join whose one side contributes no columns.

    Fires after model-projection pushdown removed a side's features. The
    eliminated side must be a bare table scan whose join key is unique
    (primary-key-like) and must contain every key of the surviving side —
    both checked against actual catalog statistics, the paper's
    "data properties".
    """

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for join in list(graph.find("ra.join")):
            if join.attrs.get("kind") != "INNER":
                continue
            condition = join.attrs.get("condition")
            parts = conjuncts(condition) if condition is not None else []
            if len(parts) != 1 or not isinstance(parts[0], BinaryOp):
                continue
            eq = parts[0]
            if eq.op != "=" or not (
                isinstance(eq.left, ColumnRef) and isinstance(eq.right, ColumnRef)
            ):
                continue
            required = columns_required_above(graph, join)
            if required is None:
                continue
            for side_index in (0, 1):
                side = graph.node(join.inputs[side_index])
                other = graph.node(join.inputs[1 - side_index])
                if side.op != "ra.scan":
                    continue
                side_schema = infer_schema(graph, side)
                side_cols = {n.split(".")[-1].lower() for n in side_schema.names}
                key_expr = self._key_for(eq, side_schema)
                if key_expr is None:
                    continue
                key = key_expr.unqualified.lower()
                if (required & side_cols) - {key}:
                    continue  # side still provides needed columns
                table_name = side.attrs["table"]
                if not context.is_unique_column(table_name, key):
                    continue
                if not self._keys_contained(context, graph, other, eq, key_expr, table_name, key):
                    continue
                graph.replace(join, other)
                graph.garbage_collect()
                context.record(self.name, f"dropped join with {table_name}")
                changed = True
                break
        return changed

    @staticmethod
    def _key_for(eq: BinaryOp, side_schema) -> ColumnRef | None:
        """Which side of the equality belongs to the candidate schema.

        Prefers exact qualified matches (``pt.id`` against a schema with
        ``pt.id``); falls back to unqualified matching only when it is
        unambiguous — with both refs unqualifying to the same name, a
        wrong pick would eliminate the wrong side.
        """
        exact = {name.lower() for name in side_schema.names}
        left, right = eq.left, eq.right
        left_exact = left.name.lower() in exact
        right_exact = right.name.lower() in exact
        if left_exact and not right_exact:
            return left
        if right_exact and not left_exact:
            return right
        if left_exact and right_exact:
            return None  # self-join key: ambiguous, stay safe
        short = {name.split(".")[-1].lower() for name in side_schema.names}
        left_short = left.unqualified.lower() in short
        right_short = right.unqualified.lower() in short
        if left_short and not right_short:
            return left
        if right_short and not left_short:
            return right
        return None

    @staticmethod
    def _keys_contained(
        context: RuleContext,
        graph: IRGraph,
        other: "IRNode",
        eq: BinaryOp,
        side_key: ColumnRef,
        side_table: str,
        side_column: str,
    ) -> bool:
        """Check FK containment: other side's keys all appear in the side
        being dropped (otherwise the join also filters rows)."""
        import numpy as np

        other_key = eq.right if eq.left is side_key else eq.left
        # Find the scan in the other subtree that provides the key column;
        # the stored scan schema may be alias-prefixed, so resolve through
        # Schema.column (exact, then suffix) rather than exact membership.
        other_scan = None
        for candidate in graph.walk_up(other):
            if candidate.op != "ra.scan":
                continue
            schema = candidate.attrs["schema"]
            try:
                schema.column(other_key.name)
            except Exception:
                continue
            other_scan = candidate
            break
        if other_scan is None or context.database is None:
            return False
        try:
            side_values = context.database.table(side_table).column(side_column)
            other_values = context.database.table(
                other_scan.attrs["table"]
            ).column(other_key.unqualified)
        except Exception:
            return False
        return bool(np.isin(other_values, side_values).all())
