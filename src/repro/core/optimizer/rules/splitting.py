"""Model/query splitting (paper §2).

A decision-tree pipeline is partitioned on its root test: the query becomes
a UNION ALL of two branches, each filtering on the root predicate and
scoring with the correspondingly pruned (cheaper) model. Each branch is
then optimized separately — the paper notes the kinship with model
cascades.
"""

from __future__ import annotations

import math

from repro.core.ir.graph import IRGraph
from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    UnsupportedRewrite,
    apply_predicate_pruning,
    split_pipeline,
)
from repro.core.optimizer.rule import Rule, RuleContext
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.relational.expressions import BinaryOp, col, lit


class ModelQuerySplitting(Rule):
    """Split one tree-pipeline scoring node into two pruned branches."""

    def __init__(self, min_tree_nodes: int = 5):
        self.min_tree_nodes = min_tree_nodes

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for node in list(graph.find("mld.pipeline")):
            if node.attrs.get("split"):
                continue
            feature_names = node.attrs.get("feature_names")
            pipeline = node.attrs["pipeline"]
            transformers, predictor = split_pipeline(pipeline)
            if not isinstance(
                predictor, (DecisionTreeClassifier, DecisionTreeRegressor)
            ):
                continue
            if not feature_names:
                continue
            tree = predictor.tree_
            if tree.node_count < self.min_tree_nodes or tree.is_leaf(0):
                continue
            # The root feature must trace back to one input column through
            # width-preserving scalers only (so the raw-space threshold is
            # recoverable).
            if not all(
                isinstance(t, (StandardScaler, MinMaxScaler))
                for t in transformers
            ):
                continue
            feature = int(tree.feature[0])
            threshold = float(tree.threshold[0])
            for transformer in reversed(transformers):
                if isinstance(transformer, StandardScaler):
                    threshold = (
                        threshold * transformer.scale_[feature]
                        + transformer.mean_[feature]
                    )
                else:
                    threshold = (
                        threshold * transformer.range_[feature]
                        + transformer.min_[feature]
                    )
            column_name = feature_names[feature]
            try:
                left = apply_predicate_pruning(
                    pipeline,
                    ColumnFacts(bounds={feature: (-math.inf, threshold)}),
                )
                right = apply_predicate_pruning(
                    pipeline,
                    ColumnFacts(
                        bounds={
                            feature: (
                                float(math.nextafter(threshold, math.inf)),
                                math.inf,
                            )
                        }
                    ),
                )
            except UnsupportedRewrite:
                node.attrs["split"] = True
                continue
            child_id = node.inputs[0]
            common = {
                key: node.attrs[key]
                for key in ("output_columns", "alias", "model_ref")
                if key in node.attrs
            }
            branches = []
            for rewrite, predicate in (
                (left, BinaryOp("<=", col(column_name), lit(threshold))),
                (right, BinaryOp(">", col(column_name), lit(threshold))),
            ):
                branch_filter = graph.add(
                    "ra.filter", [child_id], predicate=predicate
                )
                branch_predict = graph.add(
                    "mld.pipeline",
                    [branch_filter.id],
                    pipeline=rewrite.pipeline,
                    feature_names=[feature_names[i] for i in rewrite.kept_inputs],
                    split=True,
                    pruned=True,
                    **common,
                )
                branches.append(branch_predict.id)
            union = graph.add("ra.union_all", branches)
            graph.replace(node, union)
            graph.garbage_collect()
            context.record(
                self.name,
                f"split on {column_name} <= {threshold:.4g}",
            )
            changed = True
        return changed
