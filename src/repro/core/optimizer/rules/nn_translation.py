"""NN translation and tensor-graph constant folding (paper §4.2, §2).

``NNTranslation`` compiles whole model pipelines (featurizers included)
into tensor graphs so the NN runtime executes them — on CPU or the
(simulated) GPU. ``TensorGraphConstantFolding`` then runs the
compiler-style passes of :mod:`repro.tensor.optimizer` over any tensor
graph in the plan, which is where predicate-derived constants propagate
into the network.
"""

from __future__ import annotations

from repro.errors import UnsupportedOpError
from repro.core.ir.graph import IRGraph
from repro.core.optimizer.rule import Rule, RuleContext
from repro.tensor.converters import convert
from repro.tensor.optimizer import optimize as optimize_tensor_graph


class NNTranslation(Rule):
    """mld.pipeline -> la.tensor_graph via the converter library."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        device = context.options.get("device", "cpu")
        for node in list(graph.find("mld.pipeline")):
            pipeline = node.attrs["pipeline"]
            try:
                tensor_graph = convert(pipeline)
            except UnsupportedOpError:
                continue
            attrs = {
                key: node.attrs[key]
                for key in (
                    "output_columns",
                    "alias",
                    "model_ref",
                    "feature_names",
                )
                if key in node.attrs
            }
            replacement = graph.add(
                "la.tensor_graph",
                list(node.inputs),
                graph=tensor_graph,
                device=device,
                **attrs,
            )
            graph.replace(node, replacement)
            graph.garbage_collect()
            context.record(
                self.name,
                f"{len(tensor_graph.nodes)} tensor ops on {device}",
            )
            changed = True
        return changed


class TensorGraphConstantFolding(Rule):
    """Run constant folding / fusion / DCE inside tensor graphs."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for node in list(graph.find("la.tensor_graph")):
            if node.attrs.get("folded"):
                continue
            tensor_graph = node.attrs["graph"]
            before = len(tensor_graph.nodes)
            optimized = optimize_tensor_graph(tensor_graph)
            node.attrs["graph"] = optimized
            node.attrs["folded"] = True
            after = len(optimized.nodes)
            if after < before:
                context.record(self.name, f"{before} -> {after} tensor ops")
                changed = True
        return changed
