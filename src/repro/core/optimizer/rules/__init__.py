"""One module per §4 rule family."""

from repro.core.optimizer.rules.clustering import (
    ClusteredModel,
    compile_clustered_pipeline,
)
from repro.core.optimizer.rules.inlining import ModelInlining
from repro.core.optimizer.rules.nn_translation import (
    NNTranslation,
    TensorGraphConstantFolding,
)
from repro.core.optimizer.rules.predicate_pruning import PredicateBasedModelPruning
from repro.core.optimizer.rules.projection_pushdown import ModelProjectionPushdown
from repro.core.optimizer.rules.relational import (
    JoinElimination,
    MergeConsecutiveFilters,
    PruneProjectionItems,
    PushFilterBelowPredict,
    PushFilterIntoJoin,
)
from repro.core.optimizer.rules.splitting import ModelQuerySplitting

__all__ = [
    "ClusteredModel",
    "compile_clustered_pipeline",
    "JoinElimination",
    "MergeConsecutiveFilters",
    "ModelInlining",
    "ModelProjectionPushdown",
    "ModelQuerySplitting",
    "NNTranslation",
    "PredicateBasedModelPruning",
    "PruneProjectionItems",
    "PushFilterBelowPredict",
    "PushFilterIntoJoin",
    "TensorGraphConstantFolding",
]
