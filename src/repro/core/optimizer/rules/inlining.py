"""Model inlining (paper §4.2, MLD -> RA).

Small trees and linear models become scalar SQL expressions (``CASE
WHEN`` chains / weighted sums) inside a projection, so the relational
engine executes them natively with no featurization, no matrix hand-off,
and no ML runtime call — the Froid-style "UDF inlining" the paper builds
on. The data featurizers (scalers, one-hot encodings) are inlined too.
"""

from __future__ import annotations

from repro.core.ir.graph import IRGraph
from repro.core.ir.schema import infer_schema
from repro.core.optimizer.ml_rewrites import (
    UnsupportedRewrite,
    pipeline_to_expression,
    split_pipeline,
)
from repro.core.optimizer.rule import Rule, RuleContext
from repro.ml.ensemble import (
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.ml.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.relational.expressions import ColumnRef

_INLINABLE = (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    LinearRegression,
    LogisticRegression,
    Ridge,
    Lasso,
    RandomForestClassifier,
    RandomForestRegressor,
    GradientBoostingRegressor,
)


def _total_tree_nodes(predictor) -> int | None:
    """Combined node count across the predictor's trees (None = no trees)."""
    tree = getattr(predictor, "tree_", None)
    if tree is not None:
        return tree.node_count
    estimators = getattr(predictor, "estimators_", None)
    if estimators:
        return sum(t.tree_.node_count for t in estimators)
    return None


class ModelInlining(Rule):
    """Replace small tree/linear pipelines with inline SQL expressions."""

    def __init__(self, max_tree_nodes: int = 255):
        self.max_tree_nodes = max_tree_nodes

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        for node in list(graph.find("mld.pipeline")):
            feature_names = node.attrs.get("feature_names")
            if not feature_names:
                continue
            pipeline = node.attrs["pipeline"]
            _, predictor = split_pipeline(pipeline)
            if not isinstance(predictor, _INLINABLE):
                continue
            total_nodes = _total_tree_nodes(predictor)
            if total_nodes is not None and total_nodes > self.max_tree_nodes:
                continue  # CASE expression would explode; leave to NN path
            try:
                expression = pipeline_to_expression(pipeline, feature_names)
            except UnsupportedRewrite:
                continue
            child = graph.node(node.inputs[0])
            child_schema = infer_schema(graph, child)
            alias = node.attrs.get("alias")
            items = [
                (ColumnRef(column.name), column.name) for column in child_schema
            ]
            for out_name, _dtype in node.attrs.get("output_columns", ()):  # type: ignore[assignment]
                qualified = f"{alias}.{out_name}" if alias else out_name
                items.append((expression, qualified))
            project = graph.add(
                "ra.project",
                list(node.inputs),
                items=items,
                inlined_model=node.attrs.get("model_ref"),
            )
            graph.replace(node, project)
            graph.garbage_collect()
            context.record(
                self.name,
                f"inlined {type(predictor).__name__} "
                f"({total_nodes if total_nodes is not None else 'linear'} nodes)",
            )
            changed = True
        return changed
