"""Model-projection pushdown (paper §4.1, model-to-data).

Features the model provably ignores (zero L1 weights, untested tree
features — often a consequence of predicate-based pruning) are removed
from the model *and* projected out of the data early, which in turn can
enable join elimination.
"""

from __future__ import annotations

from repro.core.ir.graph import IRGraph
from repro.core.ir.schema import columns_required_above, infer_schema
from repro.core.optimizer.ml_rewrites import (
    UnsupportedRewrite,
    apply_projection_pushdown,
)
from repro.core.optimizer.rule import Rule, RuleContext
from repro.relational.expressions import ColumnRef


class ModelProjectionPushdown(Rule):
    """Narrow the model to its useful features and project the data."""

    def apply(self, graph: IRGraph, context: RuleContext) -> bool:
        changed = False
        tolerance = float(context.options.get("lossy_pushdown_tolerance", 0.0))
        for node in list(graph.find("mld.pipeline")):
            if node.attrs.get("projected"):
                continue
            feature_names = node.attrs.get("feature_names")
            if not feature_names:
                continue
            try:
                result = apply_projection_pushdown(
                    node.attrs["pipeline"], tolerance
                )
            except UnsupportedRewrite:
                node.attrs["projected"] = True
                continue
            node.attrs["projected"] = True
            narrowed_inputs = len(result.kept_inputs) < len(feature_names)
            dropped_features = result.detail.get("features_dropped", 0) > 0
            if not (narrowed_inputs or dropped_features):
                continue
            # Even when every original column survives (e.g. only some
            # one-hot categories died), the narrower model is worth it:
            # Fig. 2(a)'s gain is the smaller feature matrix.
            new_features = [feature_names[i] for i in result.kept_inputs]
            node.attrs["pipeline"] = result.pipeline
            node.attrs["feature_names"] = new_features
            node.attrs["projection_detail"] = result.detail
            if narrowed_inputs:
                self._insert_data_projection(graph, node, new_features)
            context.record(
                self.name,
                f"kept {len(new_features)}/{len(feature_names)} inputs "
                f"({result.detail})",
            )
            changed = True
        return changed

    @staticmethod
    def _insert_data_projection(graph: IRGraph, node, features: list[str]) -> None:
        """Project the scoring input down to needed columns.

        Needed = the model's (reduced) features plus any column the rest
        of the query references. Skipped when an opaque ancestor exists
        or nothing would be dropped.
        """
        required = columns_required_above(graph, node)
        if required is None:
            return
        keep = set(required) | {f.lower() for f in features}
        child = graph.node(node.inputs[0])
        child_schema = infer_schema(graph, child)
        items = [
            (ColumnRef(column.name), column.name)
            for column in child_schema
            if column.name.split(".")[-1].lower() in keep
        ]
        if not items or len(items) >= len(child_schema):
            return
        graph.insert_below(node, 0, "ra.project", items=items)
