"""The unified memo search engine (Cascades exploration + DP join order).

Every planner in the system drives plan search through this module:

* ``Database.execute`` / ``EXPLAIN`` — the SQL physical planner
  (:class:`repro.relational.algebra.planner.PhysicalPlanner`) registers
  the relational rule set (filter merge, predicate pushdown, join
  ordering) plus the catalog-model rewrites (predicate-based pruning,
  projection pushdown) and extracts the cheapest plan.
* ``RavenSession.optimize`` — the cross-IR optimizer converts the
  unified IR to a logical tree (:func:`ir_to_logical`), adds the ML
  rules that change execution strategy (model inlining), searches the
  same memo, and lowers the winner back (:func:`logical_to_ir`).

Relational and ML transformations therefore compete as *memo rules
under one cost model*, which is the paper's §4.3 "Cascades-style
cost-based optimizer" claim. Join ordering is Selinger-style dynamic
programming inside the memo: every join subset becomes a memo group,
bushy shapes are allowed, and the search falls back to the PR 2 greedy
heuristic above a size guard.

Cost weights mirror :mod:`repro.core.optimizer.cost` for relational
operators; scoring operators additionally charge per consumed feature
(so narrowed models win) and inlined CASE projections are priced from
their vectorized evaluation (calibrated against the Fig. 2(c)
inlining benchmark) rather than per expression node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.ir.graph import IRGraph
from repro.core.optimizer.memo import Memo, MemoStats
from repro.distributed.operators import (
    Gather,
    Repartition,
    ShardScan,
    Shuffle,
    ShuffleJoin,
    StageInput,
)
from repro.distributed.routing import (
    colocated_shard_ids,
    compatible_layouts,
    hash_class,
    surviving_shards,
)
from repro.distributed.serialize import (
    expression_is_serializable,
    fragment_is_serializable,
)
from repro.core.optimizer.ml_rewrites import (
    ColumnFacts,
    UnsupportedRewrite,
    apply_predicate_pruning,
    apply_projection_pushdown,
    pipeline_to_expression,
    split_pipeline,
)
from repro.errors import OptimizerError
from repro.relational.algebra import logical
from repro.relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expression,
    Literal,
    conjoin,
    conjuncts,
    equality_constants,
    range_bounds,
)
from repro.relational.statistics import (
    DEFAULT_ROW_ESTIMATE,
    DEFAULT_SELECTIVITY,
    TableStatistics,
    column_stats_resolver,
    constant_columns,
    combine_aggregate_estimate,
    combine_join_estimate,
    estimate_predicate_selectivity,
    group_keys_cardinality,
    join_condition_selectivity,
)
from repro.relational.types import Column, Schema

# -- search configuration ----------------------------------------------------

#: Smallest INNER/CROSS chain the join-order rule rewrites.
MIN_JOIN_RELATIONS = 3

#: Largest chain priced by exhaustive (bushy) DP; beyond this the rule
#: falls back to the greedy seed. 2^10 subsets keeps full DP under a
#: few tens of milliseconds in pure Python.
DP_MAX_RELATIONS = 10

#: The PR 2 greedy planner's cap, kept for the ``legacy`` search mode
#: (benchmark baseline): chains above it are left in FROM order.
LEGACY_MAX_RELATIONS = 6

# -- cost model --------------------------------------------------------------

ENGINE_SWITCH_COST = 500.0  # hand a batch across engines (see cost.py)
FEATURE_COST = 0.2  # per row, per feature a scoring operator consumes
CASE_NODE_WEIGHT = 0.02  # vectorized CASE evaluation, per expression node
COLUMN_ITEM_COST = 0.05  # projecting an existing column is a dict re-pick

# Distributed execution weights. A fragment dispatch pays plan
# serialization + IPC round-trip regardless of data size; gathered rows
# pay a per-row pickle/concat toll. Together they make scatter-gather
# lose on small tables and cheap fragments (where the in-process morsel
# path is already optimal) and win when per-row fragment work dominates.
FRAGMENT_DISPATCH_COST = 2_000.0  # per dispatched fragment
GATHER_ROW_COST = 0.3  # per gathered result row (IPC + concat)
REPARTITION_ROW_COST = 0.5  # hash + stable reorder, per input row

# Shuffle-join weights. The map side hash-partitions vectorized
# (cheaper than the local Repartition's stable reorder) and every row
# crosses the coordinator once on its way to the owning bucket worker;
# the bucket joins then run the executor's per-row hash-join loop in
# parallel. Together: a shuffle loses to the coordinator join on small
# inputs (dispatch + tolls dominate) and wins once the Python join
# loop over hundreds of thousands of rows is the bottleneck.
SHUFFLE_PARTITION_ROW_COST = 0.2  # per map-output row (hash + split)
SHUFFLE_TRANSFER_ROW_COST = 0.2  # per row routed through the coordinator


def _node_count(expr: Expression) -> int:
    return sum(1 for _ in expr.walk())


def _item_cost(expr: Expression) -> float:
    """Per-row cost of one projection item."""
    if isinstance(expr, ColumnRef):
        return COLUMN_ITEM_COST
    if isinstance(expr, CaseWhen):
        return CASE_NODE_WEIGHT * _node_count(expr)
    return 1.0 + sum(_item_cost(child) for child in expr.children())


def _pipeline_row_cost(pipeline) -> float:
    from repro.core.optimizer import cost as ir_cost

    return ir_cost._pipeline_row_cost(pipeline)


def predict_row_cost(op: logical.Predict, ctx: "SearchContext") -> float:
    """Per-row scoring cost of a Predict operator, flavor-aware."""
    resolved = ctx.pipeline_for(op)
    features = resolved[1] if resolved else (op.feature_names or ())
    feature_cost = FEATURE_COST * len(features or ())
    flavor = ctx.predict_flavor(op)
    if flavor == "tensor.graph":
        graph = op.payload
        per_row = 0.2 * (len(graph.nodes) if graph is not None else 10)
        return feature_cost + per_row
    if flavor == "python.script":
        return feature_cost + 20.0
    if resolved is not None:
        return feature_cost + _pipeline_row_cost(resolved[0])
    return feature_cost + 10.0


def hash_join_cost(
    left_rows: float,
    right_rows: float,
    kind: str,
    condition: Expression | None,
    resolver,
) -> float:
    """Cost of one hash join as the executor actually runs it.

    The executor hashes on a *single* equi-conjunct and evaluates the
    remaining conjuncts as a residual filter over the matched rows —
    so a multi-conjunct join's intermediate cardinality is governed by
    its most selective single conjunct, not the product of all of them.
    Pricing that honestly keeps the DP search from bundling relations
    into wide cross products "paid for" by a many-conjunct condition
    the executor cannot actually hash on.
    """
    build_and_probe = (left_rows + right_rows) * 1.0
    if condition is None:
        return build_and_probe + left_rows * right_rows * 0.5
    parts = conjuncts(condition)
    best = None
    for part in parts:
        selectivity = join_condition_selectivity(part, resolver)
        if selectivity is not None and (best is None or selectivity < best):
            best = selectivity
    matched = combine_join_estimate(left_rows, right_rows, kind, best)
    residual = max(0, len(parts) - 1)
    return build_and_probe + matched * (0.5 + 0.3 * residual)


def order_by_selectivity(
    parts: list[Expression], resolver
) -> list[Expression]:
    """Most selective conjunct first — the executor hashes on the first
    equi-conjunct it sees, so this ordering is itself an optimization."""

    def key(part: Expression) -> float:
        selectivity = join_condition_selectivity(part, resolver)
        return (
            selectivity if selectivity is not None else DEFAULT_SELECTIVITY
        )

    return sorted(parts, key=key)


def operator_cost(
    op: logical.LogicalOp,
    rows: float,
    child_rows: list[float],
    ctx: "SearchContext",
) -> float:
    """Total cost of one operator given its (group) cardinalities.

    Relational weights match :func:`repro.core.optimizer.cost.node_cost`
    so the memo and the legacy IR coster rank plans consistently.
    """
    if isinstance(op, (logical.Scan, logical.InlineTable, ShardScan)):
        return rows * 0.1
    if isinstance(op, Gather):
        # Per-shard fragment cost is priced over the fragment tree
        # (whose ShardScan leaves already carry per-shard cardinality);
        # shards run concurrently on the worker pool, so the fragment
        # cost is paid once per wave, not once per shard. Co-located
        # join fragments price identically — the join inside the
        # fragment runs over 1/K-sized inputs per worker.
        fragment_cost = ctx.cost_tree(op.fragment)
        workers = max(1, ctx.shard_workers())
        waves = -(-max(1, op.shards_scanned) // workers)
        return (
            FRAGMENT_DISPATCH_COST * op.shards_scanned
            + fragment_cost * waves
            + rows * GATHER_ROW_COST
        )
    if isinstance(op, ShuffleJoin):
        return shuffle_join_cost(op, rows, ctx)
    if isinstance(op, Shuffle):
        return _shuffle_side_cost(op, ctx)
    input_rows = child_rows[0] if child_rows else rows
    if isinstance(op, Repartition):
        return input_rows * REPARTITION_ROW_COST
    if isinstance(op, logical.Filter):
        return input_rows * 0.3 * len(conjuncts(op.predicate))
    if isinstance(op, logical.Project):
        return rows * 0.1 * sum(_item_cost(e) for e, _ in op.items)
    if isinstance(op, logical.Join):
        left = child_rows[0] if child_rows else rows
        right = child_rows[1] if len(child_rows) > 1 else rows
        return hash_join_cost(left, right, op.kind, op.condition, ctx.resolver)
    if isinstance(op, (logical.OrderBy, logical.Distinct)):
        return rows * 2.0
    if isinstance(op, logical.Aggregate) and op.group_by:
        # Grouped aggregation walks every input row in Python (the
        # composite-key and group-representative loops), so it is
        # priced per *input* row — which is what makes shard-local
        # partial aggregation (touching 1/Nth of the rows per worker)
        # worth a fan-out.
        return input_rows * 0.6 + rows * 0.2
    if isinstance(op, (logical.Limit, logical.UnionAll, logical.Aggregate)):
        return rows * 0.2
    if isinstance(op, logical.Predict):
        switch = ENGINE_SWITCH_COST
        if ctx.predict_flavor(op) == "python.script":
            switch *= 4
        # A compiled backend trades a fixed setup cost (fusion pattern
        # matching, JIT warm-up — paid per session, amortized by the
        # session cache but real on the cold path) for a calibrated
        # per-row discount. That is exactly the paper's batch-size
        # crossover: the interpreter wins small batches, compiled
        # execution wins scans.
        backend = dict(op.extra).get("backend") if op.extra else None
        setup, row_scale = ctx.backend_profile(backend)
        return (
            switch
            + setup
            + input_rows * predict_row_cost(op, ctx) * row_scale
        )
    return rows


def _shuffle_side_cost(shuffle: Shuffle, ctx: "SearchContext") -> float:
    """Map-phase cost of one shuffle side (fragment + partition + route)."""
    rows = ctx.estimate_tree(shuffle)
    fragment_cost = ctx.cost_tree(shuffle.fragment)
    workers = max(1, ctx.shard_workers())
    if shuffle.is_sharded and shuffle.shard_ids:
        waves = -(-max(1, len(shuffle.shard_ids)) // workers)
        map_cost = (
            FRAGMENT_DISPATCH_COST * len(shuffle.shard_ids)
            + fragment_cost * waves
        )
    else:
        map_cost = fragment_cost  # the coordinator runs the map itself
    return map_cost + rows * (
        SHUFFLE_PARTITION_ROW_COST + SHUFFLE_TRANSFER_ROW_COST
    )


def shuffle_join_cost(
    op: ShuffleJoin, rows: float, ctx: "SearchContext"
) -> float:
    """Total cost of a shuffle join: maps + staged bucket work + gather.

    The bucket joins run the executor's hash join concurrently over
    key-disjoint buckets, so the join work — and any post-join stages
    riding in the same round-trip (filters, PREDICT, partial
    aggregates) — divides by the effective parallelism. Only the
    *final* stage's output pays the gather toll home, which is exactly
    why a partial aggregate stage wins: it shrinks the payload the
    coordinator must collect from join-output rows to group rows.
    """
    left_rows = ctx.estimate_tree(op.left)
    right_rows = ctx.estimate_tree(op.right)
    join_work = hash_join_cost(
        left_rows, right_rows, op.kind, op.condition, ctx.resolver
    )
    parallelism = max(1, min(op.num_buckets, ctx.shard_workers()))
    flowing = combine_join_estimate(
        left_rows,
        right_rows,
        op.kind,
        join_condition_selectivity(op.condition, ctx.resolver),
    )
    stage_work = 0.0
    for stage in op.stages:
        flowing, cost = _stage_tree_cost(stage, flowing, ctx)
        stage_work += cost
    return (
        _shuffle_side_cost(op.left, ctx)
        + _shuffle_side_cost(op.right, ctx)
        + FRAGMENT_DISPATCH_COST * op.num_buckets
        + (join_work + stage_work) / parallelism
        + flowing * GATHER_ROW_COST
    )


def _stage_tree_rows(
    stage: logical.LogicalOp, input_rows: float, ctx: "SearchContext"
) -> float:
    """Row estimate of one worker stage fed ``input_rows`` at its
    :class:`StageInput` leaf."""
    if isinstance(stage, StageInput):
        return input_rows
    child_rows = [
        _stage_tree_rows(child, input_rows, ctx) for child in stage.children
    ]
    return estimate_operator_rows(stage, child_rows, ctx)


def _stage_tree_cost(
    stage: logical.LogicalOp, input_rows: float, ctx: "SearchContext"
) -> tuple[float, float]:
    """``(output rows, cost)`` of one worker stage over its input."""
    if isinstance(stage, StageInput):
        return input_rows, 0.0
    parts = [
        _stage_tree_cost(child, input_rows, ctx) for child in stage.children
    ]
    child_rows = [child for child, _cost in parts]
    rows = estimate_operator_rows(stage, child_rows, ctx)
    cost = operator_cost(stage, rows, child_rows, ctx) + sum(
        cost for _rows, cost in parts
    )
    return rows, cost


def estimate_operator_rows(
    op: logical.LogicalOp,
    child_rows: list[float],
    ctx: "SearchContext",
) -> float:
    """Output-cardinality estimate of one operator over group inputs."""
    if isinstance(op, logical.Scan):
        stats = ctx.table_statistics(op.table_name)
        return float(stats.row_count) if stats else DEFAULT_ROW_ESTIMATE
    if isinstance(op, ShardScan):
        stats = ctx.table_statistics(op.table_name)
        total = float(stats.row_count) if stats else DEFAULT_ROW_ESTIMATE
        return max(1.0, total / max(1, op.total_shards))
    if isinstance(op, Gather):
        per_shard = ctx.estimate_tree(op.fragment)
        return max(1.0, per_shard * max(1, op.shards_scanned))
    if isinstance(op, Shuffle):
        per_shard = ctx.estimate_tree(op.fragment)
        if op.is_sharded:
            return max(1.0, per_shard * max(1, len(op.shard_ids)))
        return max(1.0, per_shard)
    if isinstance(op, ShuffleJoin):
        rows = combine_join_estimate(
            ctx.estimate_tree(op.left),
            ctx.estimate_tree(op.right),
            op.kind,
            join_condition_selectivity(op.condition, ctx.resolver),
        )
        for stage in op.stages:
            rows = _stage_tree_rows(stage, rows, ctx)
        return max(1.0, rows)
    if isinstance(op, Repartition):
        return child_rows[0] if child_rows else DEFAULT_ROW_ESTIMATE
    if isinstance(op, logical.InlineTable):
        return float(op.table.num_rows)
    if isinstance(op, logical.Filter):
        selectivity = estimate_predicate_selectivity(
            op.predicate, ctx.resolver
        )
        return max(1.0, child_rows[0] * selectivity)
    if isinstance(op, logical.Join):
        left, right = child_rows[0], child_rows[1]
        if op.kind == "CROSS" or op.condition is None:
            return left * right
        return combine_join_estimate(
            left,
            right,
            op.kind,
            join_condition_selectivity(op.condition, ctx.resolver),
        )
    if isinstance(op, logical.Aggregate):
        return combine_aggregate_estimate(
            child_rows[0],
            group_keys_cardinality(op.group_by, ctx.resolver),
        )
    if isinstance(op, logical.Limit):
        return min(child_rows[0], float(op.count))
    if isinstance(op, logical.UnionAll):
        return sum(child_rows)
    if child_rows:
        return child_rows[0]
    return DEFAULT_ROW_ESTIMATE


# -- reference resolution (shared with the old planner semantics) ------------


def stored_names(schema: Schema) -> frozenset:
    return frozenset(column.name.lower() for column in schema)


def resolve_ref_mapping(
    schema: Schema, expr: Expression
) -> dict[str, str] | None:
    """Map each column reference to the stored name it binds to in scope.

    Mirrors the executor's resolution order (exact, unique suffix,
    qualified fallback) so placement decisions follow exactly the
    columns evaluation would read. ``None`` when any reference fails or
    is ambiguous — such a conjunct must stay where it is, preserving
    the runtime error instead of silently picking a side.
    """
    names = [stored.lower() for stored in schema.names]
    mapping: dict[str, str] = {}
    for ref in expr.columns():
        key = ref.lower()
        if key in names:
            mapping[ref] = key
            continue
        suffix_matches = [
            stored for stored in names if stored.endswith("." + key)
        ]
        if len(suffix_matches) == 1:
            mapping[ref] = suffix_matches[0]
            continue
        if suffix_matches:
            return None  # ambiguous
        if "." in key:
            short = key.rsplit(".", 1)[-1]
            if short in names:
                mapping[ref] = short
                continue
        return None
    return mapping


def resolve_refs(schema: Schema, expr: Expression) -> frozenset | None:
    """Stored column names the expression's references bind to in scope."""
    mapping = resolve_ref_mapping(schema, expr)
    return frozenset(mapping.values()) if mapping is not None else None


# -- search context ----------------------------------------------------------


class SearchContext:
    """Catalog/statistics access + per-search state shared by the rules.

    ``catalog`` needs ``table_statistics``/``get_table``; ``models``
    needs ``get_model`` (a :class:`~repro.relational.catalog.Catalog`
    or a :class:`~repro.relational.database.Database` provide all of
    them). Lookups failing degrade to default estimates, never errors.
    """

    def __init__(
        self,
        catalog=None,
        models=None,
        options: dict | None = None,
        join_search: str = "dp",
        dp_max_relations: int = DP_MAX_RELATIONS,
    ):
        self.catalog = catalog
        self.models = models if models is not None else catalog
        self.options = dict(options or {})
        self.join_search = join_search
        self.dp_max_relations = dp_max_relations
        self.memo: Memo | None = None
        self.stats: MemoStats = MemoStats()
        self.dp_seen: set[frozenset] = set()
        self.resolver: Callable = lambda _name: None
        self.predict_requirements: dict[tuple, set | None] = {}
        # id()-keyed state must pin the keyed objects: a temporary plan
        # freed mid-search could have its id recycled by a new node,
        # aliasing a stale estimate or a dp_seen skip onto it. The
        # estimate cache stores (plan, rows) and identity-checks on
        # read; ``pin`` keeps dp_seen's leaf objects alive.
        self._estimate_cache: dict[int, tuple[logical.LogicalOp, float]] = {}
        self._pinned: list[object] = []
        self._backend_profiles: dict[str, tuple[float, float]] | None = None

    # -- lifecycle ---------------------------------------------------------

    def prepare(self, plan: logical.LogicalOp) -> None:
        """Build per-search state from the input plan (scans, models)."""
        sources: list[tuple[TableStatistics, str | None]] = []

        def collect(root: logical.LogicalOp) -> None:
            for op in root.walk():
                if isinstance(op, (logical.Scan, ShardScan)):
                    stats = self.table_statistics(op.table_name)
                    if stats is not None:
                        sources.append((stats, op.alias))
                elif isinstance(op, Gather):
                    collect(op.fragment)
                elif isinstance(op, ShuffleJoin):
                    collect(op.left.fragment)
                    collect(op.right.fragment)

        collect(plan)
        self.resolver = column_stats_resolver(sources)
        self.dp_seen = set()
        self._estimate_cache = {}
        self._pinned = []
        try:
            self.predict_requirements = predict_requirements(plan, self)
        except Exception:
            self.predict_requirements = {}

    def record(self, rule_name: str, detail: str = "") -> None:
        self.stats.record_rule(rule_name, detail)

    # -- catalog access ----------------------------------------------------

    def table_statistics(self, name: str) -> TableStatistics | None:
        if self.catalog is None:
            return None
        try:
            return self.catalog.table_statistics(name)
        except Exception:
            return None

    def get_model(self, ref: str):
        if self.models is None:
            return None
        try:
            return self.models.get_model(ref)
        except Exception:
            return None

    def sharding(self, table_name: str):
        """The table's :class:`ShardedTable`, or ``None`` (not sharded,
        no catalog, or any lookup failure — never an error)."""
        if not self.options.get("enable_distributed", True):
            return None
        lookup = getattr(self.catalog, "sharding", None)
        if lookup is None:
            return None
        try:
            return lookup(table_name)
        except Exception:
            return None

    def shard_workers(self) -> int:
        """Worker-pool width the cost model assumes for fan-out plans."""
        from repro.concurrency import default_max_workers

        configured = self.options.get("shard_workers")
        return int(configured) if configured else default_max_workers()

    def column_constants(self, table_name: str) -> dict[str, float]:
        """Columns holding a single distinct value (derived predicates)."""
        if self.catalog is None:
            return {}
        try:
            table = self.catalog.get_table(table_name)
        except Exception:
            return {}
        return constant_columns(table)

    # -- model access ------------------------------------------------------

    def predict_flavor(self, op: logical.Predict) -> str:
        if op.flavor:
            return op.flavor
        entry = self.get_model(op.model_ref)
        return entry.flavor if entry is not None else "ml.pipeline"

    def pipeline_for(self, op: logical.Predict):
        """``(pipeline, feature_names)`` for an ml.pipeline Predict."""
        if op.payload is not None:
            if op.flavor not in (None, "ml.pipeline"):
                return None
            return op.payload, tuple(op.feature_names or ())
        entry = self.get_model(op.model_ref)
        if entry is None or entry.flavor != "ml.pipeline":
            return None
        features = op.feature_names or entry.metadata.get("feature_names")
        return entry.payload, tuple(features or ())

    def requirement_for(self, op: logical.Predict) -> set | None:
        key = (op.model_ref.lower(), (op.alias or "").lower())
        return self.predict_requirements.get(key, None)

    def backend_profile(self, backend: str | None) -> tuple[float, float]:
        """``(setup_cost, row_scale)`` for a scoring backend choice.

        Calibrated lazily (and persisted in the catalog) by
        :mod:`repro.tensor.backends.calibrate`; the interpreter is the
        1.0 reference and any failure degrades to the defaults.
        """
        if not backend or backend == "numpy":
            return (0.0, 1.0)
        if self._backend_profiles is None:
            try:
                from repro.tensor.backends import calibrate

                self._backend_profiles = calibrate.profiles(self.catalog)
            except Exception:
                from repro.tensor.backends.calibrate import DEFAULT_PROFILES

                self._backend_profiles = dict(DEFAULT_PROFILES)
        return self._backend_profiles.get(backend, (0.0, 1.0))

    # -- tree-level estimation (leaves inside the join-order rule) ---------

    def pin(self, objs) -> None:
        """Keep objects alive while their ids key ``dp_seen`` entries."""
        self._pinned.extend(objs)

    def estimate_tree(self, plan: logical.LogicalOp) -> float:
        cached = self._estimate_cache.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        child_rows = [self.estimate_tree(c) for c in plan.children]
        rows = estimate_operator_rows(plan, child_rows, self)
        self._estimate_cache[id(plan)] = (plan, rows)
        return rows

    def cost_tree(self, plan: logical.LogicalOp) -> float:
        child_rows = [self.estimate_tree(c) for c in plan.children]
        local = operator_cost(plan, self.estimate_tree(plan), child_rows, self)
        return local + sum(self.cost_tree(c) for c in plan.children)


def _suffix_refs(exprs) -> set[str]:
    names: set[str] = set()
    for expr in exprs:
        if expr is None:
            continue
        for ref in expr.columns():
            names.add(ref.lower())
            names.add(ref.split(".")[-1].lower())
    return names


def predict_requirements(
    plan: logical.LogicalOp, ctx: SearchContext
) -> dict[tuple, set | None]:
    """Columns the query needs *above* each Predict, keyed by model+alias.

    Computed once on the input plan (before any rewrite) so the
    projection-pushdown rule can insert a data projection below a
    scoring operator without seeing its consumers — the memo's
    alternatives share groups, so "above" is otherwise undefined.
    ``None`` means everything must be kept (an unanalyzable consumer).
    """
    out: dict[tuple, set | None] = {}

    def merge(key: tuple, required: set | None) -> None:
        if key in out:
            if out[key] is None or required is None:
                out[key] = None
            else:
                out[key] |= required
        else:
            out[key] = None if required is None else set(required)

    def walk(op: logical.LogicalOp, required: set | None) -> None:
        if isinstance(op, logical.Project):
            if required is None:
                chosen = op.items
            else:
                chosen = tuple(
                    (expr, name)
                    for expr, name in op.items
                    if name.lower() in required
                    or name.split(".")[-1].lower() in required
                )
            walk(op.child, _suffix_refs(e for e, _ in chosen))
            return
        if isinstance(op, logical.Filter):
            below = (
                None
                if required is None
                else required | _suffix_refs([op.predicate])
            )
            walk(op.child, below)
            return
        if isinstance(op, logical.Join):
            below = (
                None
                if required is None
                else required | _suffix_refs([op.condition])
            )
            walk(op.left, below)
            walk(op.right, below)
            return
        if isinstance(op, logical.Aggregate):
            needed = _suffix_refs(
                [e for e, _ in op.group_by]
                + [arg for _f, arg, _a in op.aggregates if arg is not None]
            )
            walk(op.child, needed)
            return
        if isinstance(op, logical.OrderBy):
            below = (
                None
                if required is None
                else required | _suffix_refs([e for e, _ in op.keys])
            )
            walk(op.child, below)
            return
        if isinstance(op, (logical.Limit, logical.Distinct)):
            walk(op.child, required)
            return
        if isinstance(op, logical.UnionAll):
            for branch in op.branches:
                walk(branch, required)
            return
        if isinstance(op, logical.Predict):
            key = (op.model_ref.lower(), (op.alias or "").lower())
            merge(key, required)
            resolved = ctx.pipeline_for(op)
            features = resolved[1] if resolved else None
            if required is None or not features:
                below = None
            else:
                outputs: set[str] = set()
                for name, _dtype in op.output_columns:
                    outputs.add(name.lower())
                    if op.alias:
                        outputs.add(f"{op.alias}.{name}".lower())
                below = (required - outputs) | {
                    f.split(".")[-1].lower() for f in features
                } | {f.lower() for f in features}
            walk(op.child, below)
            return
        # Scan / InlineTable / unknown shapes: nothing below.

    walk(plan, None)
    return out


# -- rules -------------------------------------------------------------------


class MemoRule:
    """One exploration rule: a plan pattern → alternative sub-plans.

    ``substitute=True`` marks a normalization rule: its output replaces
    the matched expression (which is disabled for extraction) instead
    of competing on cost. Filter merging and predicate pushdown are
    substitutions — the executor's zone-map and morsel-parallel fast
    paths key on the single-``Filter(Scan)`` shape they establish, a
    benefit the per-operator cost model cannot see. Rules that change
    *how* work is done (join order, model rewrites, inlining) stay
    competitive.
    """

    name: str = ""
    substitute: bool = False

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__

    def apply(
        self, plan: logical.LogicalOp, ctx: SearchContext
    ) -> list[logical.LogicalOp]:
        raise NotImplementedError


class MergeConsecutiveFiltersRule(MemoRule):
    """``filter(filter(x))`` → one conjunctive filter."""

    name = "MergeConsecutiveFilters"
    substitute = True

    def apply(self, plan, ctx):
        if not (
            isinstance(plan, logical.Filter)
            and isinstance(plan.child, logical.Filter)
        ):
            return []
        merged = logical.Filter(
            plan.child.child, plan.child.predicate & plan.predicate
        )
        ctx.record(self.name)
        return [merged]


class PredicatePushdownRule(MemoRule):
    """Sink WHERE conjuncts below joins and scoring operators.

    The relational pushdown pass of the old ``PhysicalPlanner``,
    re-registered as a memo rule: each conjunct is resolved in its
    original scope once and placed at the deepest operator exposing
    exactly those stored columns, so reordering can never re-bind a
    bare reference (see ``resolve_ref_mapping``).
    """

    name = "PredicatePushdown"
    substitute = True

    def apply(self, plan, ctx):
        if not (
            isinstance(plan, logical.Filter)
            and isinstance(plan.child, (logical.Join, logical.Predict))
        ):
            return []
        residual: list[Expression] = []
        child = plan.child
        trace: list[str] = []
        for conjunct in conjuncts(plan.predicate):
            resolved = resolve_refs(child.schema, conjunct)
            sunk = (
                self._sink(child, conjunct, resolved, trace)
                if resolved is not None
                else None
            )
            if sunk is None:
                residual.append(conjunct)
            else:
                child = sunk
        if child is plan.child:
            return []
        for kind in trace:
            ctx.record(kind, "pushed 1 conjunct")
        if residual:
            return [logical.Filter(child, conjoin(residual))]
        return [child]

    def _sink(
        self,
        plan: logical.LogicalOp,
        conjunct: Expression,
        resolved: frozenset,
        trace: list[str],
    ) -> logical.LogicalOp | None:
        """Push one conjunct down, guided by its resolved stored columns."""
        if not resolved <= stored_names(plan.schema):
            return None
        if isinstance(plan, logical.Join):
            # LEFT joins only accept pushdown into the preserved side;
            # filtering the null-padded side changes results.
            allow_left = plan.kind in ("INNER", "CROSS", "LEFT")
            allow_right = plan.kind in ("INNER", "CROSS")
            if allow_left:
                sunk = self._sink(plan.left, conjunct, resolved, trace)
                if sunk is not None:
                    trace.append("PushFilterIntoJoin")
                    return plan.with_children((sunk, plan.right))
            if allow_right:
                sunk = self._sink(plan.right, conjunct, resolved, trace)
                if sunk is not None:
                    trace.append("PushFilterIntoJoin")
                    return plan.with_children((plan.left, sunk))
            if plan.kind in ("INNER", "CROSS"):
                # Spans both sides: merge into the join condition.
                condition = (
                    conjunct
                    if plan.condition is None
                    else conjoin([plan.condition, conjunct])
                )
                trace.append("PushFilterIntoJoin")
                return logical.Join(plan.left, plan.right, "INNER", condition)
            return None
        if isinstance(plan, logical.Predict):
            # Score fewer rows: a conjunct that only touches input
            # columns moves below the model call. Any reference that
            # could mean a prediction output (its alias, or a bare name
            # colliding with an output column) keeps the filter above.
            output_names = {name.lower() for name, _ in plan.output_columns}
            for ref in conjunct.columns():
                if ref.split(".")[-1].lower() in output_names:
                    return None
                if plan.alias and ref.lower().startswith(
                    plan.alias.lower() + "."
                ):
                    return None
            sunk = self._sink(plan.child, conjunct, resolved, trace)
            if sunk is not None:
                trace.append("PushFilterBelowPredict")
                return plan.with_children((sunk,))
            return None
        if isinstance(plan, logical.Filter):
            # Sink past this filter only when the conjunct can go
            # strictly deeper (into a join side or below a model call);
            # over a leaf, merge into ONE filter — stacked filters
            # would hide the Filter(Scan) shape from zone-map pruning
            # and the morsel-parallel PREDICT path.
            if isinstance(plan.child, (logical.Join, logical.Predict)):
                sunk = self._sink(plan.child, conjunct, resolved, trace)
                if sunk is not None:
                    return logical.Filter(sunk, plan.predicate)
            return logical.Filter(plan.child, plan.predicate & conjunct)
        return logical.Filter(plan, conjunct)


def collect_join_chain(plan: logical.Join):
    """Flatten an INNER/CROSS chain into leaves + resolved ON conjuncts.

    Every ON conjunct is resolved to stored column names in the scope
    of the join that originally carried it; re-placement then follows
    those stored names only (a bare ref that was unambiguous at its
    join may become ambiguous in a reordered scope, so refs are
    rewritten to their resolved stored names up front).
    """
    leaves: list[logical.LogicalOp] = []
    conditions: list[tuple[Expression, frozenset | None]] = []

    def collect(op: logical.LogicalOp) -> None:
        if isinstance(op, logical.Join) and op.kind in ("INNER", "CROSS"):
            collect(op.left)
            collect(op.right)
            if op.condition is not None:
                for conjunct in conjuncts(op.condition):
                    mapping = resolve_ref_mapping(op.schema, conjunct)
                    if mapping is None:
                        conditions.append((conjunct, None))
                        continue
                    qualified = conjunct.substitute(
                        {
                            ref: ColumnRef(stored)
                            for ref, stored in mapping.items()
                            if ref.lower() != stored
                        }
                    )
                    conditions.append((qualified, frozenset(mapping.values())))
        else:
            leaves.append(op)

    collect(plan)
    return leaves, conditions


def place_single_relation_conjuncts(leaves, leaf_names, conditions):
    """ON conjuncts over one relation become leaf filters (selectivity);
    the rest split into placeable (``unused``) and residual conjuncts."""
    unused: list[tuple[Expression, frozenset]] = []
    unplaceable: list[Expression] = []
    for conjunct, resolved in conditions:
        if resolved is None:
            unplaceable.append(conjunct)
            continue
        for i, names in enumerate(leaf_names):
            if resolved <= names:
                leaf = leaves[i]
                if isinstance(leaf, logical.Filter):
                    # Merge, keeping a single Filter(Scan) so the
                    # executor's pruning fast path still matches.
                    leaves[i] = logical.Filter(
                        leaf.child, leaf.predicate & conjunct
                    )
                else:
                    leaves[i] = logical.Filter(leaf, conjunct)
                break
        else:
            unused.append((conjunct, resolved))
    return unused, unplaceable


class JoinOrderRule(MemoRule):
    """Selinger-style DP join ordering inside the memo (bushy allowed).

    Chains of ``MIN_JOIN_RELATIONS``..``dp_max_relations`` INNER/CROSS
    joins are priced exhaustively over connected-by-cost subsets; every
    subset's best sub-plan is registered as a memo group. Larger chains
    fall back to the PR 2 greedy seed (cheapest connected pair, then
    grow by minimal intermediate). ``legacy`` mode reproduces the PR 2
    planner exactly: greedy up to 6 relations, FROM order beyond.
    """

    name = "DPJoinOrder"

    def apply(self, plan, ctx):
        if not isinstance(plan, logical.Join) or plan.kind not in (
            "INNER",
            "CROSS",
        ):
            return []
        leaves, conditions = collect_join_chain(plan)
        n = len(leaves)
        if n < MIN_JOIN_RELATIONS:
            return []
        if ctx.join_search == "legacy" and n > LEGACY_MAX_RELATIONS:
            return []
        chain_key = frozenset(id(leaf) for leaf in leaves)
        if chain_key in ctx.dp_seen:
            return []
        original_leaves = list(leaves)
        ctx.pin(leaves)
        ctx.dp_seen.add(chain_key)
        leaf_names = [stored_names(leaf.schema) for leaf in leaves]
        unused, unplaceable = place_single_relation_conjuncts(
            leaves, leaf_names, conditions
        )
        # Leaf-filter placement rebuilt some leaves: mark the placed
        # chain too so sub-joins of the produced tree are not re-run.
        ctx.pin(leaves)
        ctx.dp_seen.add(frozenset(id(leaf) for leaf in leaves))
        estimates = [max(1.0, ctx.estimate_tree(leaf)) for leaf in leaves]
        use_dp = ctx.join_search == "dp" and n <= ctx.dp_max_relations
        if use_dp:
            tree = self._dp(
                leaves, leaf_names, estimates, unused, ctx, original_leaves
            )
            ctx.stats.dp_relations = max(ctx.stats.dp_relations, n)
            leftover = list(unplaceable)
        else:
            if ctx.join_search == "dp":
                ctx.stats.dp_fallbacks += 1
                detail = f"{n} relations (above DP size guard)"
            else:
                detail = f"{n} relations ({ctx.join_search} mode)"
            tree = self._greedy(leaves, leaf_names, estimates, unused, ctx)
            ctx.record("GreedyJoinOrder", detail)
            leftover = unplaceable + [conjunct for conjunct, _ in unused]
        if leftover:
            tree = logical.Filter(tree, conjoin(leftover))
        return [tree]

    # -- exhaustive DP ------------------------------------------------------

    def _dp(self, leaves, leaf_names, estimates, unused, ctx, original_leaves):
        n = len(leaves)
        full = (1 << n) - 1
        selectivities = [
            join_condition_selectivity(conjunct, ctx.resolver)
            for conjunct, _resolved in unused
        ]
        names: dict[int, frozenset] = {}
        rows: dict[int, float] = {}
        cost: dict[int, float] = {}
        plan: dict[int, logical.LogicalOp] = {}
        for i in range(n):
            mask = 1 << i
            names[mask] = leaf_names[i]
            rows[mask] = estimates[i]
            cost[mask] = ctx.cost_tree(leaves[i])
            plan[mask] = leaves[i]
        subsets = 0
        pruned = 0
        for mask in sorted(range(1, full + 1), key=int.bit_count):
            if mask in plan:
                continue  # single leaf
            members = [i for i in range(n) if mask & (1 << i)]
            mask_names = frozenset().union(*(leaf_names[i] for i in members))
            names[mask] = mask_names
            # Canonical cardinality: leaf product, damped by every ON
            # conjunct fully contained in this subset — identical for
            # every split, the memo-group property DP relies on.
            estimate = 1.0
            for i in members:
                estimate *= estimates[i]
            for s, (_conjunct, resolved) in zip(selectivities, unused):
                if resolved <= mask_names:
                    estimate *= s if s is not None else DEFAULT_SELECTIVITY
            rows[mask] = max(1.0, estimate)
            subsets += 1

            def split_conjuncts(sub_names, rest_names):
                return [
                    conjunct
                    for conjunct, resolved in unused
                    if resolved <= mask_names
                    and not resolved <= sub_names
                    and not resolved <= rest_names
                ]

            best: tuple[float, int] | None = None
            sub = (mask - 1) & mask
            while sub:
                rest = mask ^ sub
                if sub < rest:
                    sub = (sub - 1) & mask
                    continue  # each unordered split once
                if rest in cost and sub in cost:
                    partial = cost[sub] + cost[rest]
                    if best is not None and partial >= best[0]:
                        pruned += 1
                    else:
                        attached = split_conjuncts(names[sub], names[rest])
                        total = partial + hash_join_cost(
                            rows[sub],
                            rows[rest],
                            "INNER" if attached else "CROSS",
                            conjoin(attached) if attached else None,
                            ctx.resolver,
                        )
                        if best is None or total < best[0]:
                            best = (total, sub)
                sub = (sub - 1) & mask
            assert best is not None
            _total, sub = best
            rest = mask ^ sub
            attached = order_by_selectivity(
                split_conjuncts(names[sub], names[rest]), ctx.resolver
            )
            # Hash joins build on the right input: smaller side right.
            left_mask, right_mask = (
                (sub, rest) if rows[sub] >= rows[rest] else (rest, sub)
            )
            joined = logical.Join(
                plan[left_mask],
                plan[right_mask],
                "INNER" if attached else "CROSS",
                conjoin(attached) if attached else None,
            )
            cost[mask] = best[0]
            plan[mask] = joined
            if ctx.memo is not None and mask != full:
                # DP inside the memo: each *proper* subset's best
                # sub-plan becomes a group, so shared sub-joins dedup
                # across alternatives. The full-mask tree is NOT
                # registered here — it is the rule's alternative, and
                # pre-interning it would make ``add_expression`` treat
                # the alternative as a duplicate of its own group.
                ctx.memo.register(joined)
            # Mark the subset under both leaf identities (pre- and
            # post-filter-placement): the FROM-order tree's nested
            # sub-chains reference the original leaves, and skipping
            # them here is what makes DP run once per chain instead of
            # once per prefix.
            ctx.dp_seen.add(frozenset(id(leaves[i]) for i in members))
            ctx.dp_seen.add(
                frozenset(id(original_leaves[i]) for i in members)
            )
        ctx.stats.dp_subsets += subsets
        ctx.stats.branches_pruned += pruned
        ctx.record(
            self.name,
            f"{n} relations, {subsets} subsets, {pruned} splits pruned",
        )
        return plan[full]

    # -- greedy fallback (the PR 2 seed) -------------------------------------

    def _greedy(self, leaves, leaf_names, estimates, unused, ctx):
        resolve = ctx.resolver
        remaining = set(range(len(leaves)))

        def applicable_between(names_a, names_b):
            return [
                (conjunct, resolved)
                for conjunct, resolved in unused
                if resolved <= (names_a | names_b)
                and not resolved <= names_a
                and not resolved <= names_b
            ]

        def joined_estimate(rows_a, rows_b, applicable):
            joined = rows_a * rows_b
            for condition, _resolved in applicable:
                selectivity = join_condition_selectivity(condition, resolve)
                joined *= (
                    selectivity
                    if selectivity is not None
                    else DEFAULT_SELECTIVITY
                )
            return joined

        # Seed with the cheapest connected *pair* — starting from the
        # single smallest relation can force an expensive first join
        # when the small relation only connects to a big one.
        seed = None
        for i in range(len(leaves)):
            for j in range(i + 1, len(leaves)):
                applicable = applicable_between(leaf_names[i], leaf_names[j])
                joined = joined_estimate(estimates[i], estimates[j], applicable)
                key = (0 if applicable else 1, joined)
                if seed is None or key < seed[0]:
                    seed = (key, i, j, applicable)
        assert seed is not None
        (_seed_rank, seed_rows), left_i, right_i, seed_conditions = seed
        # Hash joins build on the right input: put the smaller side there.
        if estimates[left_i] < estimates[right_i]:
            left_i, right_i = right_i, left_i

        def attach(left, right, applicable):
            if applicable:
                for used in applicable:
                    unused.remove(used)
                ordered = order_by_selectivity(
                    [conjunct for conjunct, _ in applicable], resolve
                )
                return logical.Join(left, right, "INNER", conjoin(ordered))
            return logical.Join(left, right, "CROSS", None)

        tree = attach(leaves[left_i], leaves[right_i], seed_conditions)
        tree_names = leaf_names[left_i] | leaf_names[right_i]
        tree_rows = max(1.0, seed_rows)
        remaining -= {left_i, right_i}
        while remaining:
            best = None
            for i in remaining:
                applicable = applicable_between(tree_names, leaf_names[i])
                joined = joined_estimate(tree_rows, estimates[i], applicable)
                # Connected candidates strictly outrank cross joins.
                key = (0 if applicable else 1, joined)
                if best is None or key < best[0]:
                    best = (key, i, applicable)
            assert best is not None
            (_rank, joined_rows), chosen, applicable = best
            tree = attach(tree, leaves[chosen], applicable)
            tree_names |= leaf_names[chosen]
            tree_rows = max(1.0, joined_rows)
            remaining.remove(chosen)
        return tree


class PredicateBasedModelPruningRule(MemoRule):
    """Prune model pipelines using predicate (and statistics) facts.

    The §4.1 data-to-model rewrite re-registered as a memo rule: facts
    from filters *below* the scoring operator (placed there by
    ``PredicatePushdown``, so the two rules compose inside the memo)
    prune tree branches, fold constants, and narrow the input columns.
    """

    name = "PredicateBasedModelPruning"

    def apply(self, plan, ctx):
        if not isinstance(plan, logical.Predict):
            return []
        resolved = ctx.pipeline_for(plan)
        if resolved is None:
            return []
        pipeline, feature_names = resolved
        if not feature_names:
            return []
        constants: dict[str, float] = {}
        bounds: dict[str, tuple[float, float]] = {}
        for op in plan.child.walk():
            if not isinstance(op, logical.Filter):
                continue
            for name, value in equality_constants(op.predicate).items():
                if isinstance(value, (int, float)):
                    constants[name.lower()] = float(value)
            for name, interval in range_bounds(op.predicate).items():
                low, high = bounds.get(name.lower(), (-math.inf, math.inf))
                bounds[name.lower()] = (
                    max(low, interval[0]),
                    min(high, interval[1]),
                )
        if ctx.options.get("derive_statistics_predicates"):
            for op in plan.child.walk():
                if isinstance(op, logical.Scan):
                    for name, value in ctx.column_constants(
                        op.table_name
                    ).items():
                        constants.setdefault(name, value)
        index_of = {name.lower(): i for i, name in enumerate(feature_names)}
        facts = ColumnFacts()
        for name, value in constants.items():
            if name in index_of:
                facts.constants[index_of[name]] = value
        for name, interval in bounds.items():
            if name in index_of and index_of[name] not in facts.constants:
                facts.bounds[index_of[name]] = interval
        if facts.empty:
            return []
        try:
            result = apply_predicate_pruning(pipeline, facts)
        except UnsupportedRewrite:
            return []
        before = result.detail.get("nodes_before")
        after = result.detail.get("nodes_after")
        shrank = before is not None and after is not None and after < before
        folded = result.detail.get("features_folded", 0) > 0
        narrowed = len(result.kept_inputs) < len(feature_names)
        if not (shrank or folded or narrowed):
            return []
        kept = tuple(feature_names[i] for i in result.kept_inputs)
        ctx.record(
            self.name,
            f"{result.detail} kept {len(kept)}/{len(feature_names)} inputs",
        )
        return [
            logical.Predict(
                plan.child,
                plan.model_ref,
                plan.output_columns,
                plan.alias,
                plan.batch_size,
                "ml.pipeline",
                result.pipeline,
                kept,
                plan.extra,
            )
        ]


class BackendChoiceRule(MemoRule):
    """Offer compiled scoring backends as physical Predict alternatives.

    For every Predict whose model the tensor layer can execute compiled
    (a ``tensor.graph`` payload, or a stored ``ml.pipeline`` the NN
    translator :func:`~repro.tensor.converters.supports`), emit one
    alternative per *available* backend, tagged in ``extra``. The
    alternatives then compete under :meth:`SearchContext.backend_profile`
    costs — small batches keep the untagged interpreter expression,
    large scans flip to fused/JIT. Inline payloads (plan-embedded
    pipelines, possibly rewritten by other rules) are eligible too: the
    executors compile them once per resolved scorer and the plan object
    pins the payload identity for the compiled cache.
    """

    name = "BackendChoice"

    def apply(self, plan, ctx):
        if not isinstance(plan, logical.Predict):
            return []
        if plan.extra and "backend" in dict(plan.extra):
            return []
        flavor = ctx.predict_flavor(plan)
        if flavor == "tensor.graph":
            eligible = True
        elif flavor == "ml.pipeline":
            payload = plan.payload
            if payload is None:
                resolved = ctx.pipeline_for(plan)
                if resolved is None:
                    return []
                payload = resolved[0]
            try:
                from repro.tensor.converters import supports

                eligible = supports(payload)
            except Exception:
                eligible = False
        else:
            eligible = False
        if not eligible:
            return []
        try:
            from repro.tensor.backends import available_compiled_backends

            backends = available_compiled_backends()
        except Exception:
            return []
        alternatives = []
        for backend in backends:
            ctx.record(self.name, f"{plan.model_ref}->{backend}")
            alternatives.append(
                logical.Predict(
                    plan.child,
                    plan.model_ref,
                    plan.output_columns,
                    plan.alias,
                    plan.batch_size,
                    plan.flavor,
                    plan.payload,
                    plan.feature_names,
                    plan.extra + (("backend", backend),),
                )
            )
        return alternatives


class ModelProjectionPushdownRule(MemoRule):
    """Narrow the model to its useful features; project the data early.

    The §4.1 model-to-data rewrite as a memo rule. The data projection
    below the scoring operator keeps the narrowed features plus every
    column the query needs above the Predict (precomputed by
    :func:`predict_requirements`); ``insert_projection=False`` narrows
    only the model, preserving the executor's ``Predict(Filter(Scan))``
    morsel-parallel fast path for the SQL planner.
    """

    name = "ModelProjectionPushdown"

    def __init__(self, insert_projection: bool = True):
        self.insert_projection = insert_projection

    def apply(self, plan, ctx):
        if not isinstance(plan, logical.Predict):
            return []
        resolved = ctx.pipeline_for(plan)
        if resolved is None:
            return []
        pipeline, feature_names = resolved
        if not feature_names:
            return []
        tolerance = float(ctx.options.get("lossy_pushdown_tolerance", 0.0))
        try:
            result = apply_projection_pushdown(pipeline, tolerance)
        except UnsupportedRewrite:
            return []
        narrowed_inputs = len(result.kept_inputs) < len(feature_names)
        dropped = result.detail.get("features_dropped", 0) > 0
        if not (narrowed_inputs or dropped):
            return []
        new_features = tuple(feature_names[i] for i in result.kept_inputs)
        child = plan.child
        if narrowed_inputs and self.insert_projection:
            child = self._project_child(plan, child, new_features, ctx)
        ctx.record(
            self.name,
            f"kept {len(new_features)}/{len(feature_names)} inputs "
            f"({result.detail})",
        )
        return [
            logical.Predict(
                child,
                plan.model_ref,
                plan.output_columns,
                plan.alias,
                plan.batch_size,
                "ml.pipeline",
                result.pipeline,
                new_features,
                plan.extra,
            )
        ]

    @staticmethod
    def _project_child(plan, child, features, ctx):
        required = ctx.requirement_for(plan)
        if required is None:
            return child  # unanalyzable consumers: keep every column
        keep = set(required) | {f.lower() for f in features} | {
            f.split(".")[-1].lower() for f in features
        }
        items = tuple(
            (ColumnRef(column.name), column.name)
            for column in child.schema
            if column.name.lower() in keep
            or column.name.split(".")[-1].lower() in keep
        )
        if not items or len(items) >= len(child.schema):
            return child
        return logical.Project(child, items)


class ModelInliningRule(MemoRule):
    """Replace small tree/linear pipelines with inline SQL expressions.

    The §4.2 predictor-to-expression rewrite as a memo rule: the
    inlined projection is an *alternative* in the scoring operator's
    group, so in-process scoring and SQL inlining compete under the
    one cost model instead of being picked by a strategy enumeration.
    """

    name = "ModelInlining"

    def __init__(self, max_tree_nodes: int = 255):
        self.max_tree_nodes = max_tree_nodes

    def apply(self, plan, ctx):
        if not isinstance(plan, logical.Predict):
            return []
        resolved = ctx.pipeline_for(plan)
        if resolved is None:
            return []
        pipeline, feature_names = resolved
        if not feature_names:
            return []
        from repro.core.optimizer.rules import inlining as ir_inlining

        _, predictor = split_pipeline(pipeline)
        if not isinstance(predictor, ir_inlining._INLINABLE):
            return []
        total_nodes = ir_inlining._total_tree_nodes(predictor)
        if total_nodes is not None and total_nodes > self.max_tree_nodes:
            return []  # CASE expression would explode; leave to NN path
        try:
            expression = pipeline_to_expression(pipeline, list(feature_names))
        except UnsupportedRewrite:
            return []
        child = plan.child
        items = [
            (ColumnRef(column.name), column.name) for column in child.schema
        ]
        for out_name, _dtype in plan.output_columns:
            qualified = (
                f"{plan.alias}.{out_name}" if plan.alias else out_name
            )
            items.append((expression, qualified))
        ctx.record(
            self.name,
            f"inlined {type(predictor).__name__} "
            f"({total_nodes if total_nodes is not None else 'linear'} nodes)",
        )
        return [logical.Project(child, tuple(items))]


class ShardedExecutionRule(MemoRule):
    """Scatter-gather alternatives for plans over sharded tables.

    Three shapes gain a distributed alternative, all built from the
    same single-table pipeline fragment (``Filter``/``Project``/
    ``Predict`` over a ``Scan`` of a sharded table, rebuilt around a
    :class:`ShardScan` leaf):

    * ``Filter(Scan)`` / ``Predict(...(Scan))`` → ``Gather(fragment)``
      — the fragment runs once per surviving shard on the process
      pool; PREDICT-over-scan escapes the in-process GIL ceiling.
    * ``Aggregate(...)`` → ``Project(AggregateFinal(Gather(
      AggregatePartial(fragment))))`` — the classic partial→final
      split: shards pre-aggregate locally (COUNT/SUM/MIN/MAX combine
      directly; AVG decomposes into SUM+COUNT re-divided above), so
      only group rows cross the process boundary. Large gathered
      intermediates additionally get a :class:`Repartition` exchange
      below the final aggregate, whose key-disjoint buckets the
      executor aggregates in parallel.

    Routing happens here, at plan time: shard statistics (zone maps
    one level up) plus exact hash/range routing on shard-key equality
    prune shards before anything is dispatched, and the pruned
    ``shard_ids`` are recorded on the ``Gather`` — EXPLAIN, the
    executor, and serving plan caches all report that decision.
    """

    name = "ShardedScatterGather"

    #: Gathered-row estimate above which the final aggregate gets a
    #: Repartition exchange (overridable via ``repartition_min_rows``).
    REPARTITION_MIN_ROWS = 50_000

    #: Allowed fragment interior operators (leaf must be a Scan).
    _PIPELINE_OPS = (logical.Filter, logical.Project, logical.Predict)

    def apply(self, plan, ctx):
        if not ctx.options.get("enable_distributed", True):
            return []
        if isinstance(plan, logical.Aggregate):
            return self._aggregate_alternative(plan, ctx)
        if isinstance(plan, (logical.Predict, logical.Filter)):
            return self._pipeline_alternative(plan, ctx)
        return []

    # -- fragment construction ---------------------------------------------

    def _fragmentize(self, plan, ctx):
        """``(fragment, sharded, predicate)`` for a distributable
        single-table pipeline, else ``None``."""
        scan = plan
        predicates: list[Expression] = []
        while isinstance(scan, self._PIPELINE_OPS):
            if isinstance(scan, logical.Filter):
                predicates.append(scan.predicate)
            scan = scan.child
        if not isinstance(scan, logical.Scan):
            return None
        sharded = ctx.sharding(scan.table_name)
        if sharded is None or sharded.num_shards < 2:
            return None
        leaf = ShardScan(
            scan.table_name,
            scan.base_schema,
            scan.alias,
            sharded.num_shards,
        )

        def rebuild(op):
            if op is scan:
                return leaf
            return op.with_children(tuple(rebuild(c) for c in op.children))

        fragment = rebuild(plan)
        if not fragment_is_serializable(fragment, ctx.predict_flavor):
            return None
        predicate = conjoin(predicates) if predicates else None
        return fragment, sharded, predicate

    def _route(self, sharded, predicate):
        """``(shard_ids, pruned_by)`` under shard statistics."""
        keep = None
        if predicate is not None:
            try:
                keep = surviving_shards(sharded, predicate)
            except Exception:
                keep = None
        if keep is None:
            return tuple(range(sharded.num_shards)), "none"
        shard_ids = tuple(int(i) for i in range(len(keep)) if keep[i])
        pruned = "zone-map" if len(shard_ids) < sharded.num_shards else "none"
        return shard_ids, pruned

    def _gather(self, fragment, sharded, predicate, ctx):
        shard_ids, pruned_by = self._route(sharded, predicate)
        gather = Gather(
            sharded.table_name,
            fragment,
            sharded.spec.key,
            shard_ids,
            sharded.num_shards,
            pruned_by,
        )
        ctx.record(
            self.name,
            f"{sharded.table_name}: {len(shard_ids)}/{sharded.num_shards} "
            f"shards ({pruned_by})",
        )
        return gather

    # -- pipeline shapes ----------------------------------------------------

    def _pipeline_alternative(self, plan, ctx):
        result = self._fragmentize(plan, ctx)
        if result is None:
            return []
        fragment, sharded, predicate = result
        return [self._gather(fragment, sharded, predicate, ctx)]

    # -- partial→final aggregates -------------------------------------------

    def _aggregate_alternative(self, plan, ctx):
        if any(
            func not in logical.AGGREGATE_FUNCTIONS
            for func, _arg, _alias in plan.aggregates
        ):
            return []
        result = self._fragmentize(plan.child, ctx)
        if result is None:
            return []
        fragment_child, sharded, predicate = result
        split = _split_aggregates(plan.aggregates, bool(plan.group_by))
        if split is None:
            return []
        partial_aggs, final_aggs, items = split
        partial = logical.Aggregate(
            fragment_child, plan.group_by, partial_aggs
        )
        if not fragment_is_serializable(partial, ctx.predict_flavor):
            return []
        gathered = self._gather(partial, sharded, predicate, ctx)
        return [_final_aggregate_over(gathered, plan, split, ctx)]


class ShardJoinRule(MemoRule):
    """Distributed alternatives for equi-joins over sharded tables.

    Two strategies, chosen by layout compatibility:

    * **co-located** — both sides are sharded *by the equi-join key*
      under compatible specs (same hash modulus and key hash class, or
      identical range boundaries), so shard *i* of the left can only
      match shard *i* of the right: the rule offers a
      ``Gather(join fragment, join="colocated")`` where each worker
      joins its shard pair locally. The whole pipeline *above* the join
      (filters, projections, PREDICT) rides inside the fragment when it
      serializes, so model scoring runs inside the joined pipeline on
      the workers.
    * **shuffle** — layouts are incompatible (different shard counts,
      range⋈hash, key mismatch, or one side unsharded): the rule
      offers a :class:`ShuffleJoin` whose sides hash-partition on the
      join key into worker-owned buckets; bucket *k* ⋈ bucket *k* runs
      in parallel. Offered only when at least one side is genuinely
      sharded (otherwise the in-process join is already optimal).

    Both strategies accept INNER, LEFT, and FULL equi-joins (the binder
    normalizes RIGHT to LEFT by swapping inputs) with at least one
    column-to-column equality conjunct; residual conjuncts evaluate
    inside the per-worker joins exactly as the coordinator's hash join
    would evaluate them, and outer joins NULL-extend unmatched rows
    per shard pair / bucket, which concatenates to the global result
    because every preserved row lives in exactly one pair.

    An ``Aggregate`` directly above a distributable join chain
    additionally gains a *multi-stage* alternative: the partial half of
    the classic partial→final aggregate split rides inside the worker
    round-trip (inside the co-located fragment, or as a post-join
    ``stages`` pipeline on the shuffle exchange), so workers ship group
    rows instead of join output and the coordinator only merges.
    """

    name = "ShardJoin"

    _JOIN_KINDS = ("INNER", "LEFT", "FULL")
    _PIPELINE_OPS = (logical.Filter, logical.Project, logical.Predict)

    def apply(self, plan, ctx):
        if not ctx.options.get("enable_distributed", True):
            return []
        if isinstance(plan, logical.Aggregate):
            if not ctx.options.get("enable_staged_fragments", True):
                # Ablation knob: fall back to gathering raw join output
                # and aggregating on the coordinator.
                return []
            return self._aggregate_over_join(plan, ctx)
        chain, join = self._join_chain(plan)
        if join is None:
            return []
        sides = self._join_sides(join, ctx)
        if sides is None:
            return []
        left_side, right_side, left_key, right_key = sides
        colocated = self._colocated(
            chain, join, left_side, right_side, left_key, right_key, ctx
        )
        if colocated is not None:
            return [colocated]
        if plan is join:
            # The shuffle alternative lives in the bare join's group;
            # pipelines above it compose through the memo.
            shuffled = self._shuffle(
                join, left_side, right_side, left_key, right_key, ctx
            )
            if shuffled is not None:
                return [shuffled]
        return []

    def _join_chain(self, plan):
        """``(pipeline chain above the join, join)`` or ``(.., None)``."""
        chain: list[logical.LogicalOp] = []
        node = plan
        while isinstance(node, self._PIPELINE_OPS):
            chain.append(node)
            node = node.child
        if not isinstance(node, logical.Join):
            return chain, None
        if node.kind not in self._JOIN_KINDS or node.condition is None:
            return chain, None
        return chain, node

    def _join_sides(self, join, ctx):
        """Resolved equi-keys and per-side pipelines, or ``None``."""
        keys = self._equi_keys(join)
        if keys is None:
            return None
        left_key, right_key = keys
        left_side = self._side(join.left, ctx)
        right_side = self._side(join.right, ctx)
        if left_side is None or right_side is None:
            return None
        return left_side, right_side, left_key, right_key

    # -- aggregates riding the join round-trip ------------------------------

    def _aggregate_over_join(self, plan, ctx):
        """Partial→final split where the partial runs on the workers.

        ``Aggregate(pipeline(Join))`` becomes ``Project(AggregateFinal(
        [Repartition](exchange)))`` where the exchange is either the
        co-located Gather whose *fragment* ends in the partial
        aggregate, or a ShuffleJoin carrying the pipeline + partial
        aggregate as a post-join worker stage — either way the join
        output never reaches the coordinator, only group rows do.
        """
        if any(
            func not in logical.AGGREGATE_FUNCTIONS
            for func, _arg, _alias in plan.aggregates
        ):
            return []
        split = _split_aggregates(plan.aggregates, bool(plan.group_by))
        if split is None:
            return []
        chain, join = self._join_chain(plan.child)
        if join is None:
            return []
        sides = self._join_sides(join, ctx)
        if sides is None:
            return []
        left_side, right_side, left_key, right_key = sides
        partial_aggs, _final_aggs, _items = split
        exchange = None
        colocated = self._colocated(
            chain, join, left_side, right_side, left_key, right_key, ctx
        )
        if colocated is not None:
            partial = logical.Aggregate(
                colocated.fragment, plan.group_by, partial_aggs
            )
            if not fragment_is_serializable(partial, ctx.predict_flavor):
                return []
            exchange = Gather(
                colocated.table_name,
                partial,
                colocated.shard_key,
                colocated.shard_ids,
                colocated.total_shards,
                colocated.pruned_by,
                colocated.join,
            )
        else:
            shuffled = self._shuffle(
                join, left_side, right_side, left_key, right_key, ctx
            )
            if shuffled is not None:
                stage: logical.LogicalOp = StageInput(shuffled.join_schema)
                for node in reversed(chain):
                    stage = node.with_children((stage,))
                stage = logical.Aggregate(stage, plan.group_by, partial_aggs)
                if not fragment_is_serializable(stage, ctx.predict_flavor):
                    return []
                exchange = ShuffleJoin(
                    shuffled.left,
                    shuffled.right,
                    shuffled.kind,
                    shuffled.condition,
                    shuffled.num_buckets,
                    (stage,),
                )
        if exchange is None:
            return []
        ctx.record(self.name, "partial aggregate rides the join round-trip")
        return [_final_aggregate_over(exchange, plan, split, ctx)]

    # -- shared analysis ---------------------------------------------------

    def _side(self, op, ctx):
        """``(pipeline root, scan, sharded|None)`` for a join side that
        is a single-table pipeline, else ``None``."""
        node = op
        while isinstance(node, self._PIPELINE_OPS):
            node = node.child
        if not isinstance(node, logical.Scan) or isinstance(node, ShardScan):
            return None
        sharded = ctx.sharding(node.table_name)
        if sharded is not None and sharded.num_shards < 2:
            sharded = None
        return op, node, sharded

    def _equi_keys(self, join):
        """One ``left.col = right.col`` conjunct's stored column names,
        resolved in each side's output schema, or ``None``."""
        for conjunct in conjuncts(join.condition):
            if not (
                isinstance(conjunct, BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                continue
            a = self._resolve_side(join, conjunct.left.name)
            b = self._resolve_side(join, conjunct.right.name)
            if a is None or b is None:
                continue
            (side_a, stored_a), (side_b, stored_b) = a, b
            if side_a == "left" and side_b == "right":
                return stored_a, stored_b
            if side_a == "right" and side_b == "left":
                return stored_b, stored_a
        return None

    @staticmethod
    def _resolve_side(join, ref: str):
        """Which side a reference binds to (unambiguously), plus the
        stored column name it resolves to there."""
        expr = ColumnRef(ref)
        left = resolve_ref_mapping(join.left.schema, expr)
        right = resolve_ref_mapping(join.right.schema, expr)
        if left and not right:
            return "left", next(iter(left.values()))
        if right and not left:
            return "right", next(iter(right.values()))
        return None

    @staticmethod
    def _base_column(scan: logical.Scan, stored: str):
        """``(base column name, numpy dtype)`` for a stored output name
        of a scan (alias prefix stripped), or ``None``."""
        name = stored
        if scan.alias and name.lower().startswith(scan.alias.lower() + "."):
            name = name[len(scan.alias) + 1:]
        lowered = name.lower()
        for column in scan.base_schema:
            if column.name.lower() == lowered:
                return column.name, column.dtype.numpy_dtype
        return None

    @staticmethod
    def _schema_dtype(schema: Schema, stored: str):
        for column in schema:
            if column.name.lower() == stored.lower():
                return column.dtype.numpy_dtype
        return None

    @staticmethod
    def _replace_leaf(pipeline, scan, leaf):
        def rebuild(op):
            if op is scan:
                return leaf
            return op.with_children(tuple(rebuild(c) for c in op.children))

        return rebuild(pipeline)

    @staticmethod
    def _route_side(fragment, sharded):
        """Plan-time shard routing for one side's fragment."""
        predicates = [
            n.predicate
            for n in fragment.walk()
            if isinstance(n, logical.Filter)
        ]
        keep = None
        if predicates:
            try:
                keep = surviving_shards(sharded, conjoin(predicates))
            except Exception:
                keep = None
        if keep is None:
            return tuple(range(sharded.num_shards)), "none"
        ids = tuple(int(i) for i in range(len(keep)) if keep[i])
        pruned = "zone-map" if len(ids) < sharded.num_shards else "none"
        return ids, pruned

    # -- co-located joins --------------------------------------------------

    def _colocated(
        self, chain, join, left_side, right_side, left_key, right_key, ctx
    ):
        left_pipe, left_scan, left_sharded = left_side
        right_pipe, right_scan, right_sharded = right_side
        if left_sharded is None or right_sharded is None:
            return None
        left_base = self._base_column(left_scan, left_key)
        right_base = self._base_column(right_scan, right_key)
        if left_base is None or right_base is None:
            return None
        (left_col, left_dtype) = left_base
        (right_col, right_dtype) = right_base
        if (
            left_sharded.spec.key.split(".")[-1].lower()
            != left_col.lower()
            or right_sharded.spec.key.split(".")[-1].lower()
            != right_col.lower()
        ):
            return None
        if not compatible_layouts(
            left_sharded.spec, left_dtype, right_sharded.spec, right_dtype
        ):
            return None
        total = left_sharded.num_shards
        left_leaf = ShardScan(
            left_scan.table_name,
            left_scan.base_schema,
            left_scan.alias,
            total,
            left_col,
        )
        right_leaf = ShardScan(
            right_scan.table_name,
            right_scan.base_schema,
            right_scan.alias,
            total,
            right_col,
        )
        fragment: logical.LogicalOp = logical.Join(
            self._replace_leaf(left_pipe, left_scan, left_leaf),
            self._replace_leaf(right_pipe, right_scan, right_leaf),
            join.kind,
            join.condition,
        )
        for node in reversed(chain):
            fragment = node.with_children((fragment,))
        if not fragment_is_serializable(fragment, ctx.predict_flavor):
            return None
        shardeds = {
            left_scan.table_name.lower(): left_sharded,
            right_scan.table_name.lower(): right_sharded,
        }
        try:
            shard_ids, pruned_by = colocated_shard_ids(fragment, shardeds)
        except Exception:
            shard_ids = list(range(total))
            pruned_by = "none"
        gather = Gather(
            left_scan.table_name,
            fragment,
            left_col,
            tuple(shard_ids),
            total,
            pruned_by,
            join="colocated",
        )
        ctx.record(
            self.name,
            f"colocated {left_scan.table_name}⋈{right_scan.table_name}: "
            f"{len(shard_ids)}/{total} shards ({pruned_by})",
        )
        return gather

    # -- shuffle joins -----------------------------------------------------

    def _shuffle(
        self, join, left_side, right_side, left_key, right_key, ctx
    ):
        left_dtype = self._schema_dtype(join.left.schema, left_key)
        right_dtype = self._schema_dtype(join.right.schema, right_key)
        if left_dtype is None or right_dtype is None:
            return None
        left_class = hash_class(left_dtype)
        if left_class is None or left_class != hash_class(right_dtype):
            return None  # equal values would bucket differently
        if not expression_is_serializable(join.condition):
            return None
        num_buckets = max(2, ctx.shard_workers())
        shuffles: list[Shuffle] = []
        any_sharded = False
        for (pipe, scan, sharded), key in (
            (left_side, left_key),
            (right_side, right_key),
        ):
            if sharded is not None:
                leaf = ShardScan(
                    scan.table_name,
                    scan.base_schema,
                    scan.alias,
                    sharded.num_shards,
                )
                fragment = self._replace_leaf(pipe, scan, leaf)
                if fragment_is_serializable(fragment, ctx.predict_flavor):
                    shard_ids, pruned_by = self._route_side(
                        fragment, sharded
                    )
                    shuffles.append(
                        Shuffle(
                            scan.table_name,
                            fragment,
                            key,
                            shard_ids,
                            sharded.num_shards,
                            num_buckets,
                            pruned_by,
                        )
                    )
                    any_sharded = True
                    continue
            # The coordinator maps unsharded (or unshippable) sides
            # locally over the original pipeline.
            shuffles.append(
                Shuffle(scan.table_name, pipe, key, (), 1, num_buckets)
            )
        if not any_sharded:
            return None
        shuffle_join = ShuffleJoin(
            shuffles[0], shuffles[1], join.kind, join.condition, num_buckets
        )
        ctx.record(
            self.name,
            f"shuffle {shuffles[0].table_name}⋈{shuffles[1].table_name}: "
            f"{num_buckets} buckets",
        )
        return shuffle_join


#: Guard column global partial aggregates append (see the rule).
_PARTIAL_ROWS = "__partial_rows"


def _split_aggregates(aggregates, grouped: bool):
    """Partial + final aggregate lists and final projection items.

    Returns ``None`` if any aggregate cannot be decomposed. ``COUNT``
    re-combines with SUM, ``SUM``/``MIN``/``MAX`` with themselves, and
    ``AVG`` splits into ``SUM``+``COUNT`` re-divided in the projection
    (guarded against all-empty groups). Global (ungrouped) partials
    additionally carry a ``COUNT(*)`` row guard.
    """
    partial: list[tuple] = []
    final: list[tuple] = []
    items: list[tuple] = []
    for func, arg, alias in aggregates:
        if func in ("COUNT", "SUM"):
            partial.append((func, arg, alias))
            final.append(("SUM", ColumnRef(alias), alias))
            items.append((ColumnRef(alias), alias))
        elif func in ("MIN", "MAX"):
            partial.append((func, arg, alias))
            final.append((func, ColumnRef(alias), alias))
            items.append((ColumnRef(alias), alias))
        elif func == "AVG":
            if arg is None:
                return None
            psum = f"{alias}__psum"
            pcnt = f"{alias}__pcnt"
            partial.append(("SUM", arg, psum))
            partial.append(("COUNT", arg, pcnt))
            final.append(("SUM", ColumnRef(psum), psum))
            final.append(("SUM", ColumnRef(pcnt), pcnt))
            items.append(
                (
                    CaseWhen(
                        (
                            (
                                BinaryOp(
                                    ">", ColumnRef(pcnt), Literal(0)
                                ),
                                BinaryOp(
                                    "/",
                                    ColumnRef(psum),
                                    ColumnRef(pcnt),
                                ),
                            ),
                        ),
                        Literal(0.0),
                    ),
                    alias,
                )
            )
        else:
            return None
    if not grouped:
        partial.append(("COUNT", None, _PARTIAL_ROWS))
    return tuple(partial), tuple(final), items


def _final_aggregate_over(exchange, plan, split, ctx):
    """The coordinator half of a partial→final aggregate split.

    ``exchange`` already produces the partial rows (a Gather whose
    fragment pre-aggregates, or a staged ShuffleJoin); this builds the
    final combine + re-projection above it.
    """
    _partial_aggs, final_aggs, items = split
    gathered: logical.LogicalOp = exchange
    if not plan.group_by:
        # Empty shards/buckets emit identity partial rows (COUNT 0,
        # MIN +inf); drop them before the final combine so sentinel
        # values cannot leak through integer casts.
        gathered = logical.Filter(
            gathered,
            BinaryOp(">", ColumnRef(_PARTIAL_ROWS), Literal(0)),
        )
    final_group_by = tuple(
        (ColumnRef(name), name) for _expr, name in plan.group_by
    )
    final_child = _maybe_repartition(gathered, plan.group_by, ctx)
    final = logical.Aggregate(final_child, final_group_by, final_aggs)
    project_items = tuple(
        [(ColumnRef(name), name) for _expr, name in plan.group_by] + items
    )
    return logical.Project(final, project_items)


def _maybe_repartition(gathered, group_by, ctx):
    """Insert a hash exchange under big grouped final aggregates.

    Buckets on the first plain-column grouping key: every row of a
    group shares that value, so buckets are group-disjoint and the
    executor can aggregate them independently in parallel.
    """
    key = next(
        (alias for expr, alias in group_by if isinstance(expr, ColumnRef)),
        None,
    )
    if key is None:
        return gathered
    threshold = float(
        ctx.options.get(
            "repartition_min_rows", ShardedExecutionRule.REPARTITION_MIN_ROWS
        )
    )
    if ctx.estimate_tree(gathered) < threshold:
        return gathered
    ctx.record("RepartitionExchange", f"on {key}")
    return Repartition(gathered, key, ctx.shard_workers())


# -- rule sets ---------------------------------------------------------------


def sql_rules(options: dict | None = None) -> list[MemoRule]:
    """The SQL physical planner's rule set (Database.execute / EXPLAIN).

    Predicate-based model pruning is included — it preserves the
    ``Predict`` operator shape (the relational executor scores the
    rewritten payload inline) and only fires when WHERE facts actually
    shrink the model. The always-applicable rewrites (projection
    pushdown, model inlining) are not: ad-hoc SQL re-optimizes every
    execution, and swapping a fresh payload per run would defeat the
    model session cache (Fig. 3's repeat-query advantage) for queries
    the rewrite barely helps. Prepared/served queries get them through
    the cross-IR rule set, where the plan cache amortizes the rewrite.
    """
    return [
        MergeConsecutiveFiltersRule(),
        PredicatePushdownRule(),
        JoinOrderRule(),
        PredicateBasedModelPruningRule(),
        BackendChoiceRule(),
        ShardedExecutionRule(),
        ShardJoinRule(),
    ]


def cross_ir_rules(options: dict | None = None) -> list[MemoRule]:
    """The cross-IR optimizer's rule set (RavenSession.optimize)."""
    options = dict(options or {})
    rules: list[MemoRule] = [
        MergeConsecutiveFiltersRule(),
        PredicatePushdownRule(),
        JoinOrderRule(),
        PredicateBasedModelPruningRule(),
        ModelProjectionPushdownRule(insert_projection=True),
        BackendChoiceRule(),
        ShardedExecutionRule(),
        ShardJoinRule(),
    ]
    if options.get("enable_inlining", True):
        rules.append(
            ModelInliningRule(
                max_tree_nodes=int(options.get("max_inline_nodes", 255))
            )
        )
    return rules


# -- the optimizer -----------------------------------------------------------


@dataclass
class MemoReport:
    """What one memo search did (EXPLAIN and plan caches render this)."""

    stats: MemoStats
    applied: list[str] = field(default_factory=list)
    cost: float = 0.0


class MemoOptimizer:
    """Explore a logical plan through the memo; extract the cheapest."""

    def __init__(self, rules: list[MemoRule], context: SearchContext):
        self.rules = rules
        self.context = context
        self.memo: Memo | None = None

    def optimize(
        self, plan: logical.LogicalOp
    ) -> tuple[logical.LogicalOp, MemoReport]:
        from repro.observability import events
        from repro.observability import trace as qtrace

        with qtrace.span("memo_search") as sp:
            memo = Memo()
            self.memo = memo
            self.context.memo = memo
            self.context.stats = memo.stats
            self.context.prepare(plan)
            root = memo.register(plan)
            self._explore(root, set())
            cost, best = self._best(root)
            if best is None:  # defensive: extraction can never fail silently
                best, cost = plan, float("inf")
            report = MemoReport(
                stats=memo.stats,
                applied=list(memo.stats.rules_fired),
                cost=cost,
            )
            sp.set("groups", memo.stats.groups_created)
            sp.set("expressions", memo.stats.expressions_added)
            sp.set("pruned", memo.stats.branches_pruned)
            sp.set("rules_fired", len(memo.stats.rules_fired))
        if events.BUS.active:
            events.emit(
                "optimizer.memo_search",
                cost=cost,
                **memo.stats.to_dict(),
            )
        return best, report

    # -- exploration --------------------------------------------------------

    def _explore(self, group_id: int, visited: set[int]) -> None:
        if group_id in visited:
            return
        visited.add(group_id)
        group = self.memo.group(group_id)
        index = 0
        while index < len(group.expressions):
            expr = group.expressions[index]
            # Substitution (normalization) rules run first, before the
            # expression's children are explored: a replaced expression
            # is dead for extraction, so exploring below it — e.g.
            # running the exhaustive join-order DP on the pre-pushdown
            # join chain — would only burn search budget on unreachable
            # groups. The rewritten alternative lands in this group and
            # its sub-tree is explored in its own right.
            self._apply_rules(group, group_id, expr, index, substitute=True)
            if expr.disabled:
                index += 1
                continue
            # Competitive rules also run before descending: every rule
            # matches on the concrete representative sub-tree, so child
            # exploration cannot change a match, and top-down order
            # lets the join-order DP mark its sub-chains as searched
            # before the nested join groups are visited.
            self._apply_rules(group, group_id, expr, index, substitute=False)
            for child in expr.children:
                self._explore(child, visited)
            self.memo.stats.expressions_explored += 1
            index += 1

    def _apply_rules(self, group, group_id, expr, index, substitute):
        for rule in self.rules:
            if rule.substitute is not substitute:
                continue
            marker = (rule.name, index)
            if marker in group.done:
                continue
            group.done.add(marker)
            try:
                alternatives = rule.apply(expr.plan, self.context)
            except Exception:
                # A rule bug must never break query execution; the
                # original expression is always still in the group.
                self.memo.stats.rule_errors += 1
                continue
            added = False
            for alternative in alternatives:
                if self.memo.add_expression(group_id, alternative):
                    added = True
            if added and rule.substitute:
                # Normalization: the rewritten form replaces the
                # matched expression rather than competing with it.
                expr.disabled = True

    # -- extraction (cost-bounded branch and bound) --------------------------

    def _rows(self, group_id: int) -> float:
        group = self.memo.group(group_id)
        if group.rows is not None:
            return group.rows
        group.rows = DEFAULT_ROW_ESTIMATE  # cycle guard / in-progress
        expr = group.expressions[0]
        child_rows = [self._rows(child) for child in expr.children]
        group.rows = estimate_operator_rows(expr.op, child_rows, self.context)
        return group.rows

    def _best(self, group_id: int) -> tuple[float, logical.LogicalOp | None]:
        group = self.memo.group(group_id)
        if group.best is not None:
            return group.best
        group.best = (math.inf, None)  # cycle guard / in-progress
        best_cost = math.inf
        best_plan: logical.LogicalOp | None = None
        rows = self._rows(group_id)
        live = [expr for expr in group.expressions if not expr.disabled]
        if not live:  # paranoia: never leave a group unextractable
            live = group.expressions
        for expr in live:
            child_rows = [self._rows(child) for child in expr.children]
            total = operator_cost(expr.op, rows, child_rows, self.context)
            if total >= best_cost:
                self.memo.stats.branches_pruned += 1
                continue
            plans: list[logical.LogicalOp] = []
            feasible = True
            for child in expr.children:
                child_cost, child_plan = self._best(child)
                total += child_cost
                if child_plan is None or total >= best_cost:
                    # The accumulated bound already lost: stop pricing
                    # this expression's remaining children.
                    self.memo.stats.branches_pruned += 1
                    feasible = False
                    break
                plans.append(child_plan)
            if not feasible:
                continue
            best_cost = total
            best_plan = (
                expr.op.with_children(plans) if plans else expr.plan
            )
        group.best = (best_cost, best_plan)
        return group.best


# -- IR bridge ---------------------------------------------------------------


class PlanConversionError(OptimizerError):
    """The IR graph has no logical-tree form (shared nodes, exotic ops)."""


def _unprefixed(schema: Schema, alias: str | None) -> Schema:
    if not alias:
        return schema
    prefix = alias.lower() + "."
    return Schema(
        tuple(
            Column(
                column.name[len(prefix):]
                if column.name.lower().startswith(prefix)
                else column.name,
                column.dtype,
            )
            for column in schema
        )
    )


def ir_to_logical(graph: IRGraph) -> logical.LogicalOp:
    """Convert an IR graph (tree or DAG) to a logical plan for the memo.

    Scoring operators become payload-carrying :class:`logical.Predict`
    nodes (``mld.pipeline`` / ``la.tensor_graph`` / ``udf.python``);
    auxiliary attributes round-trip through ``Predict.extra``. An IR
    node with several consumers (a DAG edge, e.g. after model/query
    splitting) converts once and every consumer holds the *same*
    logical object — the memo's identity map then interns the shared
    subtree into a single group, so it is explored and priced exactly
    once. Raises :class:`PlanConversionError` for unconvertible
    operators — callers fall back to the legacy rule pipeline.
    """
    built: dict[int, logical.LogicalOp] = {}

    def build(node) -> logical.LogicalOp:
        cached = built.get(node.id)
        if cached is not None:
            return cached
        try:
            result = _build_node(node)
        except KeyError as exc:
            # Graphs from other analyzers (e.g. the Python static
            # analyzer) may omit attrs this bridge requires; that is a
            # conversion failure, not a crash — callers fall back to
            # the legacy rule pipeline.
            raise PlanConversionError(
                f"IR node {node.op!r} lacks attr {exc}"
            ) from exc
        built[node.id] = result
        return result

    def _build_node(node) -> logical.LogicalOp:
        children = [build(graph.node(i)) for i in node.inputs]
        attrs = node.attrs
        op = node.op
        if op == "ra.scan":
            return logical.Scan(
                attrs["table"],
                _unprefixed(attrs["schema"], attrs.get("alias")),
                attrs.get("alias"),
            )
        if op == "ra.inline_table":
            return logical.InlineTable(
                attrs["table_value"],
                attrs.get("alias"),
                attrs.get("source_name"),
            )
        if op == "ra.filter":
            return logical.Filter(children[0], attrs["predicate"])
        if op == "ra.project":
            if attrs.get("items") is None:
                raise PlanConversionError("projection without items")
            return logical.Project(children[0], tuple(attrs["items"]))
        if op == "ra.join":
            return logical.Join(
                children[0],
                children[1],
                attrs.get("kind", "INNER"),
                attrs.get("condition"),
            )
        if op == "ra.aggregate":
            return logical.Aggregate(
                children[0],
                tuple(attrs.get("group_by") or ()),
                tuple(attrs.get("aggregates") or ()),
            )
        if op == "ra.order_by":
            return logical.OrderBy(children[0], tuple(attrs["keys"]))
        if op == "ra.limit":
            return logical.Limit(children[0], attrs["count"])
        if op == "ra.distinct":
            return logical.Distinct(children[0])
        if op == "ra.union_all":
            return logical.UnionAll(tuple(children))
        if op == "ra.gather":
            return Gather(
                attrs["table"],
                attrs["fragment"],
                attrs["shard_key"],
                tuple(attrs["shard_ids"]),
                attrs["total_shards"],
                attrs.get("pruned_by", "none"),
                attrs.get("join", "none"),
            )
        if op == "ra.shuffle_join":
            return ShuffleJoin(
                attrs["left"],
                attrs["right"],
                attrs.get("kind", "INNER"),
                attrs["condition"],
                attrs["num_buckets"],
                tuple(attrs.get("stages") or ()),
            )
        if op == "ra.repartition":
            return Repartition(
                children[0], attrs["key"], attrs["num_buckets"]
            )
        if op in ("mld.pipeline", "la.tensor_graph", "udf.python"):
            if op == "mld.pipeline":
                flavor, payload, extra = (
                    "ml.pipeline",
                    attrs["pipeline"],
                    (),
                )
            elif op == "la.tensor_graph":
                flavor = "tensor.graph"
                payload = attrs["graph"]
                extra = (("device", attrs.get("device", "cpu")),)
            else:
                flavor = "python.script"
                payload = attrs.get("source")
                extra = (("name", attrs.get("name")),)
            if op != "udf.python" and attrs.get("backend"):
                extra = extra + (("backend", attrs["backend"]),)
            features = attrs.get("feature_names")
            return logical.Predict(
                children[0],
                str(attrs.get("model_ref") or ""),
                tuple(attrs.get("output_columns") or ()),
                attrs.get("alias"),
                attrs.get("batch_size"),
                flavor,
                payload,
                # () means "zero features" (fully-pruned model): keep it
                # distinct from None ("all columns"), matching the
                # lowering direction.
                tuple(features) if features is not None else None,
                extra,
            )
        raise PlanConversionError(f"IR op {op!r} has no logical form")

    return build(graph.output)


def logical_to_ir(plan: logical.LogicalOp) -> IRGraph:
    """Lower a (possibly memo-rewritten) logical plan back onto the IR.

    A logical sub-plan *object* referenced by multiple parents (shared
    through the memo's identity map) lowers to one IR node with
    multiple consumers, preserving the DAG shape instead of
    duplicating the subtree.
    """
    graph = IRGraph()
    lowered: dict[int, tuple[logical.LogicalOp, int]] = {}

    def lower(op: logical.LogicalOp) -> int:
        cached = lowered.get(id(op))
        if cached is not None and cached[0] is op:
            return cached[1]
        node_id = _lower_node(op)
        lowered[id(op)] = (op, node_id)
        return node_id

    def _lower_node(op: logical.LogicalOp) -> int:
        if isinstance(op, logical.Scan):
            return graph.add(
                "ra.scan",
                [],
                table=op.table_name,
                alias=op.alias,
                schema=op.schema,
            ).id
        if isinstance(op, logical.InlineTable):
            return graph.add(
                "ra.inline_table",
                [],
                table_value=op.table,
                alias=op.alias,
                source_name=op.source_name,
            ).id
        if isinstance(op, logical.Filter):
            child = lower(op.child)
            return graph.add("ra.filter", [child], predicate=op.predicate).id
        if isinstance(op, logical.Project):
            child = lower(op.child)
            return graph.add("ra.project", [child], items=list(op.items)).id
        if isinstance(op, logical.Join):
            left = lower(op.left)
            right = lower(op.right)
            return graph.add(
                "ra.join", [left, right], kind=op.kind, condition=op.condition
            ).id
        if isinstance(op, logical.Aggregate):
            child = lower(op.child)
            return graph.add(
                "ra.aggregate",
                [child],
                group_by=list(op.group_by),
                aggregates=list(op.aggregates),
            ).id
        if isinstance(op, logical.OrderBy):
            child = lower(op.child)
            return graph.add("ra.order_by", [child], keys=list(op.keys)).id
        if isinstance(op, logical.Limit):
            child = lower(op.child)
            return graph.add("ra.limit", [child], count=op.count).id
        if isinstance(op, logical.Distinct):
            child = lower(op.child)
            return graph.add("ra.distinct", [child]).id
        if isinstance(op, logical.UnionAll):
            branches = [lower(b) for b in op.branches]
            return graph.add("ra.union_all", branches).id
        if isinstance(op, Gather):
            # The fragment stays a logical subtree attribute — it is
            # dispatched (and JSON-serialized) whole, never executed
            # operator-by-operator by the IR runtime.
            return graph.add(
                "ra.gather",
                [],
                table=op.table_name,
                fragment=op.fragment,
                shard_key=op.shard_key,
                shard_ids=tuple(op.shard_ids),
                total_shards=op.total_shards,
                pruned_by=op.pruned_by,
                join=op.join,
                schema=op.schema,
            ).id
        if isinstance(op, ShuffleJoin):
            # Like Gather, the side templates stay logical attributes:
            # the exchange dispatches them whole.
            return graph.add(
                "ra.shuffle_join",
                [],
                left=op.left,
                right=op.right,
                kind=op.kind,
                condition=op.condition,
                num_buckets=op.num_buckets,
                stages=tuple(op.stages),
                schema=op.schema,
            ).id
        if isinstance(op, Repartition):
            child = lower(op.child)
            return graph.add(
                "ra.repartition",
                [child],
                key=op.key,
                num_buckets=op.num_buckets,
            ).id
        if isinstance(op, logical.Predict):
            child = lower(op.child)
            common = dict(
                model_ref=op.model_ref,
                output_columns=tuple(op.output_columns),
                alias=op.alias,
                # () means "zero features" (fully-pruned model), which
                # must NOT collapse to None ("all columns").
                feature_names=(
                    list(op.feature_names)
                    if op.feature_names is not None
                    else None
                ),
            )
            extra = dict(op.extra)
            if extra.get("backend"):
                common["backend"] = extra["backend"]
            if op.flavor == "tensor.graph":
                return graph.add(
                    "la.tensor_graph",
                    [child],
                    graph=op.payload,
                    device=extra.get("device", "cpu"),
                    **common,
                ).id
            if op.flavor == "python.script":
                common.pop("backend", None)
                return graph.add(
                    "udf.python",
                    [child],
                    source=op.payload,
                    name=extra.get("name") or op.model_ref,
                    **common,
                ).id
            return graph.add(
                "mld.pipeline", [child], pipeline=op.payload, **common
            ).id
        raise PlanConversionError(
            f"cannot lower logical op {type(op).__name__} to IR"
        )

    graph.set_output(lower(plan))
    graph.validate()
    return graph
